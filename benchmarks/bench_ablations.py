"""Design ablations: β, recovery time, slave count, temporal texture.

Criteria: the eq. 3 price falls as β rises (§4.1); the persistent bid
rises with t_r (Prop. 5) and persistent stays cheaper than one-time for
interruptible jobs; eq. 18's completion time falls monotonically in M
while the cost stays nearly flat; temporal correlation cuts realized
interruptions (§8).
"""

from repro.experiments import FAST_CONFIG, ablations


def test_beta_sweep(once):
    result = once(ablations.beta_sweep)
    print("\nAblation — provider utilization weight β")
    print(result.table())
    assert result.monotone_decreasing


def test_recovery_sweep(once):
    result = once(ablations.recovery_sweep, FAST_CONFIG)
    print("\nAblation — recovery time t_r")
    print(result.table())
    assert result.bids_monotone
    # For sub-slot recoveries, persistent must beat one-time (Fig. 6c).
    for row in result.rows:
        if row.recovery_seconds <= 60:
            assert row.persistent_wins


def test_slave_count_sweep(once):
    result = once(ablations.slave_count_sweep, FAST_CONFIG)
    print("\nAblation — slave count M (eq. 18/19)")
    print(result.table())
    assert result.completion_monotone
    costs = [r.expected_cost for r in result.rows]
    assert max(costs) / min(costs) < 1.05  # cost nearly flat in M


def test_temporal_texture(once):
    result = once(ablations.temporal_texture, FAST_CONFIG)
    print("\nAblation — temporal texture (identical marginals)")
    print(result.table())
    assert result.correlation_reduces_interruptions


def test_billing_comparison(once):
    result = once(ablations.billing_comparison, FAST_CONFIG)
    print("\nAblation — per-slot (paper) vs hourly (EC2 2014) billing")
    print(result.table())
    # Whole-hour rounding typically adds cost for user-terminated jobs
    # (hourly can undercut per-slot only when prices rise mid-hour, a
    # rare event on floor-heavy traces).
    assert -0.2 < result.hourly_premium < 2.0


def test_forecasting_comparison(once):
    result = once(ablations.forecasting_comparison, FAST_CONFIG)
    print("\nAblation — stationary ECDF vs forecast-based bids (§5)")
    print(result.table())
    # The paper's argument: forecasting buys little at job horizons.
    stationary = result.cost_of("stationary-ecdf")
    for name in ("ewma", "ar1"):
        assert result.cost_of(name) > 0.8 * stationary  # no big win
        assert result.cost_of(name) < 1.5 * stationary  # nor catastrophe


def test_checkpoint_sweep(once):
    result = once(ablations.checkpoint_sweep, FAST_CONFIG)
    print("\nAblation — checkpoint interval under a 90th-percentile bid cap")
    print(result.table())
    # The classic trade-off: an interior optimal interval exists.
    assert result.interior_optimum
    assert 1.0 < result.chosen_interval_minutes < 60.0


def test_adaptive_rebidding(once):
    result = once(ablations.adaptive_rebidding, FAST_CONFIG)
    print("\nAblation — static vs adaptive bidding across a regime shift")
    print(result.table())
    static, adaptive = result.row("static"), result.row("adaptive")
    # A static pre-shift bid sits below the new price floor and stalls;
    # the adaptive client re-estimates and completes.
    assert adaptive.completed > static.completed
    assert adaptive.completed == adaptive.repetitions
    assert adaptive.mean_rebids >= 1.0


def test_fleet_allocation(once):
    result = once(ablations.fleet_allocation, FAST_CONFIG)
    print("\nAblation — Spot-Fleet-style allocation across instance types")
    print(result.ranking_table)
    print(result.table())
    cheapest, diversified = result.row("cheapest"), result.row("diversified")
    assert cheapest.completed == cheapest.repetitions
    assert diversified.completed == diversified.repetitions
    # Diversification costs at most a few percent in expectation.
    assert diversified.mean_cost < cheapest.mean_cost * 1.10
    assert diversified.types_used > cheapest.types_used


def test_scheduling_policy(once):
    result = once(ablations.scheduling_policy, FAST_CONFIG)
    print("\nAblation — pinned sub-jobs (paper) vs Hadoop task stealing")
    print(result.table())
    pinned, pool = result.row("pinned-subjobs"), result.row("task-pool")
    assert pinned.completed == pinned.repetitions
    assert pool.completed == pool.repetitions
    # With every worker on ONE market, stalls hit both policies alike;
    # checkpointed sub-jobs (paying only t_r per resume) beat the pool's
    # lost in-flight work — the paper's save-to-volume design, justified.
    assert pinned.mean_cost <= pool.mean_cost + 1e-9
    assert pool.mean_lost_work >= 0.0


def test_history_length_sensitivity(once):
    result = once(ablations.history_length_sensitivity, FAST_CONFIG)
    print("\nAblation — how much price history does a bid need?")
    print(result.table())
    assert result.bid_noise_shrinks_with_history
    # Realized costs stay within a band across window lengths: even
    # short histories capture the floor-plus-tail shape.
    costs = [r.mean_cost for r in result.rows]
    assert max(costs) / min(costs) < 1.15
