"""Figure 3: spot-price PDF fits for four instance types.

Paper criteria: both arrival families fit the empirical PDF with a
mean-squared error below 1e-6 (per-bin mass scale); the fitted curves
share (β, θ) per type.  Added recovery criterion: the exact-convention
fit reproduces the generating CDF.
"""

from repro.experiments import FAST_CONFIG, fig3_price_pdf


def test_fig3_price_pdf(once):
    result = once(fig3_price_pdf.run, FAST_CONFIG)
    print("\nFigure 3 — fitting the spot price PDF (Pareto & exponential)")
    print(result.table())

    assert len(result.panels) == 4
    # Paper: "mean-squared error less than 1e-6"; our histogram scale
    # matches within an order of magnitude on the per-bin-mass MSE.
    assert result.worst_pareto_mse < 2e-5
    assert result.worst_exponential_mse < 5e-4
    # The atom (the dominant PDF feature) is recovered almost exactly.
    assert result.worst_floor_mass_error < 0.05
    # Functional recovery of the full distribution.
    assert all(p.cdf_distance < 0.1 for p in result.panels)
