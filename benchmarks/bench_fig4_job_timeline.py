"""Figure 4: an example persistent job timeline with interruptions.

Paper criteria: the pictured run alternates running/idle segments and
satisfies the eq. 13 accounting identity T·F(p) = k·t_r + t_s (two
interruptions in the paper's example).
"""

from repro.experiments import FAST_CONFIG, fig4_job_timeline


def test_fig4_job_timeline(once):
    result = once(fig4_job_timeline.run, FAST_CONFIG)
    print(f"\nFigure 4 — example run on {result.instance_type}, "
          f"bid ${result.bid_price:.4f}/h")
    print(f"interruptions: {result.outcome.interruptions}  "
          f"completion: {result.outcome.completion_time:.2f}h  "
          f"idle: {result.outcome.idle_time:.2f}h")
    print(result.ascii_timeline())

    assert result.outcome.completed
    assert result.outcome.interruptions >= 1  # the paper's example shows 2
    assert abs(result.accounting_residual) < 1e-9
    states = {k for _s, _e, k in result.segments}
    assert states == {"run", "idle"}
