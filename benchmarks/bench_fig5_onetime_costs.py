"""Figure 5: one-time spot requests vs on-demand instances.

Paper criteria: "this bidding strategy can reduce user costs by up to
91%"; the analytical predictions "closely match the experimental
results"; "none of our experiments were interrupted" (we tolerate rare
interruptions from the synthetic market's residual churn — they are
charged via the on-demand fallback the paper describes).
"""

from repro.experiments import FAST_CONFIG, fig5_onetime_costs


def test_fig5_onetime_costs(once):
    result = once(fig5_onetime_costs.run, FAST_CONFIG)
    print("\nFigure 5 — one-time spot vs on-demand cost (t_s = 1 h)")
    print(result.table())

    assert len(result.bars) == 5
    # Headline: savings approaching the paper's 91%.
    assert result.best_savings > 0.88
    assert result.worst_savings > 0.70  # even with fallback reruns
    total_interruptions = sum(b.interruptions for b in result.bars)
    total_runs = sum(b.repetitions for b in result.bars)
    assert total_interruptions <= max(2, total_runs // 10)
    # Model-vs-measured agreement for the uninterrupted bars.
    clean = [b for b in result.bars if b.interruptions == 0]
    assert clean, "expected at least one interruption-free instance type"
    for bar in clean:
        assert bar.prediction_gap < 0.25
