"""Figure 6: persistent vs one-time requests (three panels).

Paper criteria: (a) persistent bids charge a lower price per running
hour and the 10 s-recovery bid is the lowest; (b) persistent completion
times exceed the one-time baseline, with the shorter recovery time
yielding the *longer* completion (its cheaper bid idles more); (c)
persistent total costs are lower, and the 90th-percentile heuristic
"yields a much smaller decrease in cost" than the optimal bids.
"""

from repro.experiments import FAST_CONFIG, fig6_persistent_vs_onetime


def test_fig6_persistent_vs_onetime(once):
    result = once(fig6_persistent_vs_onetime.run, FAST_CONFIG)
    print("\nFigure 6 — persistent vs one-time (% difference per panel)")
    print(result.table())

    # Panel (a): persistent prices below the one-time baseline.
    assert result.mean_price_diff("persistent-10s") < 0.0
    assert result.mean_price_diff("persistent-30s") < 0.0
    assert (
        result.mean_price_diff("persistent-10s")
        <= result.mean_price_diff("persistent-30s")
    )

    # Panel (b): persistent runs take longer; shorter recovery → longer.
    assert result.mean_completion_diff("persistent-10s") > 0.0
    assert result.mean_completion_diff("persistent-30s") > 0.0
    assert (
        result.mean_completion_diff("persistent-10s")
        >= result.mean_completion_diff("persistent-30s")
    )
    # The 90th-percentile bid (higher price) idles less.
    assert (
        result.mean_completion_diff("percentile-90")
        <= result.mean_completion_diff("persistent-30s")
    )

    # Panel (c): optimal persistent bids cut cost; the heuristic cuts
    # less than the 10 s-recovery optimum.
    assert result.mean_cost_diff("persistent-10s") < 0.0
    assert result.mean_cost_diff("persistent-30s") < 0.5
    assert (
        result.mean_cost_diff("persistent-10s")
        <= result.mean_cost_diff("percentile-90")
    )
