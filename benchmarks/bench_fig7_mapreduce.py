"""Figure 7: MapReduce jobs on spot vs on-demand instances.

Paper criteria: "the bidding strategy for MapReduce jobs can reduce up
to 92.6% of user cost with just a 14.9% increase of completion time" —
spot is ~10x cheaper (panel b) and modestly slower (panel a).  Synthetic
tail episodes make the *mean* slowdown heavy-tailed, so the median is
held to the paper's scale and the mean to a loose sanity bound.
"""

from repro.experiments import FAST_CONFIG, fig7_mapreduce_costs


def test_fig7_mapreduce_costs(once):
    result = once(fig7_mapreduce_costs.run, FAST_CONFIG)
    print("\nFigure 7 — MapReduce completion time and cost, spot vs on-demand")
    print(result.table())

    assert len(result.bars) == 5
    assert result.best_savings > 0.88  # paper: up to 92.6%
    assert result.worst_savings > 0.80
    for bar in result.bars:
        assert bar.spot_cost_mean < bar.ondemand_cost
        # Spot completion is longer but not pathological.
        assert bar.spot_completion_mean >= bar.ondemand_completion
        assert bar.median_slowdown_pct < 100.0
        assert bar.completed == bar.repetitions
