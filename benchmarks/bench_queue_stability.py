"""Propositions 1–3: queue stability, equilibrium, push-forward prices.

Criteria: constant arrivals settle at the Prop. 2 fixed point; realized
drift above the Lyapunov level is negative (Prop. 1); the model's price
samples match h(Λ) push-forward samples (Prop. 3); day and night prices
pass the paper's K-S similarity criterion (p > 0.01, §4.3).
"""

from repro.experiments import FAST_CONFIG, queue_stability


def test_queue_stability(once):
    result = once(queue_stability.run, FAST_CONFIG)
    print("\nPropositions 1–3 — queue stability and equilibrium prices")
    print(result.table())

    assert len(result.rows) == 4
    assert result.all_stable
    for row in result.rows:
        assert row.pushforward_ks.similar(threshold=0.01)
        assert row.day_night_ks.similar(threshold=0.01)
        assert row.mean_queue < row.lyapunov_level
