"""Table 3: optimal bid prices for a one-hour job on five instance types.

Paper criteria (Figure 6(a)'s shape, stated with Table 3): persistent
bids sit below the one-time bid; 30 s recovery bids above 10 s; the
retrospective heuristic can undercut the safe one-time bid.
"""

from repro.experiments import FAST_CONFIG, table3_bid_prices


def test_table3_bid_prices(once):
    result = once(table3_bid_prices.run, FAST_CONFIG)
    print("\nTable 3 — optimal bid prices (t_s = 1 h)")
    print(result.table())

    assert len(result.rows) == 5
    assert result.all_orderings_hold
    for row in result.rows:
        # All spot bids far below on-demand.
        assert row.onetime_bid < row.ondemand / 2
        # The retrospective price is no safer than the one-time bid
        # ("10 hours of history is insufficient").
        assert row.retrospective < row.onetime_bid * 1.5
