"""Table 4: MapReduce client settings — bids, cluster sizes, cost split.

Paper criteria: the minimum viable slave count "can be as low as 3 or
4"; "the cost of the master node is 10% to 25% of the slave node cost"
(we allow the band to stretch slightly since cluster shapes differ).
"""

from repro.experiments import FAST_CONFIG, table4_mapreduce_plans


def test_table4_mapreduce_plans(once):
    result = once(table4_mapreduce_plans.run, FAST_CONFIG)
    print("\nTable 4 — MapReduce bids and master/slave cost split")
    print(result.table())

    assert len(result.rows) == 5
    for row in result.rows:
        assert 3 <= row.min_slaves <= 8  # "as low as 3 or 4"
        assert row.num_slaves >= row.min_slaves
        assert row.master_bid < row.slave_bid or row.master_type != row.slave_type
        # Master cost fraction in (or near) the paper's 10–25% band.
        assert 0.03 < row.master_cost_fraction < 0.45
    in_band = [r for r in result.rows if 0.08 <= r.master_cost_fraction <= 0.30]
    assert len(in_band) >= 3
