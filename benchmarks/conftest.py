"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures through
``repro.experiments`` and prints the rows, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation section.  Experiments are expensive
relative to micro-benchmarks, so every benchmark runs exactly once
(``pedantic`` with one round); the recorded time is the cost of
regenerating that artifact.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
