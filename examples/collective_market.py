#!/usr/bin/env python3
"""What happens when everyone bids optimally? (Section 8 extension.)

The paper assumes one optimizing user cannot move the spot price and asks
what happens when that fails.  This example runs the best-response loop:
two strategic user classes repeatedly re-optimize their persistent bids
against the price distribution their own bidding induces, and we watch
whether the bids and the mean spot price settle.

Run:  python examples/collective_market.py
"""

import numpy as np

from repro import JobSpec, seconds
from repro.extensions.collective import StrategicClass, iterate_collective_bidding
from repro.provider import ParetoArrivals


def main() -> None:
    rng = np.random.default_rng(23)
    classes = [
        StrategicClass(job=JobSpec(1.0, seconds(30)), weight=0.25),
        StrategicClass(job=JobSpec(4.0, seconds(120)), weight=0.15),
    ]
    outcome = iterate_collective_bidding(
        classes,
        ParetoArrivals(alpha=3.0, minimum=0.05),
        beta=0.35,
        theta=0.02,
        pi_bar=0.35,
        pi_min=0.0315,
        n_slots=1500,
        max_rounds=8,
        rng=rng,
    )

    print("round  bids                    mean price   price std")
    for i, r in enumerate(outcome.rounds):
        bids = ", ".join(f"{b:.4f}" for b in r.bids) or "(uniform baseline)"
        print(f"{i:5d}  {bids:22s}  {r.mean_price:.5f}     {r.price_std:.5f}")
    print(f"\nconverged: {outcome.converged}")
    print(f"mean-price drift vs non-strategic baseline: {outcome.price_drift:+.5f} $/h")


if __name__ == "__main__":
    main()
