#!/usr/bin/env python3
"""Staged bidding for a dependent-task pipeline (Section 8 extension).

A small ETL-style DAG — extract, two parallel transforms, then a load
step — is bid stage by stage: each task's spot request is only submitted
once its dependencies finish, so no money or queue position is wasted on
tasks that cannot run yet.

Run:  python examples/dag_pipeline.py
"""

import numpy as np

from repro import JobSpec, generate_equilibrium_history, generate_renewal_history, get_instance_type, seconds
from repro.extensions.dag import TaskGraph, plan_dag, run_dag_on_trace


def main() -> None:
    rng = np.random.default_rng(17)
    itype = get_instance_type("r3.2xlarge")

    history = generate_equilibrium_history(itype, days=60, rng=rng)
    dist = history.to_distribution()

    graph = TaskGraph(
        tasks={
            "extract": JobSpec(0.5, seconds(10)),
            "transform-a": JobSpec(2.0, seconds(30)),
            "transform-b": JobSpec(1.5, seconds(30)),
            "load": JobSpec(0.75, seconds(10)),
        },
        edges=[
            ("extract", "transform-a"),
            ("extract", "transform-b"),
            ("transform-a", "load"),
            ("transform-b", "load"),
        ],
    )
    plan = plan_dag(dist, graph)

    print("per-task bids:")
    for name, bid in plan.bids.items():
        print(
            f"  {name:12s} ${bid.price:.4f}/h  "
            f"expected finish {plan.expected_finish[name]:.2f}h"
        )
    print(
        f"predicted: completion {plan.expected_completion_time:.2f}h, "
        f"cost ${plan.expected_cost:.4f}\n"
    )

    for run_idx in range(3):
        future = generate_renewal_history(itype, days=7, rng=rng)
        result = run_dag_on_trace(plan, graph, future)
        print(
            f"run {run_idx + 1}: completed={result.completed}  "
            f"T={result.completion_time:.2f}h  cost=${result.total_cost:.4f}  "
            f"interruptions={result.interruptions}"
        )
        for name in ("extract", "transform-a", "transform-b", "load"):
            print(f"    {name:12s} finished at {result.task_finish[name]:.2f}h")


if __name__ == "__main__":
    main()
