#!/usr/bin/env python3
"""Spot-Fleet-style bidding across instance types (beyond the paper).

The paper fixes the instance type and optimizes the bid; this example
asks the next question — which types should carry a divisible workload?
It ranks candidate types by expected cost per vCPU-hour, allocates a
64-vCPU-hour job either on the single cheapest type or capacity-weighted
across the three cheapest, and simulates both fleets.

Run:  python examples/fleet_allocation.py
"""

import numpy as np

from repro.constants import seconds
from repro.core.fleet import plan_fleet, rank_fleet_options, run_fleet
from repro.traces import generate_equilibrium_history, generate_renewal_history

CANDIDATES = ("c3.xlarge", "c3.2xlarge", "c3.4xlarge", "r3.xlarge", "r3.2xlarge")
WORK = 64.0  # vCPU-hours


def main() -> None:
    rng = np.random.default_rng(31)
    histories = {
        name: generate_equilibrium_history(name, days=60, rng=rng)
        for name in CANDIDATES
    }

    print(f"ranking {len(CANDIDATES)} types for a {WORK:g} vCPU-hour job:\n")
    ranking = rank_fleet_options(
        histories, work_vcpu_hours=WORK, recovery_time=seconds(30)
    )
    for option in ranking:
        print(
            f"  {option.instance_type.name:11s} bid ${option.decision.price:.4f}/h"
            f"  ${option.cost_per_vcpu_hour:.5f}/vCPU-h"
            f"  (on-demand ${option.ondemand_cost_per_vcpu_hour:.5f})"
        )

    for strategy in ("cheapest", "diversified"):
        plan = plan_fleet(
            histories, work_vcpu_hours=WORK, recovery_time=seconds(30),
            strategy=strategy, max_types=3,
        )
        futures = {
            alloc.instance_type.name: generate_renewal_history(
                alloc.instance_type.name, days=8, rng=rng
            )
            for alloc in plan.allocations
        }
        result = run_fleet(plan, futures)
        names = ", ".join(
            f"{a.instance_type.name}({a.work_vcpu_hours:.0f})"
            for a in plan.allocations
        )
        print(
            f"\n{strategy}: {names}\n"
            f"  expected ${plan.total_expected_cost:.3f}  "
            f"realized ${result.total_cost:.3f}  "
            f"T={result.completion_time:.2f}h  "
            f"interruptions={result.interruptions}"
        )


if __name__ == "__main__":
    main()
