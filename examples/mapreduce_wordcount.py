#!/usr/bin/env python3
"""MapReduce word count on spot instances (Sections 6 and 7.2).

Reproduces the paper's EMR experiment in miniature: a Common-Crawl-style
word-count workload is planned with the eq. 20 master/slave strategy
(one-time master, persistent slaves on a beefier instance type) and
simulated against per-type price traces, then compared with the
on-demand baseline.

Run:  python examples/mapreduce_wordcount.py
"""

import numpy as np

from repro import plan_master_slave
from repro.mapreduce import WordCountWorkload, ondemand_baseline, run_plan_on_traces
from repro.traces import (
    generate_equilibrium_history,
    generate_renewal_history,
    get_instance_type,
)


def main() -> None:
    rng = np.random.default_rng(11)
    master_t = get_instance_type("m3.xlarge")
    slave_t = get_instance_type("c3.4xlarge")

    # ~200 GiB of crawl data at ~13 GiB/h of map throughput -> ~16h of
    # single-instance work, split across a small slave cluster.
    workload = WordCountWorkload(corpus_gib=200.0, throughput_gib_per_hour=13.0)
    job = workload.to_job_spec(num_slaves=6)

    master_hist = generate_equilibrium_history(master_t, days=60, rng=rng)
    slave_hist = generate_equilibrium_history(slave_t, days=60, rng=rng)
    plan = plan_master_slave(
        master_hist.to_distribution(),
        slave_hist.to_distribution(),
        job,
        master_ondemand=master_t.on_demand_price,
        slave_ondemand=slave_t.on_demand_price,
    )

    print(f"workload: {workload.corpus_gib:g} GiB word count "
          f"(t_s = {job.execution_time:.2f}h, M = {job.num_slaves})")
    print(f"master ({master_t.name}):  one-time bid ${plan.master_bid.price:.4f}/h")
    print(f"slaves ({slave_t.name}): persistent bid ${plan.slave_bid.price:.4f}/h")
    print(f"minimum viable slaves (eq. 20): {plan.min_slaves}")
    print(f"expected total cost: ${plan.total_expected_cost:.3f}\n")

    baseline = ondemand_baseline(
        plan.job, master_t.on_demand_price, slave_t.on_demand_price
    )
    results = []
    for run_idx in range(5):
        master_fut = generate_renewal_history(master_t, days=10, rng=rng)
        slave_fut = generate_renewal_history(slave_t, days=10, rng=rng)
        result = run_plan_on_traces(
            plan, master_fut, slave_fut, start_slot=int(rng.integers(0, 288))
        )
        results.append(result)
        print(
            f"run {run_idx + 1}: completed={result.completed}  "
            f"T={result.completion_time:.2f}h  cost=${result.total_cost:.3f}  "
            f"master/slave={result.master_cost_fraction:.1%}  "
            f"slave interruptions={result.slave_interruptions}"
        )

    mean_cost = float(np.mean([r.total_cost for r in results]))
    mean_time = float(np.mean([r.completion_time for r in results]))
    print()
    print(f"on-demand baseline: T={baseline.completion_time:.2f}h  "
          f"cost=${baseline.total_cost:.3f}")
    print(
        f"spot average:       T={mean_time:.2f}h  cost=${mean_cost:.3f}  "
        f"-> {1 - mean_cost / baseline.total_cost:.1%} cheaper, "
        f"{mean_time / baseline.completion_time - 1:+.1%} slower"
    )


if __name__ == "__main__":
    main()
