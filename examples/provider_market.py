#!/usr/bin/env python3
"""The provider's side of the market (Section 4).

Runs the closed-loop provider model — eq. 3 pricing against eq. 4 queue
dynamics with Pareto bid arrivals — and checks the paper's analytical
claims on the realized trajectory:

* the revenue-maximizing price falls as the utilization weight β rises;
* the bid queue remains bounded (Prop. 1), even when started far above
  the Lyapunov level;
* with constant arrivals the system settles at the Prop. 2 equilibrium;
* fitting the Section 4.3 procedure to a generated price history
  recovers the price distribution.

Run:  python examples/provider_market.py
"""

import numpy as np

from repro.provider import (
    DeterministicArrivals,
    ProviderSimulation,
    drift_bound,
    fit_both_families,
    optimal_spot_price,
)
from repro.provider.equilibrium import price_from_arrivals
from repro.traces import generate_equilibrium_history, get_instance_type, market_model_for


def main() -> None:
    itype = get_instance_type("m3.xlarge")
    model = market_model_for(itype)
    rng = np.random.default_rng(3)

    # --- β sweep ---------------------------------------------------------
    print("optimal spot price vs utilization weight beta (L = 50):")
    for beta in (0.05, 0.2, 0.8):
        price = optimal_spot_price(50.0, beta, model.pi_bar, model.lower)
        print(f"  beta={beta:4.2f}  pi* = {price:.4f}")

    # --- queue stability --------------------------------------------------
    bound = drift_bound(model.arrivals, model.theta, model.pi_bar, model.lower)
    sim = ProviderSimulation(
        arrivals=model.arrivals,
        beta=model.beta,
        theta=model.theta,
        pi_bar=model.pi_bar,
        pi_min=model.lower,
        initial_demand=5.0 * bound.stable_queue_level,
    )
    trace = sim.run(5000, rng)
    print(
        f"\nqueue started at {trace.demand[0]:.1f} "
        f"(5x the Lyapunov level {bound.stable_queue_level:.1f}); "
        f"after 5000 slots: L = {trace.demand[-1]:.3f}, "
        f"long-run mean = {trace.demand[-1000:].mean():.3f}"
    )

    # --- Prop. 2 equilibrium ----------------------------------------------
    lam = model.arrivals.mean()
    det = ProviderSimulation(
        arrivals=DeterministicArrivals(lam),
        beta=model.beta,
        theta=model.theta,
        pi_bar=model.pi_bar,
        pi_min=model.lower,
    )
    det_trace = det.run(3000, rng)
    predicted = max(model.lower, price_from_arrivals(lam, model.beta, model.theta, model.pi_bar))
    print(
        f"constant arrivals {lam:.4f}: price settles at "
        f"{det_trace.price[-1]:.6f} vs h(lambda) = {predicted:.6f}"
    )

    # --- Figure 3 fitting ----------------------------------------------------
    history = generate_equilibrium_history(itype, days=60, rng=rng)
    pareto, exponential = fit_both_families(history.prices, itype.on_demand_price)
    print(
        f"\nfitted to a 60-day history: pareto alpha={pareto.alpha:.2f} "
        f"floor mass={pareto.floor_mass:.3f} (true {itype.market.floor_mass}), "
        f"mse={pareto.mse_mass:.2e}; exponential eta={exponential.eta:.2e}, "
        f"mse={exponential.mse_mass:.2e}"
    )


if __name__ == "__main__":
    main()
