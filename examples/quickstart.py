#!/usr/bin/env python3
"""Quickstart: compute an optimal spot bid and backtest it.

Mirrors the paper's core workflow (Figure 1): build the price
distribution from two months of history, compute the Prop. 4/5 optimal
bids for a one-hour job, and execute the persistent bid against a
held-out week of prices on the market simulator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BiddingClient,
    DecisionRequest,
    JobSpec,
    Strategy,
    generate_equilibrium_history,
    generate_renewal_history,
    get_instance_type,
    seconds,
)


def main() -> None:
    rng = np.random.default_rng(7)
    itype = get_instance_type("r3.xlarge")

    # The two-month history Amazon exposed, and a held-out future week.
    history = generate_equilibrium_history(itype, days=60, rng=rng)
    future = generate_renewal_history(itype, days=7, rng=rng)

    client = BiddingClient(history, ondemand_price=itype.on_demand_price)
    job = JobSpec(execution_time=1.0, recovery_time=seconds(30))

    print(f"instance: {itype.name}  on-demand ${itype.on_demand_price}/h")
    print(f"history:  {history}")
    print()

    for strategy in (Strategy.ONE_TIME, Strategy.PERSISTENT):
        decision = client.decide(DecisionRequest(job=job, strategy=strategy))
        print(
            f"{strategy!s:10s}  bid ${decision.price:.4f}/h  "
            f"expected cost ${decision.expected_cost:.4f}  "
            f"expected completion {decision.expected_completion_time:.2f}h"
        )

    report = client.backtest(job, future, strategy=Strategy.PERSISTENT)
    outcome = report.outcome
    print()
    print(
        f"backtest (persistent): completed={outcome.completed}  "
        f"cost ${outcome.cost:.4f}  completion {outcome.completion_time:.2f}h  "
        f"interruptions {outcome.interruptions}"
    )
    savings = 1.0 - outcome.cost / client.ondemand_cost(job)
    print(f"savings vs on-demand: {savings:.1%}")


if __name__ == "__main__":
    main()
