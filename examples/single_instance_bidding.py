#!/usr/bin/env python3
"""Single-instance bidding strategies, compared in depth (Sections 5, 7.1).

For one instance type this example:

1. computes the one-time bid (Prop. 4), persistent bids for two recovery
   times (Prop. 5), the 90th-percentile heuristic, and the retrospective
   best offline price;
2. backtests each strategy over many held-out futures and reports mean
   cost, completion time and interruption counts — a miniature of the
   paper's Figures 5 and 6;
3. shows the risk-aware extensions: a deadline chance constraint and a
   variance bound (Section 8).

Run:  python examples/single_instance_bidding.py [instance-type]
"""

import sys

import numpy as np

from repro import (
    BiddingClient,
    DecisionRequest,
    JobSpec,
    Strategy,
    generate_equilibrium_history,
    generate_renewal_history,
    get_instance_type,
    retrospective_best_price,
    seconds,
)
from repro.extensions.risk import deadline_chance_bid, variance_bounded_bid


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "c3.4xlarge"
    itype = get_instance_type(name)
    rng = np.random.default_rng(2014)

    history = generate_equilibrium_history(itype, days=60, rng=rng)
    client = BiddingClient(history, ondemand_price=itype.on_demand_price)

    print(f"== {itype.name}: on-demand ${itype.on_demand_price}/h ==\n")

    # --- 1. the strategy menu -----------------------------------------
    def decide(job: JobSpec, strategy: Strategy):
        return client.decide(DecisionRequest(job=job, strategy=strategy))

    strategies = {
        "one-time": (
            JobSpec(1.0),
            decide(JobSpec(1.0), Strategy.ONE_TIME),
        ),
        "persistent t_r=10s": (
            JobSpec(1.0, seconds(10)),
            decide(JobSpec(1.0, seconds(10)), Strategy.PERSISTENT),
        ),
        "persistent t_r=30s": (
            JobSpec(1.0, seconds(30)),
            decide(JobSpec(1.0, seconds(30)), Strategy.PERSISTENT),
        ),
        "90th percentile": (
            JobSpec(1.0, seconds(30)),
            decide(JobSpec(1.0, seconds(30)), Strategy.PERCENTILE),
        ),
    }
    for label, (_job, d) in strategies.items():
        print(f"{label:20s} bid ${d.price:.4f}  expected cost ${d.expected_cost:.4f}")

    recent = generate_renewal_history(itype, days=1, rng=rng)
    retro = retrospective_best_price(recent.prices)
    print(f"{'retrospective p~':20s} bid ${retro:.4f}  (last 10h of history)\n")

    # --- 2. backtests ---------------------------------------------------
    print(f"{'strategy':20s} {'mean $':>9s} {'mean T(h)':>10s} {'intr':>5s} {'done':>6s}")
    repetitions = 15
    for label, (job, decision) in strategies.items():
        costs, times, interruptions, done = [], [], 0, 0
        for _ in range(repetitions):
            future = generate_renewal_history(itype, days=6, rng=rng)
            out = client.execute(
                decision, job, future, start_slot=int(rng.integers(0, 288))
            )
            if out.completed:
                done += 1
                costs.append(out.cost)
                times.append(out.completion_time)
                interruptions += out.interruptions
        print(
            f"{label:20s} {np.mean(costs):9.4f} {np.mean(times):10.2f} "
            f"{interruptions:5d} {done:3d}/{repetitions}"
        )
    ondemand = client.ondemand_cost(JobSpec(1.0))
    print(f"{'on-demand':20s} {ondemand:9.4f} {1.0:10.2f}\n")

    # --- 3. risk-aware variants ------------------------------------------
    job30 = JobSpec(1.0, seconds(30))
    chance = deadline_chance_bid(
        client.distribution, job30, deadline=3.0, miss_probability=0.05
    )
    print(
        f"deadline bid (P[T>3h] <= 5%):  ${chance.price:.4f}  "
        f"F(p)={chance.acceptance_probability:.3f}"
    )
    bounded = variance_bounded_bid(client.distribution, job30, max_variance=1e-5)
    print(
        f"variance-bounded bid (<=1e-5): ${bounded.price:.4f}  "
        f"expected cost ${bounded.expected_cost:.4f}"
    )


if __name__ == "__main__":
    main()
