"""repro — a reproduction of "How to Bid the Cloud" (SIGCOMM 2015).

The library has three layers:

* ``repro.core`` — the paper's contribution: optimal spot-bidding
  strategies for one-time, persistent and MapReduce jobs (Sections 5–6)
  plus the Figure 1 bidding client.
* ``repro.provider`` — the Section 4 provider model: revenue-maximizing
  spot prices, queue stability, the equilibrium price distribution, and
  the Figure 3 fitting procedure.
* Substrates — ``repro.traces`` (instance catalog, price histories),
  ``repro.market`` (the discrete-time spot-market simulator standing in
  for live EC2), ``repro.sweep`` (batched bid×trace backtests) and
  ``repro.mapreduce`` (master/slave cluster runner).

Quickstart::

    import numpy as np
    from repro import (JobSpec, BiddingClient, Strategy, run_sweep,
                       generate_equilibrium_history, get_instance_type,
                       seconds)

    rng = np.random.default_rng(7)
    itype = get_instance_type("r3.xlarge")
    history = generate_equilibrium_history(itype, days=60, rng=rng)
    future = generate_equilibrium_history(itype, days=7, rng=rng)

    client = BiddingClient(history, ondemand_price=itype.on_demand_price)
    job = JobSpec(execution_time=1.0, recovery_time=seconds(30))
    report = client.backtest(job, future, strategy=Strategy.PERSISTENT)
    print(report.decision.price, report.outcome.cost)

    # Evaluate a whole bid grid against the future trace in one shot:
    grid = run_sweep(future, np.linspace(0.02, 0.2, 64), job)
    print(grid.best_bid(), grid.completion_rate())
"""

from .constants import DEFAULT_SLOT_HOURS, minutes, seconds
from .core import (
    AdaptiveBiddingClient,
    BidDecision,
    BiddingClient,
    BidKind,
    BidRunReport,
    DecisionRequest,
    DecisionResponse,
    DegradedDecision,
    EmpiricalPriceDistribution,
    FleetPlan,
    JobSpec,
    MapReduceJobSpec,
    MapReducePlan,
    ParallelJobSpec,
    PriceDistribution,
    Strategy,
    normalize_strategy,
    optimal_onetime_bid,
    optimal_parallel_bid,
    optimal_persistent_bid,
    percentile_bid,
    plan_fleet,
    plan_master_slave,
    plan_with_optimal_slaves,
    rank_fleet_options,
    retrospective_best_price,
    run_fleet,
)
from .errors import (
    CatalogError,
    DistributionError,
    FaultError,
    FittingError,
    InfeasibleBidError,
    MarketError,
    PlanError,
    ReproError,
    SweepExecutionError,
    TraceError,
)
from .market import OutcomeStats, SpotMarket, TracePriceSource
from .provider import EquilibriumPriceModel, ProviderSimulation
from .resilience import (
    BackoffPolicy,
    ChaosReport,
    FaultInjector,
    FaultSpec,
    FaultyPriceSource,
    ItemFailure,
    PricePlateau,
    PriceSpike,
    RevocationStorm,
    SlotDropout,
    SlotDuplication,
    SweepJournal,
    TraceTruncation,
    default_fault_suite,
    run_chaos,
)
from .sweep import SweepCounters, SweepReport, run_sweep
from .traces import (
    SpotPriceHistory,
    generate_correlated_history,
    generate_equilibrium_history,
    generate_provider_history,
    generate_regime_shift_history,
    generate_renewal_history,
    get_instance_type,
    market_model_for,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SLOT_HOURS",
    "minutes",
    "seconds",
    "AdaptiveBiddingClient",
    "BidDecision",
    "BiddingClient",
    "FleetPlan",
    "plan_fleet",
    "rank_fleet_options",
    "run_fleet",
    "BidKind",
    "BidRunReport",
    "DecisionRequest",
    "DecisionResponse",
    "DegradedDecision",
    "EmpiricalPriceDistribution",
    "JobSpec",
    "MapReduceJobSpec",
    "MapReducePlan",
    "ParallelJobSpec",
    "PriceDistribution",
    "Strategy",
    "normalize_strategy",
    "optimal_onetime_bid",
    "optimal_parallel_bid",
    "optimal_persistent_bid",
    "percentile_bid",
    "plan_master_slave",
    "plan_with_optimal_slaves",
    "retrospective_best_price",
    "CatalogError",
    "DistributionError",
    "FaultError",
    "FittingError",
    "InfeasibleBidError",
    "MarketError",
    "PlanError",
    "ReproError",
    "SweepExecutionError",
    "TraceError",
    "OutcomeStats",
    "SpotMarket",
    "TracePriceSource",
    "BackoffPolicy",
    "ChaosReport",
    "FaultInjector",
    "FaultSpec",
    "FaultyPriceSource",
    "ItemFailure",
    "PricePlateau",
    "PriceSpike",
    "RevocationStorm",
    "SlotDropout",
    "SlotDuplication",
    "SweepJournal",
    "TraceTruncation",
    "default_fault_suite",
    "run_chaos",
    "SweepCounters",
    "SweepReport",
    "run_sweep",
    "EquilibriumPriceModel",
    "ProviderSimulation",
    "SpotPriceHistory",
    "generate_correlated_history",
    "generate_equilibrium_history",
    "generate_provider_history",
    "generate_regime_shift_history",
    "generate_renewal_history",
    "get_instance_type",
    "market_model_for",
    "__version__",
]
