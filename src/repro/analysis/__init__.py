"""Shared statistical utilities."""

from .distributions import KSResult, ecdf, ks_two_sample, mean_squared_error
from .trace_stats import TraceSummary, describe_history, episode_lengths
from .stats import (
    Summary,
    bootstrap_mean_ci,
    percent_difference,
    savings_fraction,
    summarize,
)

__all__ = [
    "TraceSummary",
    "describe_history",
    "episode_lengths",
    "KSResult",
    "ecdf",
    "ks_two_sample",
    "mean_squared_error",
    "Summary",
    "bootstrap_mean_ci",
    "percent_difference",
    "savings_fraction",
    "summarize",
]
