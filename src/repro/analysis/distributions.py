"""Distribution-comparison utilities shared by fitting and experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats

__all__ = ["ecdf", "mean_squared_error", "KSResult", "ks_two_sample"]


def ecdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns ``(sorted_values, cumulative_probabilities)``."""
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        raise ValueError("samples must be non-empty")
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def mean_squared_error(a: Sequence[float], b: Sequence[float]) -> float:
    """Plain MSE between two equal-length vectors."""
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    return float(np.mean((x - y) ** 2))


@dataclass(frozen=True)
class KSResult:
    """Two-sample Kolmogorov–Smirnov test result."""

    statistic: float
    p_value: float

    def similar(self, *, threshold: float = 0.01) -> bool:
        """The paper's Section 4.3 criterion: distributions are treated as
        similar when the K-S p-value exceeds 0.01."""
        return self.p_value > threshold


def ks_two_sample(a: Sequence[float], b: Sequence[float]) -> KSResult:
    """Two-sample K-S test (used for the day/night price comparison)."""
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size == 0 or y.size == 0:
        raise ValueError("both samples must be non-empty")
    result = stats.ks_2samp(x, y)
    return KSResult(statistic=float(result.statistic), p_value=float(result.pvalue))
