"""Summary statistics for experiment reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["percent_difference", "savings_fraction", "Summary", "summarize", "bootstrap_mean_ci"]


def percent_difference(value: float, baseline: float) -> float:
    """``100·(value − baseline)/baseline`` — the scale of Figure 6's axes."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return 100.0 * (value - baseline) / baseline


def savings_fraction(cost: float, baseline: float) -> float:
    """``1 − cost/baseline`` — e.g. 0.91 for the paper's 91% saving."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline!r}")
    return 1.0 - cost / baseline


@dataclass(frozen=True)
class Summary:
    """Mean/std/min/max of a sample, with its size."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty sample (ddof=1 std when n > 1)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return Summary(
        mean=float(arr.mean()),
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        n=int(arr.size),
    )


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    rng: np.random.Generator,
    n_resamples: int = 2000,
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    lo = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, lo)),
        float(np.quantile(means, 1.0 - lo)),
    )
