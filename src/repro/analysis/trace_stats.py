"""Descriptive statistics for spot-price traces.

What an operator wants to know about a price history before bidding on
it: how often the price sits at its floor, how long floor/excursion
episodes last, how heavy the tail is, and how sticky consecutive slots
are.  Backs the ``repro-bid describe`` command and the trace sanity
checks in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import TraceError
from ..traces.history import SpotPriceHistory

__all__ = ["TraceSummary", "describe_history", "episode_lengths"]


@dataclass(frozen=True)
class TraceSummary:
    """One trace's headline statistics."""

    n_slots: int
    duration_hours: float
    floor_price: float
    max_price: float
    mean_price: float
    #: Fraction of slots priced exactly at the floor.
    floor_occupancy: float
    #: Mean length of consecutive floor runs, hours.
    mean_floor_episode_hours: float
    #: Mean length of consecutive above-floor runs, hours.
    mean_excursion_hours: float
    #: Fraction of slot transitions where the price changed.
    change_rate: float
    #: Key quantiles as (percent, price) pairs.
    quantiles: Tuple[Tuple[float, float], ...]

    def render(self) -> str:
        lines = [
            f"slots:            {self.n_slots} ({self.duration_hours:.1f} h)",
            f"price range:      {self.floor_price:.4f} – {self.max_price:.4f} $/h",
            f"mean price:       {self.mean_price:.4f} $/h",
            f"floor occupancy:  {self.floor_occupancy:.1%}",
            f"floor episodes:   {self.mean_floor_episode_hours:.2f} h mean",
            f"excursions:       {self.mean_excursion_hours:.2f} h mean",
            f"change rate:      {self.change_rate:.1%} of transitions",
            "quantiles:        "
            + "  ".join(f"p{int(q)}={v:.4f}" for q, v in self.quantiles),
        ]
        return "\n".join(lines)


def episode_lengths(mask: np.ndarray) -> List[int]:
    """Lengths (in slots) of each maximal run of ``True`` in ``mask``."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise TraceError("mask must be 1-D")
    lengths: List[int] = []
    run = 0
    for value in mask:
        if value:
            run += 1
        elif run:
            lengths.append(run)
            run = 0
    if run:
        lengths.append(run)
    return lengths


def describe_history(history: SpotPriceHistory) -> TraceSummary:
    """Summarize a trace's price levels and temporal texture."""
    prices = history.prices
    floor = float(prices.min())
    at_floor = prices <= floor + 1e-12
    floor_runs = episode_lengths(at_floor)
    excursion_runs = episode_lengths(~at_floor)
    changes = (
        float(np.mean(np.diff(prices) != 0.0)) if prices.size > 1 else 0.0
    )
    quantiles = tuple(
        (q, float(np.percentile(prices, q))) for q in (50.0, 90.0, 95.0, 99.0)
    )
    to_hours = history.slot_length
    return TraceSummary(
        n_slots=history.n_slots,
        duration_hours=history.duration_hours,
        floor_price=floor,
        max_price=float(prices.max()),
        mean_price=float(prices.mean()),
        floor_occupancy=float(at_floor.mean()),
        mean_floor_episode_hours=(
            float(np.mean(floor_runs)) * to_hours if floor_runs else 0.0
        ),
        mean_excursion_hours=(
            float(np.mean(excursion_runs)) * to_hours if excursion_runs else 0.0
        ),
        change_rate=changes,
        quantiles=quantiles,
    )
