"""Kernel benchmark harness: the repo's recorded perf trajectory.

``repro-bid bench`` runs the canonical sweep-kernel workloads in
:mod:`repro.bench.cases` against both kernel families (event-driven and
dense reference), verifies their outputs are bitwise identical while the
clock is running honest, and emits a versioned ``BENCH_sweep.json``
snapshot.  :mod:`repro.bench.compare` gates changes: a run whose speedup
falls more than the tolerance below the committed baseline fails.
"""

from .cases import (
    BenchCase,
    CASES,
    MapReduceBenchCase,
    SchedulerBenchCase,
    ServeBenchCase,
    case_names,
    quick_case_names,
    select_cases,
)
from .compare import Regression, compare_reports
from .runner import run_benchmarks

__all__ = [
    "BenchCase",
    "CASES",
    "MapReduceBenchCase",
    "Regression",
    "SchedulerBenchCase",
    "ServeBenchCase",
    "case_names",
    "compare_reports",
    "quick_case_names",
    "run_benchmarks",
    "select_cases",
]
