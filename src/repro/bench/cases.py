"""Canonical sweep-kernel benchmark workloads.

Each case pins a seeded synthetic workload — a floor-plus-spikes price
stack of the same shape the paper's experiments sweep — so successive
``BENCH_sweep.json`` snapshots measure the code, not the inputs.  The
*large* persistent case (1k-slot traces × a 256-bid grid) is the
acceptance workload for the event-driven kernels' speedup target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.types import Strategy

__all__ = [
    "BenchCase",
    "CASES",
    "case_names",
    "quick_case_names",
    "select_cases",
]


@dataclass(frozen=True)
class BenchCase:
    """One reproducible kernel workload."""

    name: str
    strategy: Strategy
    n_traces: int
    n_slots: int
    n_bids: int
    work: float
    recovery_time: float
    slot_length: float
    seed: int
    #: Ragged traces: fraction of each trace left valid (1.0 = dense).
    min_valid_fraction: float = 1.0
    #: Included in ``repro-bid bench --quick`` (CI smoke).
    quick: bool = False

    def build(self) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Materialize ``(prices, bids, n_valid)`` for this case.

        Prices follow the familiar spot shape: a low floor most of the
        time with occasional price spikes; bids span the floor-to-spike
        range so the grid exercises never-running, always-running and
        frequently-interrupted lanes alike.
        """
        rng = np.random.default_rng(self.seed)
        floor = rng.uniform(0.02, 0.05, size=(self.n_traces, 1))
        prices = floor + rng.exponential(0.01, size=(self.n_traces, self.n_slots))
        spikes = rng.random((self.n_traces, self.n_slots)) < 0.08
        prices = np.where(
            spikes,
            prices + rng.uniform(0.2, 1.0, size=prices.shape),
            prices,
        )
        bids = np.linspace(0.02, 0.6, self.n_bids)
        n_valid: Optional[np.ndarray] = None
        if self.min_valid_fraction < 1.0:
            lo = max(1, int(self.n_slots * self.min_valid_fraction))
            n_valid = rng.integers(
                lo, self.n_slots + 1, size=self.n_traces
            ).astype(np.int64)
            mask = np.arange(self.n_slots)[None, :] >= n_valid[:, None]
            prices = np.where(mask, np.inf, prices)
        return prices, bids, n_valid

    @property
    def lane_slots(self) -> int:
        """Dense work volume: valid slots × bids (the O(S·T·B) measure)."""
        if self.min_valid_fraction >= 1.0:
            return self.n_traces * self.n_slots * self.n_bids
        _, _, n_valid = self.build()
        return int(n_valid.sum()) * self.n_bids


CASES: List[BenchCase] = [
    BenchCase(
        name="persistent_large",
        strategy=Strategy.PERSISTENT,
        n_traces=24,
        n_slots=1000,
        n_bids=256,
        work=10.0,
        recovery_time=0.25,
        slot_length=1.0,
        seed=20150817,
    ),
    BenchCase(
        name="onetime_large",
        strategy=Strategy.ONE_TIME,
        n_traces=24,
        n_slots=1000,
        n_bids=256,
        work=4.0,
        recovery_time=0.0,
        slot_length=1.0,
        seed=20150818,
        quick=True,
    ),
    BenchCase(
        name="persistent_ragged",
        strategy=Strategy.PERSISTENT,
        n_traces=32,
        n_slots=800,
        n_bids=64,
        work=6.0,
        recovery_time=0.5,
        slot_length=1.0,
        seed=20150819,
        min_valid_fraction=0.25,
    ),
    BenchCase(
        name="persistent_small",
        strategy=Strategy.PERSISTENT,
        n_traces=16,
        n_slots=500,
        n_bids=96,
        work=5.0,
        recovery_time=0.25,
        slot_length=1.0,
        seed=20150820,
        quick=True,
    ),
    BenchCase(
        name="onetime_small",
        strategy=Strategy.ONE_TIME,
        n_traces=16,
        n_slots=1000,
        n_bids=128,
        work=2.0,
        recovery_time=0.0,
        slot_length=1.0,
        seed=20150821,
    ),
]

_BY_NAME: Dict[str, BenchCase] = {case.name: case for case in CASES}


def case_names() -> List[str]:
    return [case.name for case in CASES]


def quick_case_names() -> List[str]:
    return [case.name for case in CASES if case.quick]


def select_cases(
    names: Optional[Sequence[str]] = None, *, quick: bool = False
) -> List[BenchCase]:
    """Resolve a case selection: explicit names beat the quick flag."""
    if names:
        missing = [n for n in names if n not in _BY_NAME]
        if missing:
            raise ValueError(
                f"unknown benchmark case(s) {missing}; "
                f"available: {', '.join(case_names())}"
            )
        return [_BY_NAME[n] for n in names]
    if quick:
        return [case for case in CASES if case.quick]
    return list(CASES)
