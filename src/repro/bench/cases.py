"""Canonical sweep-kernel benchmark workloads.

Each case pins a seeded synthetic workload — a floor-plus-spikes price
stack of the same shape the paper's experiments sweep — so successive
``BENCH_sweep.json`` snapshots measure the code, not the inputs.  The
*large* persistent case (1k-slot traces × a 256-bid grid) is the
acceptance workload for the event-driven kernels' speedup target.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.types import Strategy

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..traces.history import SpotPriceHistory

__all__ = [
    "BenchCase",
    "ExtensionBenchCase",
    "MapReduceBenchCase",
    "SchedulerBenchCase",
    "ServeBenchCase",
    "CASES",
    "case_names",
    "quick_case_names",
    "select_cases",
]


@dataclass(frozen=True)
class BenchCase:
    """One reproducible kernel workload."""

    name: str
    strategy: Strategy
    n_traces: int
    n_slots: int
    n_bids: int
    work: float
    recovery_time: float
    slot_length: float
    seed: int
    #: Ragged traces: fraction of each trace left valid (1.0 = dense).
    min_valid_fraction: float = 1.0
    #: Included in ``repro-bid bench --quick`` (CI smoke).
    quick: bool = False
    #: Compiled-tier pairing: time the numba kernel against the event
    #: kernel (instead of event vs. oracle).  Skipped — reported under
    #: the payload's ``"skipped"`` list — when the compiled tier is
    #: unavailable.
    compiled: bool = False

    def build(self) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Materialize ``(prices, bids, n_valid)`` for this case.

        Prices follow the familiar spot shape: a low floor most of the
        time with occasional price spikes; bids span the floor-to-spike
        range so the grid exercises never-running, always-running and
        frequently-interrupted lanes alike.
        """
        rng = np.random.default_rng(self.seed)
        floor = rng.uniform(0.02, 0.05, size=(self.n_traces, 1))
        prices = floor + rng.exponential(0.01, size=(self.n_traces, self.n_slots))
        spikes = rng.random((self.n_traces, self.n_slots)) < 0.08
        prices = np.where(
            spikes,
            prices + rng.uniform(0.2, 1.0, size=prices.shape),
            prices,
        )
        bids = np.linspace(0.02, 0.6, self.n_bids)
        n_valid: Optional[np.ndarray] = None
        if self.min_valid_fraction < 1.0:
            lo = max(1, int(self.n_slots * self.min_valid_fraction))
            n_valid = rng.integers(
                lo, self.n_slots + 1, size=self.n_traces
            ).astype(np.int64)
            mask = np.arange(self.n_slots)[None, :] >= n_valid[:, None]
            prices = np.where(mask, np.inf, prices)
        return prices, bids, n_valid

    @property
    def lane_slots(self) -> int:
        """Dense work volume: valid slots × bids (the O(S·T·B) measure)."""
        if self.min_valid_fraction >= 1.0:
            return self.n_traces * self.n_slots * self.n_bids
        _, _, n_valid = self.build()
        return int(n_valid.sum()) * self.n_bids

    @property
    def label(self) -> str:
        return self.strategy.value


@dataclass(frozen=True)
class MapReduceBenchCase:
    """One reproducible MapReduce plan-grid workload (§6.2 end-to-end).

    The grid crosses ``n_master_bids × n_slave_bids`` plans with
    ``n_pairs`` master/slave trace pairs, each evaluated from
    ``n_starts`` start slots — the shape of the Figure 7 / Table 4
    multi-start evaluation.  The reference timing is the scalar
    dual-market runner; the contender is the event-driven grid kernel.
    """

    name: str
    n_pairs: int
    n_starts: int
    n_slots: int
    n_master_bids: int
    n_slave_bids: int
    num_slaves: int
    #: Total cluster execution time t_s, hours.
    work: float
    recovery_time: float
    slot_length: float
    seed: int
    quick: bool = False
    #: Compiled-tier pairing: time ``kernel="compiled"`` against the
    #: event grid kernel.  Skipped when the compiled tier is unavailable.
    compiled: bool = False

    @property
    def n_plans(self) -> int:
        return self.n_master_bids * self.n_slave_bids

    @property
    def n_runs(self) -> int:
        return self.n_pairs * self.n_starts

    # Aliases so MapReduce rows report through the same schema fields
    # (traces × slots × bids) as the single-request sweep cases.
    @property
    def n_traces(self) -> int:
        return self.n_runs

    @property
    def n_bids(self) -> int:
        return self.n_plans

    @property
    def label(self) -> str:
        return "mapreduce"

    def build(self) -> Tuple[List, List, List, List[int]]:
        """Materialize ``(plans, master_traces, slave_traces, starts)``."""
        from ..core.types import BidDecision, BidKind, MapReduceJobSpec, MapReducePlan

        rng = np.random.default_rng(self.seed)
        job = MapReduceJobSpec(
            execution_time=self.work,
            num_slaves=self.num_slaves,
            recovery_time=self.recovery_time,
            slot_length=self.slot_length,
        )
        # Bids span the floor-to-spike range so the grid mixes lanes
        # that never launch, always run, and restart frequently.
        plans = [
            MapReducePlan(
                job=job,
                master_bid=BidDecision(
                    price=float(mb), kind=BidKind.ONE_TIME, expected_cost=0.1
                ),
                slave_bid=BidDecision(
                    price=float(sb), kind=BidKind.PERSISTENT, expected_cost=0.1
                ),
                required_master_time=1.0,
                min_slaves=1,
            )
            for mb in np.linspace(0.04, 0.6, self.n_master_bids)
            for sb in np.linspace(0.04, 0.6, self.n_slave_bids)
        ]

        def trace() -> "SpotPriceHistory":
            floor = rng.uniform(0.02, 0.05)
            prices = floor + rng.exponential(0.01, size=self.n_slots)
            spikes = rng.random(self.n_slots) < 0.08
            prices = np.where(
                spikes, prices + rng.uniform(0.2, 1.0, size=self.n_slots), prices
            )
            from ..traces.history import SpotPriceHistory

            return SpotPriceHistory(
                prices=np.ascontiguousarray(prices),
                slot_length=self.slot_length,
            )

        pairs = [(trace(), trace()) for _ in range(self.n_pairs)]
        span = self.n_slots // 2
        start_grid = [(j * span) // self.n_starts for j in range(self.n_starts)]
        master_traces = [m for m, _ in pairs for _ in start_grid]
        slave_traces = [s for _, s in pairs for _ in start_grid]
        starts = start_grid * self.n_pairs
        return plans, master_traces, slave_traces, starts

    @property
    def lane_slots(self) -> int:
        """Dense work volume: plans × per-run budgets."""
        span = self.n_slots // 2
        per_pair = sum(
            self.n_slots - (j * span) // self.n_starts
            for j in range(self.n_starts)
        )
        return self.n_plans * self.n_pairs * per_pair


@dataclass(frozen=True)
class ServeBenchCase:
    """One reproducible serving workload (:mod:`repro.serve`).

    The *event* path is the warm table-backed decision service: tables
    and cache built once, then ``n_requests`` seeded decisions answered
    in-process through :meth:`~repro.serve.service.BidService.handle`.
    The *reference* is the pre-serving cost of the same answers — every
    request rebuilds the empirical distribution from the full history and
    runs the optimizer from scratch, exactly what a stateless batch
    client pays per question.  Both paths run the same optimizer code on
    the same history, so on-grid requests must agree bitwise.
    """

    name: str
    n_requests: int
    n_slots: int
    grid_shape: Tuple[int, int]
    ondemand_price: float
    slot_length: float
    seed: int
    on_grid_fraction: float = 0.5
    quick: bool = False

    # Aliases so serving rows report through the same schema fields
    # (traces × slots × bids) as the sweep cases: one market trace,
    # its history length, and one "bid" per served request.
    @property
    def n_traces(self) -> int:
        return 1

    @property
    def n_bids(self) -> int:
        return self.n_requests

    @property
    def lane_slots(self) -> int:
        """Work volume: decisions served."""
        return self.n_requests

    @property
    def label(self) -> str:
        return "serve"

    def build(self) -> Tuple["SpotPriceHistory", object, List[object]]:
        """Materialize ``(history, grid, requests)`` for this case."""
        from ..serve.loadgen import build_requests
        from ..serve.tables import default_grid
        from ..traces.history import SpotPriceHistory

        rng = np.random.default_rng(self.seed)
        floor = rng.uniform(0.02, 0.05)
        prices = floor + rng.exponential(0.01, size=self.n_slots)
        spikes = rng.random(self.n_slots) < 0.08
        prices = np.where(
            spikes, prices + rng.uniform(0.2, 1.0, size=self.n_slots), prices
        )
        history = SpotPriceHistory(
            prices=np.ascontiguousarray(prices), slot_length=self.slot_length
        )
        grid = default_grid(shape=self.grid_shape, slot_length=self.slot_length)
        requests = build_requests(
            self.n_requests,
            grid=grid,
            slot_length=self.slot_length,
            rng=rng,
            on_grid_fraction=self.on_grid_fraction,
        )
        return history, grid, requests


@dataclass(frozen=True)
class SchedulerBenchCase:
    """One reproducible work-stealing scheduler workload under a pinned
    straggler (:mod:`repro.scheduler`).

    Worker slot 0 stalls for ``stall_seconds`` on its first shard (a
    seeded :class:`~repro.resilience.faults.WorkerFaults` plan scoped to
    that slot); the other workers stay healthy.  The *reference* timing
    runs with speculation disabled — the batch waits the stall out — and
    the *event* timing is the same chaos with straggler re-dispatch on,
    so the gated speedup is the speculation machinery itself.  Both runs
    must return bitwise-identical shard results.
    """

    name: str
    n_shards: int
    max_workers: int
    #: Elements of seeded RNG work each shard reduces.
    shard_size: int
    stall_seconds: float
    straggler_factor: float
    straggler_min_seconds: float
    seed: int
    quick: bool = False

    # Aliases so scheduler rows report through the same schema fields
    # (traces × slots × bids) as the sweep cases: one "trace" per shard,
    # the shard's work volume as its slot count, one lane per shard.
    @property
    def n_traces(self) -> int:
        return self.n_shards

    @property
    def n_slots(self) -> int:
        return self.shard_size

    @property
    def n_bids(self) -> int:
        return 1

    @property
    def lane_slots(self) -> int:
        """Work volume: shard reductions executed."""
        return self.n_shards * self.shard_size

    @property
    def label(self) -> str:
        return "scheduler"

    def build(self) -> Tuple[List[Tuple[int, int, int]]]:
        """Materialize the shard payloads (a 1-tuple, like all cases)."""
        return ([(self.seed, i, self.shard_size) for i in range(self.n_shards)],)

    def faults(self) -> object:
        """The pinned-straggler fault schedule both timed runs share."""
        from ..resilience.faults import WorkerFaults

        return WorkerFaults(
            kill_rate=0.0,
            stall_rate=1.0,
            stall_seconds=self.stall_seconds,
            slow_start_rate=0.0,
            seed=self.seed,
            first_shards=1,
            max_chaos_epochs=1,
            only_workers=(0,),
        )


@dataclass(frozen=True)
class ExtensionBenchCase:
    """One reproducible extension-kernel workload
    (:mod:`repro.extensions.kernels`).

    The contender is the batched kernel named by ``kernel`` (a
    ``_EXT_KERNELS`` dispatch key); the reference timing is its retained
    ``*_reference`` scalar oracle on identical inputs.  The runner
    asserts the two lanes' result dicts compare bitwise equal before any
    speedup is reported — the same gate the sweep and MapReduce lanes
    pass.
    """

    name: str
    #: Dispatch-table key into ``repro.extensions.kernels._EXT_KERNELS``.
    kernel: str
    #: Observations in the fitted empirical price distribution.
    n_obs: int
    #: Candidate bid prices scanned.
    n_candidates: int
    work: float
    recovery_time: float
    slot_length: float
    seed: int
    #: On-demand fraction grid points (``portfolio_grid`` only).
    n_fractions: int = 0
    #: π̄ for the portfolio's on-demand leg (``portfolio_grid`` only).
    ondemand_price: float = 0.0
    #: Trace rows in the price matrix (``persistence_grid`` only).
    n_rows: int = 0
    #: Task specs in the DAG grid (``dag_grid`` only).
    n_jobs: int = 0
    quick: bool = False
    #: Compiled-tier pairing: time the ``_EXT_KERNELS_COMPILED``
    #: counterpart against the vectorized kernel.  Skipped when the
    #: compiled tier is unavailable.
    compiled: bool = False

    # Aliases so extension rows report through the same schema fields
    # (traces × slots × bids) as the sweep cases: one distribution, its
    # observation count, one lane per scanned cell.
    @property
    def n_traces(self) -> int:
        return 1

    @property
    def n_slots(self) -> int:
        return self.n_obs

    @property
    def n_bids(self) -> int:
        return self.n_candidates

    @property
    def lane_slots(self) -> int:
        """Work volume: grid cells evaluated."""
        if self.kernel == "persistence_grid":
            return self.n_rows * self.n_candidates
        if self.kernel == "dag_grid":
            return self.n_jobs * self.n_candidates
        return max(1, self.n_fractions) * self.n_candidates

    @property
    def label(self) -> str:
        return "extension"

    def build(self) -> Tuple[tuple, dict]:
        """Materialize ``(args, kwargs)`` for the kernel/oracle pair."""
        from ..core.distributions import EmpiricalPriceDistribution
        from ..core.types import JobSpec

        rng = np.random.default_rng(self.seed)
        if self.kernel == "persistence_grid":
            floor = rng.uniform(0.02, 0.05, size=(self.n_rows, 1))
            matrix = floor + rng.exponential(
                0.01, size=(self.n_rows, self.n_obs)
            )
            spikes = rng.random((self.n_rows, self.n_obs)) < 0.08
            matrix = np.where(
                spikes,
                matrix + rng.uniform(0.2, 1.0, size=matrix.shape),
                matrix,
            )
            bids = np.linspace(0.02, 0.6, self.n_candidates)
            return (matrix, bids), {}
        floor = rng.uniform(0.02, 0.05)
        prices = floor + rng.exponential(0.01, size=self.n_obs)
        spikes = rng.random(self.n_obs) < 0.08
        prices = np.where(
            spikes, prices + rng.uniform(0.2, 1.0, size=self.n_obs), prices
        )
        dist = EmpiricalPriceDistribution(np.ascontiguousarray(prices))
        candidates = np.linspace(dist.lower, dist.upper, self.n_candidates)
        if self.kernel == "dag_grid":
            jobs = [
                JobSpec(
                    execution_time=self.work * (1.0 + 0.1 * i),
                    recovery_time=self.recovery_time,
                    slot_length=self.slot_length,
                )
                for i in range(self.n_jobs)
            ]
            return (dist, candidates, jobs), {}
        job = JobSpec(
            execution_time=self.work,
            recovery_time=self.recovery_time,
            slot_length=self.slot_length,
        )
        if self.kernel == "portfolio_grid":
            return (dist, candidates, job), {
                "ondemand_price": self.ondemand_price,
                "ondemand_fractions": np.linspace(0.0, 1.0, self.n_fractions),
            }
        return (dist, candidates, job), {}


AnyBenchCase = Union[
    BenchCase,
    ExtensionBenchCase,
    MapReduceBenchCase,
    SchedulerBenchCase,
    ServeBenchCase,
]

CASES: List[AnyBenchCase] = [
    BenchCase(
        name="persistent_large",
        strategy=Strategy.PERSISTENT,
        n_traces=24,
        n_slots=1000,
        n_bids=256,
        work=10.0,
        recovery_time=0.25,
        slot_length=1.0,
        seed=20150817,
    ),
    BenchCase(
        name="onetime_large",
        strategy=Strategy.ONE_TIME,
        n_traces=24,
        n_slots=1000,
        n_bids=256,
        work=4.0,
        recovery_time=0.0,
        slot_length=1.0,
        seed=20150818,
        quick=True,
    ),
    BenchCase(
        name="persistent_ragged",
        strategy=Strategy.PERSISTENT,
        n_traces=32,
        n_slots=800,
        n_bids=64,
        work=6.0,
        recovery_time=0.5,
        slot_length=1.0,
        seed=20150819,
        min_valid_fraction=0.25,
    ),
    BenchCase(
        name="persistent_small",
        strategy=Strategy.PERSISTENT,
        n_traces=16,
        n_slots=500,
        n_bids=96,
        work=5.0,
        recovery_time=0.25,
        slot_length=1.0,
        seed=20150820,
        quick=True,
    ),
    BenchCase(
        name="onetime_small",
        strategy=Strategy.ONE_TIME,
        n_traces=16,
        n_slots=1000,
        n_bids=128,
        work=2.0,
        recovery_time=0.0,
        slot_length=1.0,
        seed=20150821,
    ),
    # The Figure 7 acceptance workload for the batched MapReduce
    # kernels: a 24-plan bid grid × 3 trace pairs × 2 starts.
    MapReduceBenchCase(
        name="mapreduce_fig7_grid",
        n_pairs=3,
        n_starts=2,
        n_slots=600,
        n_master_bids=6,
        n_slave_bids=4,
        num_slaves=4,
        work=1.2,
        recovery_time=0.05,
        slot_length=1.0 / 12.0,
        seed=20150822,
    ),
    MapReduceBenchCase(
        name="mapreduce_multistart",
        n_pairs=1,
        n_starts=6,
        n_slots=400,
        n_master_bids=3,
        n_slave_bids=2,
        num_slaves=3,
        work=0.8,
        recovery_time=0.05,
        slot_length=1.0 / 12.0,
        seed=20150823,
        quick=True,
    ),
    # Serving acceptance workloads: warm-table decision latency (small,
    # CI smoke) and sustained decision throughput (the >=5k/s target).
    ServeBenchCase(
        name="serve_latency",
        n_requests=300,
        n_slots=2880,
        grid_shape=(16, 4),
        ondemand_price=1.5,
        slot_length=1.0 / 12.0,
        seed=20150824,
        quick=True,
    ),
    ServeBenchCase(
        name="serve_throughput",
        n_requests=2000,
        n_slots=2880,
        grid_shape=(32, 8),
        ondemand_price=1.5,
        slot_length=1.0 / 12.0,
        seed=20150825,
    ),
    # Extension-kernel acceptance workloads: the Section 8 risk scan on
    # a dense candidate grid, and the portfolio (fraction × bid) grid —
    # both gated on the >=10x speedup target and the bitwise check.
    ExtensionBenchCase(
        name="ext_risk_grid",
        kernel="risk_scan",
        n_obs=20000,
        n_candidates=4096,
        work=8.0,
        recovery_time=0.25,
        slot_length=1.0 / 12.0,
        seed=20150827,
        quick=True,
    ),
    ExtensionBenchCase(
        name="ext_portfolio",
        kernel="portfolio_grid",
        n_obs=8000,
        n_candidates=2048,
        n_fractions=64,
        work=8.0,
        recovery_time=0.25,
        slot_length=1.0 / 12.0,
        ondemand_price=1.5,
        seed=20150828,
    ),
    # Compiled-tier acceptance workloads: the numba kernels against
    # their event-lane counterparts on the same seeded inputs.  These
    # cases are skipped (reported under the payload's "skipped" list)
    # when numba is missing or NUMBA_DISABLE_JIT is set, so numba-free
    # snapshots stay honest.
    BenchCase(
        name="compiled_persistent_large",
        strategy=Strategy.PERSISTENT,
        n_traces=24,
        n_slots=1000,
        n_bids=256,
        work=10.0,
        recovery_time=0.25,
        slot_length=1.0,
        seed=20150817,
        compiled=True,
    ),
    BenchCase(
        name="compiled_onetime_large",
        strategy=Strategy.ONE_TIME,
        n_traces=24,
        n_slots=1000,
        n_bids=256,
        work=4.0,
        recovery_time=0.0,
        slot_length=1.0,
        seed=20150818,
        compiled=True,
    ),
    MapReduceBenchCase(
        name="compiled_mapreduce_grid",
        n_pairs=3,
        n_starts=2,
        n_slots=600,
        n_master_bids=6,
        n_slave_bids=4,
        num_slaves=4,
        work=1.2,
        recovery_time=0.05,
        slot_length=1.0 / 12.0,
        seed=20150822,
        compiled=True,
    ),
    ExtensionBenchCase(
        name="compiled_ext_persistence",
        kernel="persistence_grid",
        n_obs=2000,
        n_candidates=128,
        n_rows=32,
        work=8.0,
        recovery_time=0.25,
        slot_length=1.0 / 12.0,
        seed=20150829,
        compiled=True,
    ),
    ExtensionBenchCase(
        name="compiled_ext_dag",
        kernel="dag_grid",
        n_obs=8000,
        n_candidates=2048,
        n_jobs=32,
        work=8.0,
        recovery_time=0.25,
        slot_length=1.0 / 12.0,
        seed=20150830,
        compiled=True,
    ),
    # The straggler-re-dispatch acceptance workload: a pinned stalled
    # worker, gated on how much speculation recovers of the stall.
    SchedulerBenchCase(
        name="sched_straggler",
        n_shards=8,
        max_workers=2,
        shard_size=20000,
        stall_seconds=0.75,
        straggler_factor=2.0,
        straggler_min_seconds=0.15,
        seed=20150826,
    ),
]

_BY_NAME: Dict[str, AnyBenchCase] = {case.name: case for case in CASES}


def case_names() -> List[str]:
    return [case.name for case in CASES]


def quick_case_names() -> List[str]:
    return [case.name for case in CASES if case.quick]


def select_cases(
    names: Optional[Sequence[str]] = None,
    *,
    quick: bool = False,
    pattern: Optional[str] = None,
) -> List[AnyBenchCase]:
    """Resolve a case selection.

    Precedence: explicit ``names`` beat ``pattern`` (an ``fnmatch``
    glob, e.g. ``"mapreduce_*"``), which beats the ``quick`` flag.
    Unknown names and patterns matching nothing both raise
    ``ValueError`` listing the available cases.
    """
    if names and pattern:
        raise ValueError("pass explicit case names or a pattern, not both")
    if names:
        missing = [n for n in names if n not in _BY_NAME]
        if missing:
            raise ValueError(
                f"unknown benchmark case(s) {missing}; "
                f"available: {', '.join(case_names())}"
            )
        return [_BY_NAME[n] for n in names]
    if pattern is not None:
        matched = [case for case in CASES if fnmatch(case.name, pattern)]
        if not matched:
            raise ValueError(
                f"pattern {pattern!r} matches no benchmark case; "
                f"available: {', '.join(case_names())}"
            )
        return matched
    if quick:
        return [case for case in CASES if case.quick]
    return list(CASES)
