"""Benchmark regression gating.

Compares a fresh ``repro.bench/1`` report against a committed baseline.
The gated metric is the *speedup* of the event kernels over the
reference kernels — a machine-relative ratio, so a slower CI box doesn't
fail the gate while a real kernel regression does.  A case regresses
when its speedup drops more than ``tolerance`` (default 20%) below the
baseline's, or when its outputs stopped being bitwise identical (always
fatal, no tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["DEFAULT_TOLERANCE", "Regression", "compare_reports"]

DEFAULT_TOLERANCE = 0.2


@dataclass(frozen=True)
class Regression:
    """One case that fails the gate."""

    case: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.case}: {self.reason}"


def _cases_by_name(report: Dict[str, object]) -> Dict[str, dict]:
    schema = report.get("schema")
    if schema != "repro.bench/1":
        raise ValueError(f"unsupported benchmark schema {schema!r}")
    return {row["name"]: row for row in report.get("cases", [])}


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Regression]:
    """Regressions of ``current`` against ``baseline`` (empty = pass).

    Only cases present in both reports are compared, so adding or
    retiring cases never trips the gate by itself.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance!r}")
    current_cases = _cases_by_name(current)
    baseline_cases = _cases_by_name(baseline)
    regressions: List[Regression] = []
    for name, row in current_cases.items():
        if not row.get("bitwise_equal", False):
            regressions.append(
                Regression(name, "event kernel output diverged from reference")
            )
            continue
        base = baseline_cases.get(name)
        if base is None:
            continue
        floor = float(base["speedup"]) * (1.0 - tolerance)
        if float(row["speedup"]) < floor:
            regressions.append(
                Regression(
                    name,
                    f"speedup {row['speedup']:.2f}x fell below "
                    f"{floor:.2f}x (baseline {base['speedup']:.2f}x "
                    f"- {tolerance:.0%} tolerance)",
                )
            )
    return regressions
