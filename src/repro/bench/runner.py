"""Benchmark execution: both kernel families, verified and timed.

Every case runs the dense reference kernel and the contender kernel on
identical inputs, takes the best wall time over ``repeats`` runs
(minimum — the least-noise estimator for CPU-bound work) after one
untimed warmup (so JIT compilation and cache effects never pollute the
timings), and checks the two result sets are bitwise identical before
any number is reported.  A benchmark that reports a speedup for a
kernel producing different answers would be worse than no benchmark at
all.

The contender lane follows ``REPRO_SWEEP_KERNEL`` (or the explicit
``kernel`` argument / ``repro-bid bench --kernel`` flag): ``event``
(default), ``reference``, or ``compiled``.  Cases flagged
``compiled=True`` always pit the compiled kernel against the event
lane and are skipped — reported under the payload's ``"skipped"`` list
— when the compiled tier is unavailable.

The report schema is versioned (``repro.bench/1``) so future trajectory
points remain machine-readable next to this one.
"""

from __future__ import annotations

import os
import platform
import statistics
import time
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..constants import SWEEP_KERNEL, SWEEP_KERNEL_MODES
from ..core.types import Strategy

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..mapreduce.grid import MapReduceGridResult
from ..sweep import compiled as _compiled
from ..sweep.kernels import (
    onetime_sweep_kernel,
    onetime_sweep_kernel_compiled,
    onetime_sweep_kernel_reference,
    persistent_sweep_kernel,
    persistent_sweep_kernel_compiled,
    persistent_sweep_kernel_reference,
)
from .cases import (
    BenchCase,
    ExtensionBenchCase,
    MapReduceBenchCase,
    SchedulerBenchCase,
    ServeBenchCase,
    select_cases,
)

__all__ = ["SCHEMA", "run_benchmarks"]

SCHEMA = "repro.bench/1"

#: Result fields that must match bitwise between kernel families.
_FIELDS = (
    "completed",
    "cost",
    "completion_time",
    "running_time",
    "idle_time",
    "recovery_time_used",
    "interruptions",
)


def _machine_info() -> Dict[str, object]:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


#: Sweep kernels per (strategy, lane) — the same functions the engine's
#: ``_select_kernels`` dispatches.
_SWEEP_LANES: Dict[Tuple[Strategy, str], Callable[..., dict]] = {
    (Strategy.ONE_TIME, "reference"): onetime_sweep_kernel_reference,
    (Strategy.ONE_TIME, "event"): onetime_sweep_kernel,
    (Strategy.ONE_TIME, "compiled"): onetime_sweep_kernel_compiled,
    (Strategy.PERSISTENT, "reference"): persistent_sweep_kernel_reference,
    (Strategy.PERSISTENT, "event"): persistent_sweep_kernel,
    (Strategy.PERSISTENT, "compiled"): persistent_sweep_kernel_compiled,
}


def _kernel_callable(case: BenchCase, lane: str) -> Callable[..., dict]:
    kernel = _SWEEP_LANES[(case.strategy, lane)]
    if case.strategy is Strategy.ONE_TIME:

        def run(
            prices: np.ndarray,
            bids: np.ndarray,
            n_valid: Optional[np.ndarray],
        ) -> dict:
            return kernel(
                prices,
                bids,
                work=case.work,
                slot_length=case.slot_length,
                n_valid=n_valid,
            )

    else:

        def run(
            prices: np.ndarray,
            bids: np.ndarray,
            n_valid: Optional[np.ndarray],
        ) -> dict:
            return kernel(
                prices,
                bids,
                work=case.work,
                recovery_time=case.recovery_time,
                slot_length=case.slot_length,
                n_valid=n_valid,
            )

    return run


def _time_kernel(
    run: Callable[..., dict], inputs: Sequence[object], repeats: int
) -> Tuple[float, List[float], Optional[dict]]:
    """Best-of-``repeats`` wall time, per-repeat times, last result.

    One untimed warmup run precedes the timed loop so one-time costs —
    numba JIT compilation above all, but also allocator and cache
    warm-up — never land in a timed repeat.
    """
    run(*inputs)
    times: List[float] = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run(*inputs)
        times.append(time.perf_counter() - started)
    return min(times), times, result


def _bitwise_equal(a: dict, b: dict) -> bool:
    return all(np.array_equal(a[f], b[f], equal_nan=True) for f in _FIELDS)


#: MapReduce ``run_plan_grid`` kernel key per contender lane.
_MR_LANES = {"reference": "scalar", "event": "event", "compiled": "compiled"}


def _mapreduce_callable(
    case: MapReduceBenchCase, lane: str
) -> "Callable[..., MapReduceGridResult]":
    from ..mapreduce.grid import run_plan_grid

    kernel = _MR_LANES[lane]

    def run(
        plans: Any,
        master_traces: Any,
        slave_traces: Any,
        starts: Any,
    ) -> "MapReduceGridResult":
        return run_plan_grid(
            plans,
            master_traces,
            slave_traces,
            start_slots=starts,
            kernel=kernel,
        )

    return run


def _grids_bitwise_equal(
    a: "MapReduceGridResult", b: "MapReduceGridResult"
) -> bool:
    ad, bd = a.to_dict(), b.to_dict()
    return all(np.array_equal(ad[k], bd[k], equal_nan=True) for k in ad)


def _extension_callable(
    case: ExtensionBenchCase, lane: str
) -> Callable[..., dict]:
    """One lane of an extension-kernel case.

    Resolves the (kernel, oracle) pair from the same dispatch tables
    ``select_ext_kernel`` serves, so the bench times exactly what
    production dispatches.  The ``compiled`` lane uses the
    ``extension_kernel_compiled`` counterpart when one exists and the
    vectorized kernel otherwise, mirroring production dispatch.
    """
    from ..extensions.kernels import (
        extension_kernel_compiled,
        extension_kernel_pair,
    )

    kernel, oracle = extension_kernel_pair(case.kernel)
    if lane == "reference":
        fn = oracle
    elif lane == "compiled":
        try:
            fn = extension_kernel_compiled(case.kernel)
        except KeyError:
            fn = kernel
    else:
        fn = kernel

    def run(args: tuple, kwargs: dict) -> dict:
        return fn(*args, **kwargs)

    return run


def _ext_bitwise_equal(a: dict, b: dict) -> bool:
    return set(a) == set(b) and all(
        np.array_equal(a[k], b[k], equal_nan=True) for k in a
    )


def _sched_shard(payload: Tuple[int, int, int]) -> float:
    """Seeded reduction each scheduler-bench shard computes.

    Pure function of the payload, so where (and how often) a shard runs
    cannot change its bits — the property the bitwise gate checks.
    """
    seed, index, size = payload
    rng = np.random.default_rng([seed, index])
    return float(np.sort(rng.random(size)).sum())


def _scheduler_callable(
    case: SchedulerBenchCase, speculate: bool
) -> Callable[..., object]:
    from ..scheduler import run_shards

    faults = case.faults()

    def run(payloads: Any) -> object:
        return run_shards(
            _sched_shard,
            payloads,
            max_workers=case.max_workers,
            speculate=speculate,
            straggler_factor=case.straggler_factor,
            straggler_min_seconds=case.straggler_min_seconds,
            worker_faults=faults,
        )

    return run


def _serve_reference_callable(
    case: ServeBenchCase,
) -> Callable[..., List[object]]:
    """The cold pre-serving path: rebuild distribution per request."""
    from ..core.distributions import EmpiricalPriceDistribution
    from ..core.onetime import optimal_onetime_bid
    from ..core.persistent import optimal_persistent_bid
    from ..errors import InfeasibleBidError

    def run(history: Any, grid: Any, requests: Any) -> List[object]:
        decisions: List[object] = []
        for request in requests:
            dist = EmpiricalPriceDistribution(history.prices)
            try:
                if request.strategy is Strategy.ONE_TIME:
                    decision = optimal_onetime_bid(
                        dist, request.job, ondemand_price=case.ondemand_price
                    )
                else:
                    decision = optimal_persistent_bid(
                        dist, request.job, ondemand_price=case.ondemand_price
                    )
            except InfeasibleBidError:
                decision = None
            decisions.append(decision)
        return decisions

    return run


def _serve_event_callable(
    case: ServeBenchCase, history: Any, grid: Any
) -> Callable[..., Tuple[List[object], List[float]]]:
    """The warm served path: tables built once, requests then handled.

    Table construction happens here, outside the timed region — that is
    the amortized setup serving exists to pay once.  Each timed run
    starts with a cold *cache* over the warm tables so repeat timings
    stay comparable; the run returns ``(responses, per-request
    latencies in ms)``.
    """
    from ..market.price_sources import TracePriceSource
    from ..serve.cache import DecisionCache
    from ..serve.ingest import MarketState
    from ..serve.service import BidService

    state = MarketState(
        TracePriceSource(history),
        initial_history=history,
        ondemand_price=case.ondemand_price,
        grid=grid,
    )
    service = BidService(
        state,
        cache=DecisionCache(capacity=case.n_requests + 1),
        stale_after=max(1, history.n_slots),
    )

    def run(
        _history: Any, _grid: Any, requests: Any
    ) -> Tuple[List[object], List[float]]:
        service.cache.clear()
        responses: List[object] = []
        latencies_ms: List[float] = []
        for request in requests:
            started = time.perf_counter()
            responses.append(service.handle(request))
            latencies_ms.append((time.perf_counter() - started) * 1e3)
        return responses, latencies_ms

    return run


def _serve_bitwise_equal(
    case: ServeBenchCase,
    grid: Any,
    requests: Any,
    reference: List[object],
    responses: List[object],
) -> bool:
    """On-grid served decisions must match the cold path bitwise.

    Off-grid requests snap to the nearest bucket (the documented
    interpolation contract) and infeasible buckets degrade, so only
    feasible exact-grid-point requests participate.
    """
    ts_axis = set(grid.execution_times)
    tr_axis = set(grid.recovery_times)
    checked = False
    for request, cold, served in zip(requests, reference, responses):
        if (
            request.job.execution_time not in ts_axis
            or request.job.recovery_time not in tr_axis
        ):
            continue
        if cold is None or served.decision.degraded:
            continue
        checked = True
        if served.decision != cold:
            return False
    return checked


def _throughput(
    case: BenchCase, lane_slots: int, wall: float, times: Sequence[float]
) -> Dict[str, object]:
    return {
        "wall_seconds": wall,
        "median_seconds": statistics.median(times),
        "repeat_seconds": list(times),
        "slots_per_sec": lane_slots / wall if wall > 0 else float("inf"),
        "lanes_per_sec": (
            case.n_traces * case.n_bids / wall if wall > 0 else float("inf")
        ),
    }


def _resolve_lane(kernel: Optional[str]) -> str:
    """The contender lane: the explicit ``kernel`` argument (validated
    against the registry's modes) or ``REPRO_SWEEP_KERNEL``.  An
    unavailable compiled tier degrades to ``event`` with the same
    one-time warning the engines emit."""
    if kernel is not None:
        if kernel not in SWEEP_KERNEL_MODES:
            allowed = ", ".join(repr(m) for m in SWEEP_KERNEL_MODES)
            raise ValueError(
                f"bench kernel must be one of {allowed}, got {kernel!r}"
            )
        lane = kernel
    else:
        lane = SWEEP_KERNEL.get()
    if lane == "compiled" and not _compiled.COMPILED_AVAILABLE:
        _compiled.warn_compiled_fallback()
        lane = "event"
    return lane


def run_benchmarks(
    *,
    cases: Optional[Sequence[str]] = None,
    quick: bool = False,
    pattern: Optional[str] = None,
    repeats: Optional[int] = None,
    kernel: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the benchmark suite and return the ``repro.bench/1`` report.

    ``repeats`` defaults to 5 in quick mode (the cases are small and
    min-of-many suppresses CI timer noise) and 3 otherwise.  ``pattern``
    selects cases by glob (see :func:`~repro.bench.cases.select_cases`).
    ``kernel`` picks the contender lane (``event``, ``reference`` or
    ``compiled``); ``None`` follows ``REPRO_SWEEP_KERNEL``.  Cases
    flagged ``compiled=True`` always time compiled-vs-event and are
    skipped (listed under ``"skipped"``) when the compiled tier is
    unavailable.  ``progress`` (if given) receives one line per
    finished case.
    """
    selected = select_cases(cases, quick=quick, pattern=pattern)
    if repeats is None:
        repeats = 5 if quick else 3
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats!r}")
    lane = _resolve_lane(kernel)

    rows: List[Dict[str, object]] = []
    skipped: List[str] = []
    for case in selected:
        case_compiled = bool(getattr(case, "compiled", False))
        if case_compiled and not _compiled.COMPILED_AVAILABLE:
            skipped.append(case.name)
            if progress is not None:
                progress(
                    f"{case.name}: skipped "
                    f"({_compiled.COMPILED_UNAVAILABLE_REASON})"
                )
            continue
        if case_compiled:
            ref_lane, con_lane = "event", "compiled"
        else:
            ref_lane, con_lane = "reference", lane
        inputs = case.build()
        lane_slots = case.lane_slots
        serve_extras: Optional[Dict[str, float]] = None
        if isinstance(case, MapReduceBenchCase):
            ref_wall, ref_times, ref_result = _time_kernel(
                _mapreduce_callable(case, ref_lane), inputs, repeats
            )
            event_wall, event_times, event_result = _time_kernel(
                _mapreduce_callable(case, con_lane), inputs, repeats
            )
            equal = _grids_bitwise_equal(ref_result, event_result)
            events = event_result.slots_simulated
        elif isinstance(case, ExtensionBenchCase):
            ref_wall, ref_times, ref_result = _time_kernel(
                _extension_callable(case, ref_lane), inputs, repeats
            )
            event_wall, event_times, event_result = _time_kernel(
                _extension_callable(case, con_lane), inputs, repeats
            )
            equal = _ext_bitwise_equal(ref_result, event_result)
            events = lane_slots
        elif isinstance(case, SchedulerBenchCase):
            # Reference = wait the pinned straggler out; event = the
            # same fault schedule with speculative re-dispatch on.
            con_lane = "event"
            ref_wall, ref_times, ref_result = _time_kernel(
                _scheduler_callable(case, speculate=False), inputs, repeats
            )
            event_wall, event_times, event_result = _time_kernel(
                _scheduler_callable(case, speculate=True), inputs, repeats
            )
            equal = ref_result.results == event_result.results
            events = event_result.stats.dispatched
        elif isinstance(case, ServeBenchCase):
            con_lane = "event"
            history, grid, requests = inputs
            ref_wall, ref_times, ref_result = _time_kernel(
                _serve_reference_callable(case), inputs, repeats
            )
            event_wall, event_times, event_result = _time_kernel(
                _serve_event_callable(case, history, grid), inputs, repeats
            )
            responses, latencies_ms = event_result
            equal = _serve_bitwise_equal(
                case, grid, requests, ref_result, responses
            )
            events = len(responses)
            ordered = sorted(latencies_ms)
            serve_extras = {
                "p50_ms": ordered[len(ordered) // 2],
                "p99_ms": ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)],
                "qps": events / event_wall if event_wall > 0 else float("inf"),
            }
        else:
            ref_wall, ref_times, ref_result = _time_kernel(
                _kernel_callable(case, ref_lane), inputs, repeats
            )
            event_wall, event_times, event_result = _time_kernel(
                _kernel_callable(case, con_lane), inputs, repeats
            )
            equal = _bitwise_equal(ref_result, event_result)
            events = int(event_result["slots_simulated"])
        row = {
            "name": case.name,
            "strategy": case.label,
            "kernel": con_lane,
            "n_traces": case.n_traces,
            "n_slots": case.n_slots,
            "n_bids": case.n_bids,
            "lane_slots": lane_slots,
            "repeats": repeats,
            "reference": _throughput(case, lane_slots, ref_wall, ref_times),
            "event": _throughput(case, lane_slots, event_wall, event_times),
            "speedup": ref_wall / event_wall if event_wall > 0 else float("inf"),
            "events_processed": events,
            "bitwise_equal": bool(equal),
        }
        if serve_extras is not None:
            row["serve"] = serve_extras
        rows.append(row)
        if progress is not None:
            progress(
                f"{case.name}: ref {ref_wall * 1e3:.1f}ms, "
                f"{row['kernel']} {event_wall * 1e3:.1f}ms, "
                f"speedup {row['speedup']:.2f}x, "
                f"bitwise={'OK' if equal else 'MISMATCH'}"
            )
    return {
        "schema": SCHEMA,
        # Report metadata, not simulation state — results never depend
        # on it, so the determinism rule does not apply here.
        "created_unix": time.time(),  # repro: noqa(RB101)
        "machine": _machine_info(),
        "cases": rows,
        "skipped": skipped,
    }
