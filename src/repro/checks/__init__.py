"""repro.checks — repo-aware static analysis for the reproduction.

The test suite can only *sample* the invariants this codebase rests on;
this package machine-checks them on every commit instead:

* **determinism** — simulations replay exactly from explicit seeds
  (RB101);
* **kernel⇄oracle parity** — every batched kernel registered in the
  ``REPRO_SWEEP_KERNEL`` dispatch tables keeps its reference oracle, a
  randomized exact-equivalence test and a bench case (RB201);
* **numeric & lifecycle hygiene** — the ``REPRO_*`` env registry
  (RB301), the float-equality policy (RB401), shared-memory lifetimes
  (RB501) and the public API surface (RB601).

Run it as ``repro-bid check`` or ``python -m repro.checks``; see
``docs/development.md`` for the rule catalog and suppression syntax.
"""

from .engine import (
    SCHEMA,
    CheckResult,
    FileContext,
    Finding,
    Project,
    Reporter,
    Rule,
    run_checks,
)
from .rules import RULES, default_rules

__all__ = [
    "SCHEMA",
    "CheckResult",
    "FileContext",
    "Finding",
    "Project",
    "Reporter",
    "Rule",
    "RULES",
    "default_rules",
    "run_checks",
]
