"""Incremental result cache for the check engine.

Two layers, both stored under ``.repro-check-cache/`` at the repo root
(override the directory, or disable entirely, via the
``REPRO_CHECK_CACHE`` environment variable / the CLI's ``--no-cache``):

**Per-file entries** (``files.json``)
    Walk findings of one file, keyed by the sha256 of its *content*
    plus the rule-pack version and the id set of the active rules — so
    edits, rule upgrades, and rule-subset runs each invalidate exactly
    what they must, and renames still hit.  Only findings anchored to
    the walked file are cached; cross-file findings are re-derived every
    run by the project rules.

**Run manifest** (``manifest.json``)
    The full result of the last run plus a record of *everything* the
    project rules read outside the scan set (extra files and raw texts
    by content digest, glob patterns by their result lists — see
    :class:`~repro.checks.engine.ProjectAccesses`).  A rerun whose scan
    set hashes and recorded accesses all match returns the cached
    :class:`~repro.checks.engine.CheckResult` after only re-hashing the
    tree, which is what makes unchanged-tree re-checks near-instant.

The cache is advisory: corrupt or missing files degrade to a cold run,
never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .engine import CheckResult, Finding, ProjectAccesses

__all__ = ["CACHE_DIR_NAME", "CheckCache"]

#: Directory created under the repo root to hold cache state.
CACHE_DIR_NAME = ".repro-check-cache"

#: On-disk format tag; bump on incompatible layout changes.
_FORMAT = "repro.checks.cache/1"

#: Entry-count bound of ``files.json`` (oldest entries dropped first).
_MAX_ENTRIES = 8192

#: One serialized finding, path implied by the cache key's file.
Row = Tuple[int, int, str, str]


def _text_digest(path: Path) -> Optional[str]:
    """Digest of a file's decoded text (``None`` when unreadable) —
    matches how :class:`~repro.checks.engine.Project` records accesses."""
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _read_json(path: Path) -> Optional[Dict[str, object]]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


class CheckCache:
    """Persistent findings cache of one repo's check runs."""

    def __init__(
        self,
        root: Union[str, Path],
        directory: Union[str, Path, None] = None,
        version: Optional[str] = None,
    ) -> None:
        if version is None:
            from .rules import RULE_PACK_VERSION

            version = RULE_PACK_VERSION
        self.root = Path(root).resolve()
        self.directory = (
            Path(directory) if directory is not None else self.root / CACHE_DIR_NAME
        )
        self.version = version
        self.stats: Dict[str, int] = {
            "manifest_hits": 0,
            "file_hits": 0,
            "file_misses": 0,
        }
        self._entries: Optional[Dict[str, List[Row]]] = None
        self._dirty = False

    # -- per-file entries ------------------------------------------------

    def _key(self, digest: str, rule_key: str) -> str:
        material = f"{_FORMAT}|{self.version}|{rule_key}"
        return f"{digest}:{hashlib.sha256(material.encode()).hexdigest()[:16]}"

    def _load_entries(self) -> Dict[str, List[Row]]:
        if self._entries is None:
            data = _read_json(self.directory / "files.json")
            entries: Dict[str, List[Row]] = {}
            if data is not None and data.get("format") == _FORMAT:
                raw = data.get("entries")
                if isinstance(raw, dict):
                    for key, rows in raw.items():
                        if not isinstance(rows, list):
                            continue
                        try:
                            entries[str(key)] = [
                                (int(r[0]), int(r[1]), str(r[2]), str(r[3]))
                                for r in rows
                            ]
                        except (IndexError, TypeError, ValueError):
                            continue  # corrupt entry: treat as a miss
            self._entries = entries
        return self._entries

    def lookup(self, digest: str, rule_key: str) -> Optional[List[Row]]:
        """Cached findings rows for a file content, or ``None``."""
        rows = self._load_entries().get(self._key(digest, rule_key))
        if rows is None:
            self.stats["file_misses"] += 1
            return None
        self.stats["file_hits"] += 1
        return rows

    def store(self, digest: str, rule_key: str, rows: Sequence[Row]) -> None:
        entries = self._load_entries()
        entries[self._key(digest, rule_key)] = list(rows)
        self._dirty = True

    # -- run manifest ----------------------------------------------------

    def try_manifest(
        self, rule_key: str, files: Dict[str, str]
    ) -> Optional[CheckResult]:
        """The previous run's result, iff the tree state it recorded —
        scan set hashes, extra-file digests, glob results — still holds."""
        data = _read_json(self.directory / "manifest.json")
        if (
            data is None
            or data.get("format") != _FORMAT
            or data.get("version") != self.version
            or data.get("rule_key") != rule_key
            or data.get("files") != files
        ):
            return None
        extras = data.get("extras")
        texts = data.get("texts")
        globs = data.get("globs")
        raw_findings = data.get("findings")
        if (
            not isinstance(extras, dict)
            or not isinstance(texts, dict)
            or not isinstance(globs, dict)
            or not isinstance(raw_findings, list)
        ):
            return None
        for rel, digest in {**extras, **texts}.items():
            if rel not in files and _text_digest(self.root / rel) != digest:
                return None
        for pattern, rels in globs.items():
            if self._glob(pattern) != list(rels):
                return None
        try:
            findings = tuple(
                Finding(str(p), int(l), int(c), str(r), str(m))
                for p, l, c, r, m in raw_findings
            )
        except (TypeError, ValueError):
            return None
        self.stats["manifest_hits"] += 1
        return CheckResult(
            findings=findings,
            files_scanned=int(data.get("files_scanned", len(files))),  # type: ignore[call-overload]
            root=self.root,
        )

    def _glob(self, pattern: str) -> List[str]:
        # Mirrors Project.glob so recorded results compare equal.
        out: List[str] = []
        for path in self.root.glob(pattern):
            if not path.is_file():
                continue
            resolved = path.resolve()
            try:
                out.append(resolved.relative_to(self.root).as_posix())
            except ValueError:
                out.append(resolved.as_posix())
        return sorted(out)

    def finish_run(
        self,
        rule_key: str,
        files: Dict[str, str],
        accesses: Optional[ProjectAccesses],
        result: CheckResult,
        complete: bool = True,
    ) -> None:
        """Persist per-file entries and (for complete runs) the manifest."""
        self._ensure_directory()
        if self._dirty and self._entries is not None:
            entries = self._entries
            if len(entries) > _MAX_ENTRIES:
                entries = dict(list(entries.items())[-_MAX_ENTRIES:])
            self._write_json(
                self.directory / "files.json",
                {"format": _FORMAT, "entries": entries},
            )
            self._dirty = False
        if not complete:
            return
        recorded = accesses if accesses is not None else ProjectAccesses()
        self._write_json(
            self.directory / "manifest.json",
            {
                "format": _FORMAT,
                "version": self.version,
                "rule_key": rule_key,
                "files": files,
                "extras": recorded.extras,
                "texts": recorded.texts,
                "globs": {k: list(v) for k, v in recorded.globs.items()},
                "files_scanned": result.files_scanned,
                "findings": [
                    [f.path, f.line, f.col, f.rule_id, f.message]
                    for f in result.findings
                ],
            },
        )

    # -- disk helpers ----------------------------------------------------

    def _ensure_directory(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        ignore = self.directory / ".gitignore"
        if not ignore.exists():
            try:
                ignore.write_text("# created by repro-bid check\n*\n")
            except OSError:
                pass

    def _write_json(self, path: Path, document: Dict[str, object]) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        try:
            tmp.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            pass
