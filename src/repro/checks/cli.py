"""Command-line front end for :mod:`repro.checks`.

Reachable two ways — ``repro-bid check ...`` (a subcommand of the main
CLI) and ``python -m repro.checks ...`` (standalone, e.g. from a
pre-commit hook before the package entry point is installed).  Both
share the argument definitions below.

Exit status: 0 when no findings, 1 when findings (or bad usage), so CI
steps and ``pre-commit`` consume it directly.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from ..constants import CHECK_CACHE
from .cache import CheckCache
from .engine import CheckResult, find_root, run_checks
from .rules import RULES

__all__ = ["add_arguments", "run_check", "main"]

#: Directories scanned when no explicit paths are given.
DEFAULT_TARGETS = ("src", "tests")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``check`` options to a parser (shared by both entry
    points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to check (default: src/ and tests/ "
        "under the repo root)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        dest="output_format",
        help="findings as human-readable rows, a repro.checks/1 JSON "
        "document, or a SARIF 2.1.0 report (for CI problem annotations)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="check only python files changed vs. the given git ref "
        "(default HEAD) plus untracked files; project-wide rules still "
        "see the full tree",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="repo root for cross-file rules (default: nearest ancestor "
        "with a pyproject.toml)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        dest="no_cache",
        help="skip the incremental result cache (.repro-check-cache/) "
        "for this run; REPRO_CHECK_CACHE=0 disables it globally",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        dest="list_rules",
        help="list the rule catalog and exit",
    )


def _changed_files(root: Path, base: str = "HEAD") -> Optional[List[Path]]:
    """Python files changed vs. ``base`` plus untracked ones, or
    ``None`` when git (or the ref) is unavailable — callers fall back
    to a full scan."""
    commands = (
        ["git", "-C", str(root), "diff", "--name-only", base, "--"],
        ["git", "-C", str(root), "ls-files", "--others", "--exclude-standard"],
    )
    names: List[str] = []
    for command in commands:
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        names.extend(line.strip() for line in proc.stdout.splitlines())
    out: List[Path] = []
    for name in names:
        if not name.endswith(".py"):
            continue
        path = root / name
        if path.is_file():
            out.append(path)
    return sorted(set(out))


def _print_rules(stream: TextIO) -> None:
    for rule_class in RULES:
        stream.write(f"{rule_class.rule_id}  {rule_class.name}\n")
        stream.write(f"       {rule_class.description}\n")


def run_check(args: argparse.Namespace) -> int:
    """Execute a parsed ``check`` invocation."""
    if args.list_rules:
        _print_rules(sys.stdout)
        return 0

    if args.root is not None:
        root = Path(args.root).resolve()
    elif args.paths:
        root = find_root(Path(args.paths[0]))
    else:
        root = find_root(Path.cwd())

    if args.changed is not None:
        changed = _changed_files(root, base=args.changed)
        if changed is None:
            print(
                f"warning: git diff vs. {args.changed!r} unavailable; "
                f"falling back to a full scan",
                file=sys.stderr,
            )
            paths = [root / target for target in DEFAULT_TARGETS]
        elif not changed:
            print("no changed python files")
            return 0
        else:
            paths = changed
    elif args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(
                f"error: no such path(s): "
                f"{', '.join(str(p) for p in missing)}",
                file=sys.stderr,
            )
            return 1
    else:
        paths = [
            root / target
            for target in DEFAULT_TARGETS
            if (root / target).exists()
        ]

    cache: Optional[CheckCache] = None
    if not getattr(args, "no_cache", False) and CHECK_CACHE.get():
        cache = CheckCache(root)

    result: CheckResult = run_checks(paths, root=root, cache=cache)
    if args.output_format == "json":
        print(result.render_json())
    elif args.output_format == "sarif":
        print(result.render_sarif())
    else:
        print(result.render_human())
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.checks``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="Repo-aware static analysis for the spot-bidding "
        "reproduction (determinism, kernel-oracle parity, numeric "
        "hygiene).",
    )
    add_arguments(parser)
    return run_check(parser.parse_args(argv))
