"""Intra-procedural dataflow for the check rules.

The engine's single AST walk answers "does this node exist?"; the
RB7xx concurrency/lifecycle rules also need "does every *path* through
this function do X after Y?".  This module provides the minimum
machinery for that:

* :func:`iter_scopes` — every analysis scope of a module (the module
  body itself plus each function), with nested function/class bodies
  excluded, since they are separate scopes;
* :func:`build_cfg` — a basic-block control-flow graph over one scope's
  statements, covering ``if``/``while``/``for``/``try``/``with``/
  ``match``, ``break``/``continue``/``return``/``raise``, with
  ``finally`` bodies duplicated onto early-exit edges so "every path
  passes through the finally" holds in the graph;
* :func:`every_path_hits` — the path query the lifecycle rules run:
  starting *after* a given statement, does every path to the scope exit
  pass through a statement satisfying a predicate?
* :func:`tainted_names` — a small forward fixpoint: names (transitively)
  assigned from a source expression, used by the monotonic-clock rule.

Deliberate approximations, chosen to keep the graph small and the
rules quiet rather than complete:

* exception edges are only drawn from a ``try`` block's *entry* to its
  handlers — implicit "any bytecode may raise" edges would make every
  explicit-close discipline fail and push everything to ``try/finally``
  noqa soup;
* a ``while``/``for`` header always has an exit edge, so ``while True``
  loops admit a spurious exiting path (conservative in the permissive
  direction);
* ``with`` statements are linear: the context manager's ``__exit__`` is
  the *structural* guard the lifecycle rules check for separately.

All graphs are built per call and should be memoized by callers on the
:class:`~repro.checks.engine.FileContext` (see :func:`cfg_for_scope`).
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

__all__ = [
    "Block",
    "CFG",
    "Scope",
    "build_cfg",
    "cfg_for_scope",
    "every_path_hits",
    "iter_scopes",
    "scope_statements",
    "scope_walk",
    "tainted_names",
]

_FUNCTION_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_BOUNDARY = _FUNCTION_TYPES + (ast.ClassDef, ast.Lambda)
_TRY_TYPES: Tuple[type, ...] = (ast.Try,)
if hasattr(ast, "TryStar"):  # pragma: no cover - python >= 3.11
    _TRY_TYPES = _TRY_TYPES + (ast.TryStar,)

ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


class Scope:
    """One analysis scope: a module body or a single function body."""

    def __init__(
        self,
        node: ScopeNode,
        qualname: str,
        class_chain: Tuple[str, ...],
    ) -> None:
        self.node = node
        self.qualname = qualname
        #: Names of the classes lexically enclosing this scope
        #: (innermost last); empty for module scope and plain functions.
        self.class_chain = class_chain

    @property
    def body(self) -> List[ast.stmt]:
        return self.node.body

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


def iter_scopes(tree: ast.Module) -> List[Scope]:
    """The module scope plus one :class:`Scope` per function def, at any
    nesting depth.  Each scope's CFG/queries see only its *own*
    statements — nested defs are opaque single statements."""
    scopes: List[Scope] = [Scope(tree, "<module>", ())]

    def descend(
        body: Sequence[ast.stmt], prefix: str, classes: Tuple[str, ...]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, _FUNCTION_TYPES):
                qualname = f"{prefix}{stmt.name}"
                scopes.append(Scope(stmt, qualname, classes))
                descend(stmt.body, f"{qualname}.<locals>.", classes)
            elif isinstance(stmt, ast.ClassDef):
                descend(
                    stmt.body,
                    f"{prefix}{stmt.name}.",
                    classes + (stmt.name,),
                )
            else:
                for child in ast.walk(stmt):
                    if isinstance(child, _FUNCTION_TYPES):
                        # Defs nested in if/try/with bodies.
                        qualname = f"{prefix}{child.name}"
                        scopes.append(Scope(child, qualname, classes))
                        descend(
                            child.body, f"{qualname}.<locals>.", classes
                        )
    descend(tree.body, "", ())
    return scopes


def scope_walk(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """``ast.walk`` over a scope's statements, *without* descending into
    nested function/class/lambda bodies (they are separate scopes)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_BOUNDARY):
            # A nested def/class/lambda is one opaque statement of this
            # scope: yielded, never descended into.
            continue
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def scope_statements(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement of a scope (including nested block bodies but not
    nested def/class bodies)."""
    for node in scope_walk(body):
        if isinstance(node, ast.stmt):
            yield node


class Block:
    """A basic block: straight-line statements plus successor edges."""

    __slots__ = ("id", "stmts", "succ")

    def __init__(self, block_id: int) -> None:
        self.id = block_id
        self.stmts: List[ast.stmt] = []
        self.succ: List["Block"] = []


class CFG:
    """Control-flow graph of one scope.

    ``stmt_index`` maps ``id(stmt)`` to its ``(block, index)`` position
    so path queries can start mid-block.  Statements in unreachable
    blocks (after a ``return``) are still indexed; their paths simply
    never reach the entry.
    """

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.entry: Optional[Block] = None
        self.exit: Optional[Block] = None
        self.stmt_index: Dict[int, Tuple[Block, int]] = {}


class _CFGBuilder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.exit = self._new_block()

    def _new_block(self) -> Block:
        block = Block(len(self.cfg.blocks))
        self.cfg.blocks.append(block)
        return block

    @staticmethod
    def _connect(src: Optional[Block], dst: Block) -> None:
        if src is not None and dst not in src.succ:
            src.succ.append(dst)

    def _append(self, block: Block, stmt: ast.stmt) -> None:
        self.cfg.stmt_index[id(stmt)] = (block, len(block.stmts))
        block.stmts.append(stmt)

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        entry = self._new_block()
        self.cfg.entry = entry
        end = self._statements(body, entry, loops=[], finallies=[])
        assert self.cfg.exit is not None
        self._connect(end, self.cfg.exit)
        return self.cfg

    # ``loops`` holds (continue_target, break_target, finally_depth)
    # per enclosing loop; ``finallies`` the stack of enclosing
    # ``finally`` bodies (innermost last), duplicated onto early exits.

    def _unwind(
        self,
        current: Block,
        finallies: Sequence[Sequence[ast.stmt]],
        depth: int,
        target: Block,
        loops: List[Tuple[Block, Block, int]],
    ) -> None:
        """Route ``current`` through finally bodies above ``depth``
        (innermost first), then to ``target``."""
        block: Optional[Block] = current
        for final_body in reversed(list(finallies)[depth:]):
            start = self._new_block()
            self._connect(block, start)
            block = self._statements(
                final_body, start, loops=loops, finallies=[]
            )
        if block is not None:
            self._connect(block, target)

    def _statements(
        self,
        body: Sequence[ast.stmt],
        current: Optional[Block],
        loops: List[Tuple[Block, Block, int]],
        finallies: List[Sequence[ast.stmt]],
    ) -> Optional[Block]:
        """Build blocks for a statement sequence starting in ``current``;
        returns the open fall-through block, or ``None`` if every path
        terminated (return/raise/break/continue)."""
        for stmt in body:
            if current is None:
                # Unreachable code after a terminator: keep indexing it
                # in a fresh, unconnected block.
                current = self._new_block()
            if isinstance(stmt, (ast.Return, ast.Raise)):
                self._append(current, stmt)
                assert self.cfg.exit is not None
                self._unwind(current, finallies, 0, self.cfg.exit, loops)
                current = None
            elif isinstance(stmt, ast.Break):
                self._append(current, stmt)
                if loops:
                    header, after, depth = loops[-1]
                    self._unwind(current, finallies, depth, after, loops)
                current = None
            elif isinstance(stmt, ast.Continue):
                self._append(current, stmt)
                if loops:
                    header, after, depth = loops[-1]
                    self._unwind(current, finallies, depth, header, loops)
                current = None
            elif isinstance(stmt, ast.If):
                self._append(current, stmt)
                join = self._new_block()
                for branch in (stmt.body, stmt.orelse):
                    start = self._new_block()
                    self._connect(current, start)
                    end = self._statements(branch, start, loops, finallies)
                    self._connect(end, join)
                current = join
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                self._append(current, stmt)
                header = self._new_block()
                after = self._new_block()
                self._connect(current, header)
                body_start = self._new_block()
                self._connect(header, body_start)
                inner = loops + [(header, after, len(finallies))]
                end = self._statements(
                    stmt.body, body_start, inner, finallies
                )
                self._connect(end, header)
                if stmt.orelse:
                    else_start = self._new_block()
                    self._connect(header, else_start)
                    else_end = self._statements(
                        stmt.orelse, else_start, loops, finallies
                    )
                    self._connect(else_end, after)
                else:
                    self._connect(header, after)
                current = after
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._append(current, stmt)
                current = self._statements(
                    stmt.body, current, loops, finallies
                )
            elif isinstance(stmt, _TRY_TYPES):
                self._append(current, stmt)
                body_start = self._new_block()
                self._connect(current, body_start)
                if stmt.finalbody:
                    finallies.append(stmt.finalbody)
                body_end = self._statements(
                    stmt.body, body_start, loops, finallies
                )
                if stmt.orelse:
                    body_end = self._statements(
                        stmt.orelse, body_end, loops, finallies
                    )
                handler_ends: List[Optional[Block]] = []
                for handler in stmt.handlers:
                    h_start = self._new_block()
                    # Approximation: exceptions are modeled at try
                    # entry only (see module docstring).
                    self._connect(body_start, h_start)
                    handler_ends.append(
                        self._statements(
                            handler.body, h_start, loops, finallies
                        )
                    )
                if stmt.finalbody:
                    finallies.pop()
                    f_start = self._new_block()
                    self._connect(body_end, f_start)
                    for h_end in handler_ends:
                        self._connect(h_end, f_start)
                    f_end = self._statements(
                        stmt.finalbody, f_start, loops, finallies
                    )
                    after = self._new_block()
                    self._connect(f_end, after)
                    current = after
                else:
                    join = self._new_block()
                    self._connect(body_end, join)
                    for h_end in handler_ends:
                        self._connect(h_end, join)
                    current = join
            elif hasattr(ast, "Match") and isinstance(
                stmt, ast.Match
            ):  # pragma: no cover - python >= 3.10 feature use
                self._append(current, stmt)
                join = self._new_block()
                # A match may fall through every case.
                self._connect(current, join)
                for case in stmt.cases:
                    start = self._new_block()
                    self._connect(current, start)
                    end = self._statements(
                        case.body, start, loops, finallies
                    )
                    self._connect(end, join)
                current = join
            else:
                self._append(current, stmt)
        return current


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """CFG over one scope's statement list."""
    return _CFGBuilder().build(body)


def cfg_for_scope(ctx: "object", scope: Scope) -> CFG:
    """Build (or fetch the memoized) CFG for a scope.

    ``ctx`` is a :class:`~repro.checks.engine.FileContext`; graphs are
    cached on its ``cache`` dict so multiple rules analyzing the same
    file share the work.
    """
    cache: Dict[str, object] = getattr(ctx, "cache", {})
    store = cache.setdefault("dataflow.cfg", {})
    assert isinstance(store, dict)
    key = id(scope.node)
    if key not in store:
        store[key] = build_cfg(scope.body)
    graph = store[key]
    assert isinstance(graph, CFG)
    return graph


def every_path_hits(
    cfg: CFG,
    start: ast.stmt,
    hit: Callable[[ast.stmt], bool],
) -> bool:
    """Does every CFG path from just *after* ``start`` to the scope exit
    pass through a statement where ``hit`` returns true?

    Returns ``True`` when ``start`` is not indexed (defensive: callers
    pass statements from the same scope the CFG was built from).
    Cycles that never reach the exit do not count as escaping paths.
    """
    position = cfg.stmt_index.get(id(start))
    if position is None or cfg.exit is None:
        return True
    start_block, start_idx = position

    # Reverse fixpoint: a block "escapes" when a path entering it at
    # statement 0 can reach the exit without crossing a hit statement —
    # i.e. none of its own statements hit, and it is the exit or has an
    # escaping successor.
    clean = {
        block.id: not any(hit(stmt) for stmt in block.stmts)
        for block in cfg.blocks
    }
    escaping: Set[int] = {cfg.exit.id}
    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            if block.id in escaping or not clean[block.id]:
                continue
            if any(nxt.id in escaping for nxt in block.succ):
                escaping.add(block.id)
                changed = True

    # The start block itself: a hit in the remainder of the block stops
    # every path through it before any successor is taken.
    for stmt in start_block.stmts[start_idx + 1 :]:
        if hit(stmt):
            return True
    return not any(nxt.id in escaping for nxt in start_block.succ)


def tainted_names(
    body: Sequence[ast.stmt],
    is_source: Callable[[ast.AST], bool],
) -> Set[str]:
    """Names assigned (transitively, through plain-name assignment
    chains) from an expression containing a source node."""

    def expr_tainted(expr: ast.AST, tainted: Set[str]) -> bool:
        for node in ast.walk(expr):
            if is_source(node):
                return True
            if isinstance(node, ast.Name) and node.id in tainted:
                return True
        return False

    def target_names(target: ast.expr) -> Iterator[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from target_names(element)
        elif isinstance(target, ast.Starred):
            yield from target_names(target.value)

    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for stmt in scope_statements(body):
            value: Optional[ast.expr]
            targets: List[ast.expr]
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            elif isinstance(stmt, ast.AugAssign):
                value, targets = stmt.value, [stmt.target]
            else:
                continue
            if not expr_tainted(value, tainted):
                continue
            for name in [
                n for t in targets for n in target_names(t)
            ]:
                if name not in tainted:
                    tainted.add(name)
                    changed = True
    return tainted
