"""The rule engine behind ``repro-bid check``.

One :class:`CheckEngine` run parses every target file into an AST
exactly once, walks each tree exactly once — dispatching nodes to the
rules that registered interest in their types — and then gives
cross-file ("project") rules a chance to reason over the whole corpus
(plus any extra files they pull in lazily, e.g. ``tests/`` modules for
the kernel-parity rule).

Suppressions
------------
Findings are suppressed with structured comments:

``# repro: noqa(RB101)``
    on the offending line silences the listed rule(s) for that line;
    ``# repro: noqa(RB101, RB401)`` lists several, bare
    ``# repro: noqa`` silences every rule on the line.

``# repro: noqa-file(RB101)``
    anywhere in a file silences the listed rule(s) for the whole file
    (ids are mandatory here — whole-file blanket suppression is not
    offered on purpose).

Output
------
Human output is one ``path:line:col: RBxxx message`` row per finding;
``--format json`` emits the versioned :data:`SCHEMA` document consumed
by CI tooling.  The process exit code is the number of findings capped
at 1, so shells and CI read it as pass/fail.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

__all__ = [
    "SCHEMA",
    "PARSE_ERROR_ID",
    "Finding",
    "FileContext",
    "Project",
    "Reporter",
    "Rule",
    "CheckResult",
    "run_checks",
]

#: JSON report schema identifier.
SCHEMA = "repro.checks/1"

#: Pseudo-rule id attached to files that fail to parse.
PARSE_ERROR_ID = "RB000"

_RULE_ID_RE = re.compile(r"^RB\d{3}$")
_NOQA_LINE_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\(\s*(?P<ids>RB\d{3}(?:\s*,\s*RB\d{3})*)\s*\))?"
)
_NOQA_FILE_RE = re.compile(
    r"#\s*repro:\s*noqa-file\(\s*(?P<ids>RB\d{3}(?:\s*,\s*RB\d{3})*)\s*\)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file position.

    ``path`` is root-relative with POSIX separators so reports are
    stable across machines; ordering is the natural report order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


def _split_ids(raw: str) -> FrozenSet[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


class FileContext:
    """One parsed target file: source, AST and suppression tables."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        #: line -> suppressed rule ids; ``None`` value means *all* rules.
        self.line_suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
        self.file_suppressions: FrozenSet[str] = frozenset()
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        file_ids: Set[str] = set()
        for lineno, text in enumerate(self.source.splitlines(), start=1):
            if "repro:" not in text:
                continue
            file_match = _NOQA_FILE_RE.search(text)
            if file_match:
                file_ids.update(_split_ids(file_match.group("ids")))
                continue
            line_match = _NOQA_LINE_RE.search(text)
            if line_match:
                raw = line_match.group("ids")
                self.line_suppressions[lineno] = (
                    _split_ids(raw) if raw is not None else None
                )
        self.file_suppressions = frozenset(file_ids)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        if rule_id in self.file_suppressions:
            return True
        if line in self.line_suppressions:
            ids = self.line_suppressions[line]
            return ids is None or rule_id in ids
        return False


class Project:
    """Repo-level context shared by all rules of one run.

    ``root`` anchors the repo layout (the directory holding
    ``pyproject.toml``); ``scanned`` maps root-relative paths to the
    :class:`FileContext` of every file in the scan set.  Project rules
    may pull additional files in lazily via :meth:`file` / :meth:`text`
    / :meth:`glob` — those are parsed once and cached but are *not*
    themselves scanned for per-file findings.
    """

    def __init__(self, root: Path) -> None:
        self.root = root.resolve()
        self.scanned: Dict[str, FileContext] = {}
        self._extra: Dict[str, Optional[FileContext]] = {}

    def rel(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def file(self, rel: str) -> Optional[FileContext]:
        """The (possibly lazily parsed) context for a root-relative
        path, or ``None`` if the file is missing or unparseable."""
        if rel in self.scanned:
            return self.scanned[rel]
        if rel not in self._extra:
            path = self.root / rel
            try:
                source = path.read_text(encoding="utf-8")
                self._extra[rel] = FileContext(path, rel, source)
            except (OSError, SyntaxError, ValueError):
                self._extra[rel] = None
        return self._extra[rel]

    def text(self, rel: str) -> Optional[str]:
        """Raw text of a root-relative file (e.g. a markdown doc)."""
        try:
            return (self.root / rel).read_text(encoding="utf-8")
        except OSError:
            return None

    def glob(self, pattern: str) -> List[str]:
        """Root-relative paths matching a glob under the root."""
        return sorted(
            self.rel(path)
            for path in self.root.glob(pattern)
            if path.is_file()
        )


class Reporter:
    """Per-rule reporting facade: applies suppressions, collects findings."""

    def __init__(self, project: Project, rule_id: str, sink: List[Finding]) -> None:
        self._project = project
        self.rule_id = rule_id
        self._sink = sink

    def at_node(self, ctx: FileContext, node: ast.AST, message: str) -> None:
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        if not ctx.is_suppressed(line, self.rule_id):
            self._sink.append(Finding(ctx.rel, line, col, self.rule_id, message))

    def at(self, rel: str, line: int, message: str, col: int = 0) -> None:
        ctx = self._project.file(rel)
        if ctx is not None and ctx.is_suppressed(line, self.rule_id):
            return
        self._sink.append(Finding(rel, line, col, self.rule_id, message))


class Rule:
    """Base class for check rules.

    Subclasses set the class attributes and override any of the hooks:

    ``node_types``
        AST node classes the rule wants :meth:`visit` callbacks for
        during the engine's single walk of each file.
    ``applies_to``
        Per-file gate (path-scoped rules return ``False`` to skip).
    ``finish_project``
        Cross-file analysis, called once after every file was walked.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def start_file(self, ctx: FileContext) -> None:
        """Reset any per-file state before a walk begins."""

    def visit(
        self,
        node: ast.AST,
        ancestors: Sequence[ast.AST],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        """Handle one node of a registered type (``ancestors`` is the
        chain from the module node down to the node's parent)."""

    def finish_file(self, ctx: FileContext, report: Reporter) -> None:
        """Per-file wrap-up after the walk."""

    def finish_project(self, project: Project, report: Reporter) -> None:
        """Cross-file analysis over the whole scanned corpus."""


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one engine run."""

    findings: Tuple[Finding, ...]
    files_scanned: int
    root: Path

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule_id] = out.get(finding.rule_id, 0) + 1
        return out

    def render_human(self) -> str:
        lines = [finding.render() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} in {self.files_scanned} file(s)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        document = {
            "schema": SCHEMA,
            "files_scanned": self.files_scanned,
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        return json.dumps(document, indent=2, sort_keys=True)


def find_root(start: Path) -> Path:
    """The nearest ancestor of ``start`` holding ``pyproject.toml``
    (falling back to ``start`` itself, or its directory for files)."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            if "__pycache__" in resolved.parts or resolved.suffix != ".py":
                continue
            if any(part.endswith(".egg-info") for part in resolved.parts):
                continue
            seen.add(resolved)
            out.append(resolved)
    return out


class CheckEngine:
    """Walk each file once, fanning nodes out to interested rules."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        ids = [rule.rule_id for rule in rules]
        for rule_id in ids:
            if not _RULE_ID_RE.match(rule_id):
                raise ValueError(f"invalid rule id {rule_id!r}")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate rule ids in {ids}")
        self.rules = list(rules)

    def run(self, paths: Sequence[Path], root: Optional[Path] = None) -> CheckResult:
        files = iter_python_files([Path(p) for p in paths])
        if root is None:
            anchor = files[0] if files else Path.cwd()
            root = find_root(anchor)
        project = Project(root)
        findings: List[Finding] = []
        reporters = {
            rule.rule_id: Reporter(project, rule.rule_id, findings)
            for rule in self.rules
        }

        for path in files:
            rel = project.rel(path)
            try:
                source = path.read_text(encoding="utf-8")
                ctx = FileContext(path, rel, source)
            except (SyntaxError, ValueError, tokenize.TokenError) as exc:
                lineno = int(getattr(exc, "lineno", 1) or 1)
                findings.append(
                    Finding(rel, lineno, 0, PARSE_ERROR_ID, f"file does not parse: {exc}")
                )
                continue
            except OSError as exc:
                findings.append(
                    Finding(rel, 1, 0, PARSE_ERROR_ID, f"file not readable: {exc}")
                )
                continue
            project.scanned[rel] = ctx
            self._walk_file(ctx, reporters)

        for rule in self.rules:
            rule.finish_project(project, reporters[rule.rule_id])

        findings.sort()
        return CheckResult(
            findings=tuple(findings),
            files_scanned=len(project.scanned),
            root=project.root,
        )

    def _walk_file(self, ctx: FileContext, reporters: Dict[str, Reporter]) -> None:
        active = [rule for rule in self.rules if rule.applies_to(ctx)]
        if not active:
            return
        dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in active:
            rule.start_file(ctx)
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        if dispatch:
            ancestors: List[ast.AST] = []

            def descend(node: ast.AST) -> None:
                for rule in dispatch.get(type(node), ()):
                    rule.visit(node, ancestors, ctx, reporters[rule.rule_id])
                ancestors.append(node)
                for child in ast.iter_child_nodes(node):
                    descend(child)
                ancestors.pop()

            descend(ctx.tree)
        for rule in active:
            rule.finish_file(ctx, reporters[rule.rule_id])


def run_checks(
    paths: Sequence[Path],
    *,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> CheckResult:
    """Run the (given or default) rule set over ``paths``."""
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    return CheckEngine(rules).run(paths, root=root)
