"""The rule engine behind ``repro-bid check``.

One :class:`CheckEngine` run parses every target file into an AST
exactly once, walks each tree exactly once — dispatching nodes to the
rules that registered interest in their types — and then gives
cross-file ("project") rules a chance to reason over the whole corpus
(plus any extra files they pull in lazily, e.g. ``tests/`` modules for
the kernel-parity rule).

Suppressions
------------
Findings are suppressed with structured comments:

``# repro: noqa(RB101)``
    on the offending line silences the listed rule(s) for that line;
    ``# repro: noqa(RB101, RB401)`` lists several, bare
    ``# repro: noqa`` silences every rule on the line.

``# repro: noqa-file(RB101)``
    anywhere in a file silences the listed rule(s) for the whole file
    (ids are mandatory here — whole-file blanket suppression is not
    offered on purpose).

Output
------
Human output is one ``path:line:col: RBxxx message`` row per finding;
``--format json`` emits the versioned :data:`SCHEMA` document consumed
by CI tooling.  The process exit code is the number of findings capped
at 1, so shells and CI read it as pass/fail.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cache import CheckCache

__all__ = [
    "SCHEMA",
    "PARSE_ERROR_ID",
    "Finding",
    "FileContext",
    "Project",
    "Reporter",
    "Rule",
    "CheckResult",
    "run_checks",
]

#: JSON report schema identifier.
SCHEMA = "repro.checks/1"

#: Pseudo-rule id attached to files that fail to parse.
PARSE_ERROR_ID = "RB000"

_RULE_ID_RE = re.compile(r"^RB\d{3}$")
_NOQA_LINE_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\(\s*(?P<ids>RB\d{3}(?:\s*,\s*RB\d{3})*)\s*\))?"
)
_NOQA_FILE_RE = re.compile(
    r"#\s*repro:\s*noqa-file\(\s*(?P<ids>RB\d{3}(?:\s*,\s*RB\d{3})*)\s*\)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file position.

    ``path`` is root-relative with POSIX separators so reports are
    stable across machines; ordering is the natural report order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


def _split_ids(raw: str) -> FrozenSet[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


class FileContext:
    """One parsed target file: source, AST and suppression tables."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        #: Scratch space for analyses shared between rules on the same
        #: file (e.g. the dataflow layer memoizes CFGs here).
        self.cache: Dict[str, Any] = {}
        #: line -> suppressed rule ids; ``None`` value means *all* rules.
        self.line_suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
        self.file_suppressions: FrozenSet[str] = frozenset()
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        file_ids: Set[str] = set()
        for lineno, text in enumerate(self.source.splitlines(), start=1):
            if "repro:" not in text:
                continue
            file_match = _NOQA_FILE_RE.search(text)
            if file_match:
                file_ids.update(_split_ids(file_match.group("ids")))
                continue
            line_match = _NOQA_LINE_RE.search(text)
            if line_match:
                raw = line_match.group("ids")
                self.line_suppressions[lineno] = (
                    _split_ids(raw) if raw is not None else None
                )
        self.file_suppressions = frozenset(file_ids)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        if rule_id in self.file_suppressions:
            return True
        if line in self.line_suppressions:
            ids = self.line_suppressions[line]
            return ids is None or rule_id in ids
        return False


class _ScanSet:
    """Dict-like view of the scan set that parses cache-hit files lazily.

    Files the incremental cache skipped are registered with
    :meth:`register_lazy`; they count toward ``len()`` immediately but
    are only read and parsed if a project rule actually asks for their
    :class:`FileContext` (e.g. RB201 pulling the sweep engine's AST).
    """

    def __init__(self) -> None:
        self._eager: Dict[str, FileContext] = {}
        self._pending: Dict[str, Path] = {}
        self._failed: Set[str] = set()

    def __setitem__(self, rel: str, ctx: FileContext) -> None:
        self._eager[rel] = ctx
        self._pending.pop(rel, None)

    def register_lazy(self, rel: str, path: Path) -> None:
        if rel not in self._eager:
            self._pending[rel] = path

    def _materialize(self, rel: str) -> None:
        path = self._pending.pop(rel)
        try:
            source = path.read_text(encoding="utf-8")
            self._eager[rel] = FileContext(path, rel, source)
        except (OSError, SyntaxError, ValueError, tokenize.TokenError):
            # The file changed (or vanished) between hashing and this
            # read; count it but serve no context, like a parse error.
            self._failed.add(rel)

    def get(self, rel: str, default: Optional[FileContext] = None) -> Optional[FileContext]:
        if rel in self._pending:
            self._materialize(rel)
        return self._eager.get(rel, default)

    def __getitem__(self, rel: str) -> FileContext:
        ctx = self.get(rel)
        if ctx is None:
            raise KeyError(rel)
        return ctx

    def __contains__(self, rel: object) -> bool:
        return rel in self._eager or rel in self._pending

    def __iter__(self) -> Iterator[str]:
        yield from self._eager
        yield from self._pending

    def keys(self) -> List[str]:
        return list(self)

    def __len__(self) -> int:
        return len(self._eager) + len(self._pending) + len(self._failed)


@dataclass
class ProjectAccesses:
    """Everything a run's project rules read outside the scan set.

    Recorded so the incremental cache can prove an unchanged-tree rerun
    would see identical inputs: extra parsed files and raw texts by
    content digest, glob patterns by their result lists.
    """

    extras: Dict[str, Optional[str]] = field(default_factory=dict)
    texts: Dict[str, Optional[str]] = field(default_factory=dict)
    globs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


class Project:
    """Repo-level context shared by all rules of one run.

    ``root`` anchors the repo layout (the directory holding
    ``pyproject.toml``); ``scanned`` maps root-relative paths to the
    :class:`FileContext` of every file in the scan set.  Project rules
    may pull additional files in lazily via :meth:`file` / :meth:`text`
    / :meth:`glob` — those are parsed once and cached but are *not*
    themselves scanned for per-file findings.
    """

    def __init__(self, root: Path) -> None:
        self.root = root.resolve()
        self.scanned: _ScanSet = _ScanSet()
        self._extra: Dict[str, Optional[FileContext]] = {}
        #: Set by the engine when an incremental cache is active.
        self.accesses: Optional[ProjectAccesses] = None

    def rel(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def file(self, rel: str) -> Optional[FileContext]:
        """The (possibly lazily parsed) context for a root-relative
        path, or ``None`` if the file is missing or unparseable."""
        if rel in self.scanned:
            return self.scanned.get(rel)
        if rel not in self._extra:
            path = self.root / rel
            source: Optional[str] = None
            try:
                source = path.read_text(encoding="utf-8")
                self._extra[rel] = FileContext(path, rel, source)
            except (OSError, SyntaxError, ValueError):
                self._extra[rel] = None
            if self.accesses is not None:
                self.accesses.extras[rel] = (
                    hashlib.sha256(source.encode("utf-8")).hexdigest()
                    if source is not None
                    else None
                )
        return self._extra[rel]

    def text(self, rel: str) -> Optional[str]:
        """Raw text of a root-relative file (e.g. a markdown doc)."""
        try:
            text: Optional[str] = (self.root / rel).read_text(encoding="utf-8")
        except OSError:
            text = None
        if self.accesses is not None:
            self.accesses.texts[rel] = (
                hashlib.sha256(text.encode("utf-8")).hexdigest()
                if text is not None
                else None
            )
        return text

    def glob(self, pattern: str) -> List[str]:
        """Root-relative paths matching a glob under the root."""
        result = sorted(
            self.rel(path)
            for path in self.root.glob(pattern)
            if path.is_file()
        )
        if self.accesses is not None:
            self.accesses.globs[pattern] = tuple(result)
        return result


class Reporter:
    """Per-rule reporting facade: applies suppressions, collects findings."""

    def __init__(self, project: Project, rule_id: str, sink: List[Finding]) -> None:
        self._project = project
        self.rule_id = rule_id
        self._default_sink = sink
        self._sink = sink

    def push_sink(self, sink: List[Finding]) -> None:
        """Route ``at_node`` findings into ``sink`` (the engine uses a
        per-file sink during walks so findings are cacheable)."""
        self._sink = sink

    def pop_sink(self) -> None:
        self._sink = self._default_sink

    def at_node(self, ctx: FileContext, node: ast.AST, message: str) -> None:
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        if not ctx.is_suppressed(line, self.rule_id):
            self._sink.append(Finding(ctx.rel, line, col, self.rule_id, message))

    def at(self, rel: str, line: int, message: str, col: int = 0) -> None:
        ctx = self._project.file(rel)
        if ctx is not None and ctx.is_suppressed(line, self.rule_id):
            return
        # Cross-file findings bypass any per-file sink: they must not be
        # cached under the file currently being walked.
        self._default_sink.append(Finding(rel, line, col, self.rule_id, message))


class Rule:
    """Base class for check rules.

    Subclasses set the class attributes and override any of the hooks:

    ``node_types``
        AST node classes the rule wants :meth:`visit` callbacks for
        during the engine's single walk of each file.
    ``applies_to``
        Per-file gate (path-scoped rules return ``False`` to skip).
    ``finish_project``
        Cross-file analysis, called once after every file was walked.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def start_file(self, ctx: FileContext) -> None:
        """Reset any per-file state before a walk begins."""

    def visit(
        self,
        node: ast.AST,
        ancestors: Sequence[ast.AST],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        """Handle one node of a registered type (``ancestors`` is the
        chain from the module node down to the node's parent)."""

    def finish_file(self, ctx: FileContext, report: Reporter) -> None:
        """Per-file wrap-up after the walk."""

    def finish_project(self, project: Project, report: Reporter) -> None:
        """Cross-file analysis over the whole scanned corpus."""


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one engine run."""

    findings: Tuple[Finding, ...]
    files_scanned: int
    root: Path

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule_id] = out.get(finding.rule_id, 0) + 1
        return out

    def render_human(self) -> str:
        lines = [finding.render() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} in {self.files_scanned} file(s)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        document = {
            "schema": SCHEMA,
            "files_scanned": self.files_scanned,
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        return json.dumps(document, indent=2, sort_keys=True)

    def render_sarif(self) -> str:
        """The findings as a SARIF 2.1.0 document (what CI uploads so
        GitHub renders findings as inline problem annotations)."""
        from .rules import RULE_PACK_VERSION, RULES

        descriptors = [
            {
                "id": rule_class.rule_id,
                "name": rule_class.name,
                "shortDescription": {"text": rule_class.description},
            }
            for rule_class in RULES
        ]
        descriptors.append(
            {
                "id": PARSE_ERROR_ID,
                "name": "parse-error",
                "shortDescription": {"text": "file does not parse"},
            }
        )
        results = [
            {
                "ruleId": finding.rule_id,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
            for finding in self.findings
        ]
        document = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro.checks",
                            "version": RULE_PACK_VERSION,
                            "rules": descriptors,
                        }
                    },
                    "originalUriBaseIds": {
                        "SRCROOT": {"uri": self.root.as_uri() + "/"}
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(document, indent=2, sort_keys=True)


def find_root(start: Path) -> Path:
    """The nearest ancestor of ``start`` holding ``pyproject.toml``
    (falling back to ``start`` itself, or its directory for files)."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            if "__pycache__" in resolved.parts or resolved.suffix != ".py":
                continue
            if any(part.endswith(".egg-info") for part in resolved.parts):
                continue
            seen.add(resolved)
            out.append(resolved)
    return out


class CheckEngine:
    """Walk each file once, fanning nodes out to interested rules."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        ids = [rule.rule_id for rule in rules]
        for rule_id in ids:
            if not _RULE_ID_RE.match(rule_id):
                raise ValueError(f"invalid rule id {rule_id!r}")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate rule ids in {ids}")
        self.rules = list(rules)

    def run(
        self,
        paths: Sequence[Path],
        root: Optional[Path] = None,
        cache: Optional["CheckCache"] = None,
    ) -> CheckResult:
        files = iter_python_files([Path(p) for p in paths])
        if root is None:
            anchor = files[0] if files else Path.cwd()
            root = find_root(anchor)
        project = Project(root)
        rule_key = ",".join(sorted(rule.rule_id for rule in self.rules))

        findings: List[Finding] = []
        hashed: List[Tuple[Path, str, bytes, str]] = []
        for path in files:
            rel = project.rel(path)
            try:
                raw = path.read_bytes()
            except OSError as exc:
                findings.append(
                    Finding(rel, 1, 0, PARSE_ERROR_ID, f"file not readable: {exc}")
                )
                continue
            hashed.append((path, rel, raw, hashlib.sha256(raw).hexdigest()))
        complete = not findings

        if cache is not None and complete:
            cached_result = cache.try_manifest(
                rule_key, {rel: digest for _, rel, _, digest in hashed}
            )
            if cached_result is not None:
                return cached_result
        if cache is not None:
            project.accesses = ProjectAccesses()

        reporters = {
            rule.rule_id: Reporter(project, rule.rule_id, findings)
            for rule in self.rules
        }

        for path, rel, raw, digest in hashed:
            rows = cache.lookup(digest, rule_key) if cache is not None else None
            if rows is not None:
                findings.extend(
                    Finding(rel, line, col, rule_id, message)
                    for line, col, rule_id, message in rows
                )
                if not any(row[2] == PARSE_ERROR_ID for row in rows):
                    # Stays visible to project rules, parsed on demand.
                    project.scanned.register_lazy(rel, path)
                continue
            try:
                ctx = FileContext(path, rel, raw.decode("utf-8"))
            except (SyntaxError, ValueError, tokenize.TokenError) as exc:
                lineno = int(getattr(exc, "lineno", 1) or 1)
                row = Finding(
                    rel, lineno, 0, PARSE_ERROR_ID, f"file does not parse: {exc}"
                )
                findings.append(row)
                if cache is not None:
                    cache.store(
                        digest,
                        rule_key,
                        [(row.line, row.col, row.rule_id, row.message)],
                    )
                continue
            project.scanned[rel] = ctx
            file_sink: List[Finding] = []
            for reporter in reporters.values():
                reporter.push_sink(file_sink)
            try:
                self._walk_file(ctx, reporters)
            finally:
                for reporter in reporters.values():
                    reporter.pop_sink()
            findings.extend(file_sink)
            if cache is not None:
                cache.store(
                    digest,
                    rule_key,
                    [
                        (f.line, f.col, f.rule_id, f.message)
                        for f in file_sink
                        if f.path == rel
                    ],
                )

        for rule in self.rules:
            rule.finish_project(project, reporters[rule.rule_id])

        findings.sort()
        result = CheckResult(
            findings=tuple(findings),
            files_scanned=len(project.scanned),
            root=project.root,
        )
        if cache is not None:
            cache.finish_run(
                rule_key,
                {rel: digest for _, rel, _, digest in hashed},
                project.accesses,
                result,
                complete=complete,
            )
        return result

    def _walk_file(self, ctx: FileContext, reporters: Dict[str, Reporter]) -> None:
        active = [rule for rule in self.rules if rule.applies_to(ctx)]
        if not active:
            return
        dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in active:
            rule.start_file(ctx)
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        if dispatch:
            ancestors: List[ast.AST] = []

            def descend(node: ast.AST) -> None:
                for rule in dispatch.get(type(node), ()):
                    rule.visit(node, ancestors, ctx, reporters[rule.rule_id])
                ancestors.append(node)
                for child in ast.iter_child_nodes(node):
                    descend(child)
                ancestors.pop()

            descend(ctx.tree)
        for rule in active:
            rule.finish_file(ctx, reporters[rule.rule_id])


def run_checks(
    paths: Sequence[Path],
    *,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
    cache: Optional["CheckCache"] = None,
) -> CheckResult:
    """Run the (given or default) rule set over ``paths``.

    ``cache`` (a :class:`repro.checks.cache.CheckCache`) enables the
    incremental result cache; ``None`` — the default — runs cold.
    """
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    return CheckEngine(rules).run(paths, root=root, cache=cache)
