"""The shipped rule catalog.

Rules are visitor plugins over the single AST walk done by
:mod:`repro.checks.engine`; each has a stable ``RBxxx`` id (never
reused, so suppression comments stay meaningful across versions):

========  ====================  ==========================================
id        name                  guards
========  ====================  ==========================================
RB101     determinism           no global RNG state / wall-clock reads
RB201     kernel-parity         dispatch-table kernels keep oracle+test+bench
RB301     env-var-registry      REPRO_* reads go through repro.constants
RB401     float-equality        exact parity tests; no nonzero float ==
RB501     shm-lifecycle         shared memory scoped by with / try-finally
RB601     api-surface           __all__ is real; no strategy string shim
RB701     fork-safety           no threads/locks/loops in forking modules
RB702     async-blocking        no blocking calls in async def bodies
RB703     journal-durability    explicit fsync choice; write paths fsync
RB704     resource-lifecycle    pipes/sockets/handles closed on all paths
RB705     monotonic-clock       deadlines use time.monotonic, not time.time
========  ====================  ==========================================

(``RB000`` is reserved for files that fail to parse.)
"""

from __future__ import annotations

from typing import List, Type

from ..engine import Rule
from .api_surface import ApiSurfaceRule
from .concurrency import AsyncBlockingRule, ForkSafetyRule, MonotonicClockRule
from .determinism import DeterminismRule
from .env_registry import EnvRegistryRule
from .float_equality import FloatEqualityRule
from .kernel_parity import KernelParityRule
from .lifecycle import JournalDurabilityRule, ResourceLifecycleRule
from .shm_lifecycle import ShmLifecycleRule

__all__ = ["RULES", "RULE_PACK_VERSION", "default_rules"]

#: Version tag of the rule pack, mixed into the incremental cache key —
#: bump whenever any rule's semantics change, so stale cached findings
#: cannot survive a rule upgrade.
RULE_PACK_VERSION = "2026.08.0"

#: Shipped rule classes, in id order.
RULES: List[Type[Rule]] = [
    DeterminismRule,
    KernelParityRule,
    EnvRegistryRule,
    FloatEqualityRule,
    ShmLifecycleRule,
    ApiSurfaceRule,
    ForkSafetyRule,
    AsyncBlockingRule,
    JournalDurabilityRule,
    ResourceLifecycleRule,
    MonotonicClockRule,
]


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule."""
    return [rule_class() for rule_class in RULES]
