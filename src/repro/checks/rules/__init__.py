"""The shipped rule catalog.

Rules are visitor plugins over the single AST walk done by
:mod:`repro.checks.engine`; each has a stable ``RBxxx`` id (never
reused, so suppression comments stay meaningful across versions):

========  ====================  ==========================================
id        name                  guards
========  ====================  ==========================================
RB101     determinism           no global RNG state / wall-clock reads
RB201     kernel-parity         dispatch-table kernels keep oracle+test+bench
RB301     env-var-registry      REPRO_* reads go through repro.constants
RB401     float-equality        exact parity tests; no nonzero float ==
RB501     shm-lifecycle         shared memory scoped by with / try-finally
RB601     api-surface           __all__ is real; no strategy string shim
========  ====================  ==========================================

(``RB000`` is reserved for files that fail to parse.)
"""

from __future__ import annotations

from typing import List, Type

from ..engine import Rule
from .api_surface import ApiSurfaceRule
from .determinism import DeterminismRule
from .env_registry import EnvRegistryRule
from .float_equality import FloatEqualityRule
from .kernel_parity import KernelParityRule
from .shm_lifecycle import ShmLifecycleRule

__all__ = ["RULES", "default_rules"]

#: Shipped rule classes, in id order.
RULES: List[Type[Rule]] = [
    DeterminismRule,
    KernelParityRule,
    EnvRegistryRule,
    FloatEqualityRule,
    ShmLifecycleRule,
    ApiSurfaceRule,
]


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule."""
    return [rule_class() for rule_class in RULES]
