"""Small AST helpers shared by the check rules."""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Optional, Sequence, Set

__all__ = [
    "dotted_name",
    "is_test_path",
    "referenced_names",
    "module_functions",
    "module_bindings",
    "string_constants",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``.

    Call expressions inside the chain (``a().b``) break resolution on
    purpose — a rule matching ``np.random.uniform`` should not match
    ``make_np().random.uniform``.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_test_path(rel: str) -> bool:
    """True for files under a ``tests`` directory or named ``test_*.py``
    / ``conftest.py`` — rules scoped to library code skip these."""
    path = PurePosixPath(rel)
    if any(part == "tests" for part in path.parts):
        return True
    return path.name.startswith("test_") or path.name == "conftest.py"


def referenced_names(tree: ast.AST) -> Set[str]:
    """Every identifier a module mentions: bare names, attribute tails
    and import targets.  Cheap containment oracle for cross-file rules
    ("does any test file reference ``persistent_sweep_kernel``?")."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[-1])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


def module_functions(tree: ast.AST) -> Set[str]:
    """Names of all function defs in a module (any nesting level)."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _add_targets(target: ast.AST, names: Set[str]) -> None:
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _add_targets(element, names)
    elif isinstance(target, ast.Starred):
        _add_targets(target.value, names)


def _scan_bindings(body: Sequence[ast.stmt], names: Set[str]) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                _add_targets(target, names)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            _add_targets(stmt.target, names)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                names.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.If, ast.For, ast.While)):
            _scan_bindings(stmt.body, names)
            _scan_bindings(stmt.orelse, names)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            _scan_bindings(stmt.body, names)
        elif isinstance(stmt, ast.Try):
            _scan_bindings(stmt.body, names)
            _scan_bindings(stmt.orelse, names)
            for handler in stmt.handlers:
                _scan_bindings(handler.body, names)
            _scan_bindings(stmt.finalbody, names)


def module_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module level: defs, classes, assignment targets
    and imports, recursing into ``if``/``try``/``with``/loop bodies.
    ``from x import *`` contributes the sentinel ``"*"`` (bindings are
    then not statically knowable)."""
    names: Set[str] = set()
    _scan_bindings(tree.body, names)
    return names


def string_constants(tree: ast.AST) -> Set[str]:
    """Every string literal in a subtree — used to match dispatch-table
    *keys* (e.g. ``kernel="event"``) rather than function names."""
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def walk_contains(root: ast.AST, target: ast.AST) -> bool:
    """Identity-based: is ``target`` within the subtree of ``root``?"""
    return any(node is target for node in ast.walk(root))
