"""RB601 — the public surface is real and the string shim is dead.

Two API-surface invariants:

* every name a module exports in ``__all__`` must actually be bound at
  module level (defined, assigned or imported) — a stale ``__all__``
  entry turns ``from repro.x import *`` and the API-surface tests into
  liars;
* the deprecated strategy string shim
  (:func:`repro.core.types.normalize_strategy` on raw strings, kept so
  downstream callers migrate gracefully) must not be used *inside* the
  package: library code passing ``strategy="persistent"`` would emit
  the package's own DeprecationWarning — which CI escalates to an
  error — and dodges the typed :class:`~repro.core.types.Strategy`
  enum.  ``Strategy("persistent")`` (the enum constructor) is fine.
"""

from __future__ import annotations

import ast
from typing import Sequence, Set

from ..engine import FileContext, Reporter, Rule
from ._common import (
    dotted_name,
    is_test_path,
    module_bindings,
    string_constants,
)


class ApiSurfaceRule(Rule):
    rule_id = "RB601"
    name = "api-surface"
    description = (
        "__all__ entries must be bound at module level, and library "
        "code must not use the deprecated strategy string shim."
    )
    node_types = (ast.Call,)

    def visit(
        self,
        node: ast.AST,
        ancestors: Sequence[ast.AST],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        assert isinstance(node, ast.Call)
        if is_test_path(ctx.rel):
            return
        for kw in node.keywords:
            if (
                kw.arg == "strategy"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                report.at_node(
                    ctx,
                    node,
                    f"string strategy={kw.value.value!r} uses the "
                    f"deprecated shim inside the package; pass the "
                    f"Strategy enum",
                )
        name = dotted_name(node.func)
        if (
            name is not None
            and name.split(".")[-1] == "normalize_strategy"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            report.at_node(
                ctx,
                node,
                f"normalize_strategy({node.args[0].value!r}) on a string "
                f"literal inside the package; use the Strategy enum "
                f"directly",
            )

    def finish_file(self, ctx: FileContext, report: Reporter) -> None:
        exported = None
        anchor = None
        for stmt in ctx.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in stmt.targets
                )
                and isinstance(stmt.value, (ast.List, ast.Tuple))
            ):
                exported = [
                    element.value
                    for element in stmt.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
                anchor = stmt
        if exported is None or anchor is None:
            return
        bound: Set[str] = module_bindings(ctx.tree)
        if "*" in bound:  # star-import module: bindings are not static
            return
        # A module-level __getattr__ (PEP 562) serves names dynamically —
        # typically deprecation shims.  Any __all__ entry it mentions as
        # a string literal counts as bound.
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__getattr__":
                bound |= string_constants(stmt)
        for name in exported:
            if name not in bound:
                report.at_node(
                    ctx,
                    anchor,
                    f"__all__ exports {name!r} but the module never binds "
                    f"it",
                )
