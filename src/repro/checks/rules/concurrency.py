"""RB701/RB702/RB705 — concurrency rules for the scheduler and daemon.

The work-stealing scheduler (:mod:`repro.scheduler`) is fork-first and
the decision daemon (:mod:`repro.serve`) is a single asyncio loop; both
designs rest on invariants that are invisible to per-line linting:

* **RB701 fork-safety** — a module that forks workers (calls
  ``get_context("fork")`` / ``set_start_method("fork")``) must not also
  create threads, locks, or event loops: anything of the kind alive at
  fork time is duplicated into the children in an undefined state
  (a held lock stays held forever in the child).  Thread use belongs in
  the post-fork child modules.
* **RB702 async-blocking** — no blocking calls (``time.sleep``,
  ``subprocess.*``, blocking file/socket IO) inside ``async def``
  bodies; a single one stalls every connection the event loop serves.
  Use ``await asyncio.sleep`` / ``asyncio.to_thread``.
* **RB705 monotonic-clock** — deadline/heartbeat/timeout arithmetic
  must use ``time.monotonic()``: wall clocks (``time.time``) step under
  NTP and DST, so a straggler deadline computed from them can fire
  years early or never.  Complements RB101, which bans wall clocks from
  library code wholesale but exempts tests — RB705 follows the *value*
  through assignments (a small taint analysis over the dataflow layer)
  and applies everywhere, tests included.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..dataflow import iter_scopes, scope_statements, scope_walk, tainted_names
from ..engine import FileContext, Reporter, Rule
from ._common import dotted_name, is_test_path

#: Calls that put the current process into fork-spawning business.
_FORK_CONTEXT_CALLS = {
    "get_context",
    "multiprocessing.get_context",
    "set_start_method",
    "multiprocessing.set_start_method",
}

#: ``threading`` factories whose product must not exist at fork time.
_THREADING_FACTORIES = {
    "Thread",
    "Timer",
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Barrier",
}

#: Event-loop constructors (same hazard: a loop's self-pipe and internal
#: locks do not survive a fork).
_LOOP_CALLS = {
    "asyncio.new_event_loop",
    "asyncio.get_event_loop",
    "asyncio.run",
}

#: Calls that block the thread and therefore the event loop.
_BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.wait",
    "os.waitpid",
    "socket.create_connection",
    "urllib.request.urlopen",
}

#: Wall-clock reads whose values must not feed deadline arithmetic.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.datetime.now",
    "datetime.utcnow",
    "datetime.datetime.utcnow",
}

#: Identifiers that mark an expression as deadline/liveness arithmetic.
_DEADLINE_RE = re.compile(
    r"deadline|heartbeat|expir|timeout|last_seen|lease", re.IGNORECASE
)


def _mentions_fork(node: ast.Call) -> bool:
    for arg in list(node.args) + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Constant) and sub.value == "fork":
                return True
    return False


class ForkSafetyRule(Rule):
    rule_id = "RB701"
    name = "fork-safety"
    description = (
        "Modules that fork worker processes (get_context('fork')) must "
        "not create threads, locks, or asyncio event loops — fork only "
        "duplicates the calling thread, leaving any other thread's locks "
        "held forever in the children."
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return not is_test_path(ctx.rel)

    def start_file(self, ctx: FileContext) -> None:
        self._fork_sites: List[ast.Call] = []
        self._hazards: List[Tuple[ast.Call, str]] = []

    def visit(
        self,
        node: ast.AST,
        ancestors: Sequence[ast.AST],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name is None:
            return
        if name in _FORK_CONTEXT_CALLS or name.endswith(".get_context"):
            if _mentions_fork(node):
                self._fork_sites.append(node)
            return
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "threading" and parts[1] in _THREADING_FACTORIES:
            self._hazards.append((node, name))
        elif parts[-1] == "ThreadPoolExecutor":
            self._hazards.append((node, name))
        elif name in _LOOP_CALLS:
            self._hazards.append((node, name))

    def finish_file(self, ctx: FileContext, report: Reporter) -> None:
        if not self._fork_sites or not self._hazards:
            return
        fork_line = min(site.lineno for site in self._fork_sites)
        for node, name in self._hazards:
            report.at_node(
                ctx,
                node,
                f"{name}(...) in a module that forks workers "
                f"(get_context('fork') at line {fork_line}); threads, "
                f"locks and event loops do not survive a fork — create "
                f"them in the post-fork child instead, or use a spawn "
                f"context",
            )


def _enclosing_function(
    ancestors: Sequence[ast.AST],
) -> Optional[ast.AST]:
    for ancestor in reversed(ancestors):
        if isinstance(
            ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return ancestor
    return None


class AsyncBlockingRule(Rule):
    rule_id = "RB702"
    name = "async-blocking"
    description = (
        "No time.sleep / subprocess / blocking file or socket IO inside "
        "'async def' bodies — one blocking call stalls every connection "
        "on the event loop; use await asyncio.sleep / asyncio.to_thread."
    )
    node_types = (ast.Call,)

    def visit(
        self,
        node: ast.AST,
        ancestors: Sequence[ast.AST],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        assert isinstance(node, ast.Call)
        scope = _enclosing_function(ancestors)
        if not isinstance(scope, ast.AsyncFunctionDef):
            return
        name = dotted_name(node.func)
        if name is None:
            return
        blocking = (
            name in _BLOCKING_CALLS
            or name.startswith("subprocess.")
            or name in ("open", "io.open", "input")
        )
        if blocking:
            report.at_node(
                ctx,
                node,
                f"blocking call {name}(...) inside 'async def "
                f"{scope.name}' stalls the event loop; use 'await "
                f"asyncio.sleep(...)' for delays and 'await "
                f"asyncio.to_thread(...)' for blocking IO",
            )


def _identifiers(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _is_wall_clock_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name in _WALL_CLOCK_CALLS


class MonotonicClockRule(Rule):
    rule_id = "RB705"
    name = "monotonic-clock"
    description = (
        "Deadline / heartbeat / timeout arithmetic must use "
        "time.monotonic(), never time.time() — wall clocks step under "
        "NTP, so elapsed-time comparisons built on them misfire.  "
        "Applies to tests too (RB101 exempts them from the blanket "
        "wall-clock ban; this closes the deadline-shaped half of that "
        "gap)."
    )
    node_types = ()

    def finish_file(self, ctx: FileContext, report: Reporter) -> None:
        for scope in iter_scopes(ctx.tree):
            self._check_scope(scope.body, ctx, report)

    def _check_scope(
        self,
        body: Sequence[ast.stmt],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        tainted = tainted_names(body, _is_wall_clock_call)

        def expr_tainted(expr: ast.AST) -> bool:
            for sub in ast.walk(expr):
                if _is_wall_clock_call(sub):
                    return True
                if isinstance(sub, ast.Name) and sub.id in tainted:
                    return True
            return False

        reported_lines: Set[int] = set()

        def flag(node: ast.AST, what: str) -> None:
            line = int(getattr(node, "lineno", 0))
            if line in reported_lines:
                return
            reported_lines.add(line)
            report.at_node(
                ctx,
                node,
                f"wall-clock value flows into {what}; time.time() steps "
                f"under NTP/DST — use time.monotonic() for deadline and "
                f"heartbeat arithmetic",
            )

        for stmt in scope_statements(body):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value = stmt.value
                if value is None:
                    continue
                names = [n for t in targets for n in _identifiers(t)]
                if any(_DEADLINE_RE.search(n) for n in names) and expr_tainted(
                    value
                ):
                    flag(stmt, f"the assignment to {names[0]!r}")
        for node in scope_walk(body):
            deadline_like: Optional[ast.AST] = None
            if isinstance(node, ast.Compare):
                deadline_like = node
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                deadline_like = node
            if deadline_like is None:
                continue
            idents = set(_identifiers(node))
            if not any(_DEADLINE_RE.search(name) for name in idents):
                continue
            if expr_tainted(node):
                flag(node, "deadline/timeout arithmetic")
