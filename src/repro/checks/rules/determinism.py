"""RB101 — seed-determinism: no ambient randomness or wall-clock reads.

Every simulation in this repo must be reproducible from an explicit
seed: the paper's distribution fits (and the kernel⇄oracle equivalence
suites) are only meaningful when stochastic paths can be replayed
exactly.  Library code therefore must not draw entropy from the legacy
global NumPy RNG, the ``random`` module's module-level state, or the
wall clock:

* ``np.random.<fn>(...)`` is banned except constructing explicit
  generators (``default_rng``/``Generator``/``SeedSequence``/bit
  generators) — and ``default_rng()`` *without* a seed is banned too;
* ``random.<fn>(...)`` module-level calls are banned
  (``random.Random(seed)`` with an explicit seed is fine);
* ``time.time``/``time.time_ns``, ``datetime.now``/``utcnow``/
  ``today`` and ``date.today`` are banned (``time.perf_counter`` and
  ``time.monotonic`` are fine: durations, not timestamps).

The fix is to accept a seeded ``np.random.Generator`` (or a seed) as a
parameter, as :mod:`repro.traces.generator` does.  Wall-clock stamps on
*reports* (not simulations) may be suppressed with a justified
``# repro: noqa(RB101)``.
"""

from __future__ import annotations

import ast
from typing import Sequence

from ..engine import FileContext, Reporter, Rule
from ._common import dotted_name, is_test_path

#: Explicit-generator constructors allowed under ``np.random``.
_ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Wall-clock reads (matched on the trailing two name components).
_CLOCK_TAILS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}


class DeterminismRule(Rule):
    rule_id = "RB101"
    name = "determinism"
    description = (
        "Library code must not use the global NumPy/stdlib RNG state, "
        "unseeded default_rng(), or wall-clock reads; randomness comes "
        "from passed-in seeded Generators."
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return not is_test_path(ctx.rel)

    def visit(
        self,
        node: ast.AST,
        ancestors: Sequence[ast.AST],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        tail = ".".join(parts[-2:])

        if len(parts) >= 2 and parts[-2] == "random" and parts[0] in ("np", "numpy"):
            fn = parts[-1]
            if fn not in _ALLOWED_NP_RANDOM:
                report.at_node(
                    ctx,
                    node,
                    f"legacy global NumPy RNG call {name}(); draw from a "
                    f"seeded, passed-in np.random.Generator instead",
                )
                return
            if fn == "default_rng" and not node.args and not node.keywords:
                report.at_node(
                    ctx,
                    node,
                    "unseeded np.random.default_rng(); pass an explicit "
                    "seed so runs are reproducible",
                )
            return

        if parts[0] == "random" and len(parts) == 2:
            fn = parts[1]
            if fn == "Random":
                if not node.args and not node.keywords:
                    report.at_node(
                        ctx,
                        node,
                        "unseeded random.Random(); pass an explicit seed",
                    )
                return
            report.at_node(
                ctx,
                node,
                f"stdlib module-level RNG call {name}(); use a seeded "
                f"np.random.Generator (or random.Random(seed)) instead",
            )
            return

        if tail in _CLOCK_TAILS or name in _CLOCK_TAILS:
            report.at_node(
                ctx,
                node,
                f"wall-clock read {name}(); simulations must be "
                f"reproducible — pass timestamps in, or use "
                f"time.perf_counter() for durations",
            )
