"""RB301 — every ``REPRO_*`` switch goes through the central registry.

Behavior toggles used to be parsed ad hoc wherever they were read; the
same variable then grew different defaults, validation and error
messages in different modules.  :mod:`repro.constants` now declares
each variable once as an :class:`~repro.constants.EnvVar` in
``ENV_VARS`` (single parse, single validation, canonical error), and
everything else calls ``<VAR>.get()``.

This rule flags any direct ``os.environ[...]`` / ``os.environ.get`` /
``os.getenv`` access to a ``REPRO_*`` name outside ``repro/constants.py``
— and, project-wide, checks that every registered variable is documented
in the table in ``docs/development.md``.
"""

from __future__ import annotations

import ast
from typing import Optional, Sequence

from ..engine import FileContext, Project, Reporter, Rule
from ._common import dotted_name

REGISTRY = "src/repro/constants.py"
DOCS = "docs/development.md"

#: Dotted call targets that read the environment.
_ENV_CALLS = {
    "os.environ.get",
    "os.environ.pop",
    "os.environ.setdefault",
    "environ.get",
    "os.getenv",
    "getenv",
}

_ENV_SUBSCRIPTS = {"os.environ", "environ"}


def _repro_key(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value.startswith("REPRO_"):
            return node.value
    return None


class EnvRegistryRule(Rule):
    rule_id = "RB301"
    name = "env-var-registry"
    description = (
        "REPRO_* environment variables are read only through the "
        "repro.constants ENV_VARS registry, and every registered "
        "variable is documented in docs/development.md."
    )
    node_types = (ast.Call, ast.Subscript)

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.rel.endswith("repro/constants.py")

    def visit(
        self,
        node: ast.AST,
        ancestors: Sequence[ast.AST],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        key: Optional[str] = None
        if isinstance(node, ast.Subscript):
            if dotted_name(node.value) in _ENV_SUBSCRIPTS:
                key = _repro_key(node.slice)
        elif isinstance(node, ast.Call):
            if dotted_name(node.func) in _ENV_CALLS and node.args:
                key = _repro_key(node.args[0])
        if key is not None:
            report.at_node(
                ctx,
                node,
                f"direct environment read of {key}; go through the "
                f"repro.constants registry (e.g. "
                f"constants.ENV_VARS[{key!r}].get())",
            )

    def finish_project(self, project: Project, report: Reporter) -> None:
        ctx = project.scanned.get(REGISTRY)
        if ctx is None:
            return
        registered = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "EnvVar"
            ):
                continue
            name: Optional[str] = None
            for kw in node.keywords:
                if kw.arg == "name":
                    name = _repro_key(kw.value)
            if name is None and node.args:
                name = _repro_key(node.args[0])
            if name is not None:
                registered.append((name, node.lineno))
        if not registered:
            report.at(
                REGISTRY,
                1,
                "no EnvVar registrations found in the constants registry",
            )
            return
        docs = project.text(DOCS)
        for name, lineno in registered:
            if docs is None:
                report.at(
                    REGISTRY,
                    lineno,
                    f"{name} is registered but {DOCS} (the documented "
                    f"REPRO_* table) does not exist",
                )
            elif name not in docs:
                report.at(
                    REGISTRY,
                    lineno,
                    f"{name} is registered but missing from the "
                    f"environment-variable table in {DOCS}",
                )
