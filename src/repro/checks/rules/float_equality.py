"""RB401 — the float-equality policy, both directions.

The repo's parity story is *exact*: batched kernels are verified
bitwise-identical to their oracles, never "close".  Two symmetric
hazards erode that:

* a kernel-equivalence test that quietly switches to ``np.isclose`` /
  ``assert_allclose`` / ``pytest.approx`` stops proving bitwise parity
  while still passing — so approximate comparators are forbidden in
  kernel-equivalence test modules (``tests/test_*kernel*`` and
  ``tests/test_*equivalence*``), which must assert with ``==`` /
  ``np.array_equal``;
* library code comparing computed floats with ``==`` against a nonzero
  float literal is almost always a latent bug (representation drift,
  accumulated rounding).  Comparison against the literal ``0.0`` is
  allowed — zero is exact in IEEE 754 and the codebase uses it only to
  test never-assigned parameter sentinels.  Designated oracle modules
  (the kernels and the scalar fast paths, whose exact comparisons *are*
  the spec) are exempt.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Sequence

from ..engine import FileContext, Reporter, Rule
from ._common import dotted_name, is_test_path

#: Modules whose exact float comparisons define the reference semantics.
ORACLE_MODULES = (
    "repro/sweep/kernels.py",
    "repro/sweep/events.py",
    "repro/mapreduce/kernels.py",
    "repro/mapreduce/runner.py",
    "repro/market/fastpath.py",
)

#: Approximate comparators banned from kernel-equivalence tests.
_APPROX_TAILS = {
    "isclose",
    "allclose",
    "assert_allclose",
    "assert_almost_equal",
    "assert_array_almost_equal",
    "approx",
}


def _is_equivalence_test(rel: str) -> bool:
    stem = PurePosixPath(rel).stem
    return is_test_path(rel) and ("kernel" in stem or "equivalence" in stem)


class FloatEqualityRule(Rule):
    rule_id = "RB401"
    name = "float-equality-policy"
    description = (
        "Kernel-equivalence tests must assert exact equality (no "
        "isclose/allclose/approx); library code must not compare floats "
        "== against nonzero float literals outside oracle modules."
    )
    node_types = (ast.Call, ast.Compare)

    def applies_to(self, ctx: FileContext) -> bool:
        if is_test_path(ctx.rel):
            return _is_equivalence_test(ctx.rel)
        return not ctx.rel.endswith(ORACLE_MODULES)

    def visit(
        self,
        node: ast.AST,
        ancestors: Sequence[ast.AST],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        if _is_equivalence_test(ctx.rel):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[-1] in _APPROX_TAILS:
                    report.at_node(
                        ctx,
                        node,
                        f"approximate comparator {name}() in a "
                        f"kernel-equivalence test; parity claims are "
                        f"bitwise — use == / np.array_equal",
                    )
            return
        if not isinstance(node, ast.Compare):
            return
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for operand in (node.left, *node.comparators):
            if (
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                and operand.value != 0.0
            ):
                report.at_node(
                    ctx,
                    node,
                    f"float == against the literal {operand.value!r}; "
                    f"exact nonzero float comparison is a latent bug "
                    f"outside oracle modules — compare with a tolerance "
                    f"from repro.constants, or restructure",
                )
                return
