"""RB201 — kernel⇄oracle parity: fast paths never outrun their proofs.

The sweep engine (:mod:`repro.sweep.engine`) and the MapReduce plan
grid (:mod:`repro.mapreduce.grid`) both dispatch between a batched
fast-path kernel and a slow reference oracle via ``REPRO_SWEEP_KERNEL``.
The repo's correctness claim — eqs. 1–4, 13–16 and 17–19 all have
bitwise-identical fast and slow paths — only holds while every kernel
registered in those dispatch tables keeps:

* a ``*_reference`` (or scalar-runner) oracle in the same table,
* a randomized exact-equivalence test in ``tests/`` that references
  both the kernel and its oracle,
* a benchmark case in ``repro/bench/cases.py`` (so the bench gate's
  bitwise comparison exercises it on every CI run) and a timing lane in
  ``repro/bench/runner.py``.

The compiled tier (:mod:`repro.sweep.compiled`) is a third dispatch
family with the same obligations against a different oracle: every
``*_kernel_compiled`` registered by ``_select_kernels``, the
``"compiled"`` key of ``_BATCH_KERNELS``, and every entry of
``_EXT_KERNELS_COMPILED`` must keep a randomized exact-equivalence test
against its *event-lane* kernel and a ``compiled=True`` bench case.

This rule re-derives the dispatch tables by parsing the ASTs of the
anchor modules and cross-references ``tests/`` and the bench package —
deleting a kernel's equivalence test or its bench coverage makes the
check fail.  It runs whenever an anchor module is in the scan set.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple, Union

from ..engine import Project, Reporter, Rule
from ._common import module_bindings, referenced_names, string_constants

SWEEP_ENGINE = "src/repro/sweep/engine.py"
SWEEP_KERNELS = "src/repro/sweep/kernels.py"
MR_GRID = "src/repro/mapreduce/grid.py"
MR_KERNELS = "src/repro/mapreduce/kernels.py"
EXT_KERNELS = "src/repro/extensions/kernels.py"
BENCH_CASES = "src/repro/bench/cases.py"
BENCH_RUNNER = "src/repro/bench/runner.py"

#: Names whose presence marks an equivalence test as randomized.
_RANDOMIZED_MARKERS = {"default_rng", "rng", "given", "random_workload"}


def _true_keyword(call: ast.Call, name: str) -> bool:
    """Whether ``call`` passes ``name=True`` as a literal keyword."""
    return any(
        kw.arg == name
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in call.keywords
    )


class KernelParityRule(Rule):
    rule_id = "RB201"
    name = "kernel-parity"
    description = (
        "Every kernel in the REPRO_SWEEP_KERNEL dispatch tables needs a "
        "reference oracle, a randomized exact-equivalence test in "
        "tests/, and a bench case."
    )

    def finish_project(self, project: Project, report: Reporter) -> None:
        self._test_refs: Optional[Dict[str, Tuple[Set[str], Set[str]]]] = None
        self._check_sweep(project, report)
        self._check_mapreduce(project, report)
        self._check_extensions(project, report)

    # -- corpus helpers ------------------------------------------------

    def _tests_referencing(
        self, project: Project
    ) -> Dict[str, Tuple[Set[str], Set[str]]]:
        """Per test module: (referenced names, string literals)."""
        if self._test_refs is None:
            self._test_refs = {}
            for rel in project.glob("tests/**/test_*.py"):
                ctx = project.file(rel)
                if ctx is not None:
                    self._test_refs[rel] = (
                        referenced_names(ctx.tree),
                        string_constants(ctx.tree),
                    )
        return self._test_refs

    def _require_equivalence_test(
        self,
        project: Project,
        report: Reporter,
        anchor_rel: str,
        anchor_line: int,
        kernel: str,
        oracle: str,
        via: Optional[Tuple[str, str]] = None,
    ) -> None:
        """A test module covers ``kernel`` when it references the oracle
        and either names the kernel directly or — when ``via=(driver,
        key)`` is given — calls the public driver with the kernel's
        dispatch-table key as a string literal (the MapReduce tests use
        ``run_plan_grid(..., kernel="event")``)."""
        test_refs = self._tests_referencing(project)
        matching = []
        for rel, (refs, consts) in test_refs.items():
            if oracle not in refs:
                continue
            if kernel in refs or (
                via is not None and via[0] in refs and via[1] in consts
            ):
                matching.append(rel)
        if not matching:
            report.at(
                anchor_rel,
                anchor_line,
                f"dispatch-table kernel {kernel!r} has no equivalence "
                f"test: no module under tests/ references both {kernel!r} "
                f"and its oracle {oracle!r}",
            )
            return
        if not any(
            test_refs[rel][0] & _RANDOMIZED_MARKERS for rel in matching
        ):
            report.at(
                anchor_rel,
                anchor_line,
                f"equivalence test(s) for {kernel!r} ({', '.join(matching)}) "
                f"are not randomized: no seeded-generator or hypothesis "
                f"usage found",
            )

    def _bench_case_calls(self, project: Project) -> Dict[str, List[ast.Call]]:
        """``BenchCase``/``MapReduceBenchCase`` constructor calls in the
        bench case table, keyed by constructor name."""
        out: Dict[str, List[ast.Call]] = {}
        ctx = project.file(BENCH_CASES)
        if ctx is None:
            return out
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                out.setdefault(node.func.id, []).append(node)
        return out

    # -- sweep dispatch table ------------------------------------------

    def _check_sweep(self, project: Project, report: Reporter) -> None:
        ctx = project.scanned.get(SWEEP_ENGINE)
        if ctx is None:
            return
        selector = next(
            (
                node
                for node in ast.walk(ctx.tree)
                if isinstance(node, ast.FunctionDef)
                and node.name == "_select_kernels"
            ),
            None,
        )
        if selector is None:
            report.at(
                SWEEP_ENGINE,
                1,
                "kernel dispatch function _select_kernels not found; the "
                "REPRO_SWEEP_KERNEL switch must stay statically analyzable",
            )
            return
        names: List[str] = []
        for node in ast.walk(selector):
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        names.append(sub.id)
        table = set(names)
        batched = sorted(
            n for n in table if n.endswith("_kernel")
        )
        if not batched:
            report.at(
                SWEEP_ENGINE,
                selector.lineno,
                "_select_kernels registers no batched *_kernel functions",
            )
            return

        kernels_ctx = project.file(SWEEP_KERNELS)
        defined = (
            module_bindings(kernels_ctx.tree) if kernels_ctx is not None else None
        )
        runner_ctx = project.file(BENCH_RUNNER)
        runner_refs = (
            referenced_names(runner_ctx.tree) if runner_ctx is not None else set()
        )
        bench_strategies = {
            kw.value.attr
            for call in self._bench_case_calls(project).get("BenchCase", [])
            for kw in call.keywords
            if kw.arg == "strategy" and isinstance(kw.value, ast.Attribute)
        }

        for kernel in batched:
            oracle = f"{kernel}_reference"
            if oracle not in table:
                report.at(
                    SWEEP_ENGINE,
                    selector.lineno,
                    f"dispatch table registers {kernel!r} without its "
                    f"{oracle!r} oracle",
                )
            for fn in (kernel, oracle):
                if defined is not None and fn not in defined:
                    report.at(
                        SWEEP_ENGINE,
                        selector.lineno,
                        f"{fn!r} is dispatched but not defined in "
                        f"{SWEEP_KERNELS}",
                    )
            self._require_equivalence_test(
                project, report, SWEEP_ENGINE, selector.lineno, kernel, oracle
            )
            if kernel.startswith("onetime"):
                required = "ONE_TIME"
            elif kernel.startswith("persistent"):
                required = "PERSISTENT"
            else:
                required = None
            if required is not None and required not in bench_strategies:
                report.at(
                    BENCH_CASES,
                    1,
                    f"no BenchCase with strategy=Strategy.{required} in "
                    f"{BENCH_CASES}; kernel {kernel!r} has no bench "
                    f"coverage",
                )
            if runner_ctx is not None and (
                kernel not in runner_refs or oracle not in runner_refs
            ):
                report.at(
                    BENCH_RUNNER,
                    1,
                    f"{BENCH_RUNNER} does not time {kernel!r} against "
                    f"{oracle!r}",
                )

        # Compiled tier: each *_kernel_compiled must wrap a registered
        # event kernel, prove bitwise equality against it, and carry a
        # compiled=True bench case for its strategy.
        compiled = sorted(n for n in table if n.endswith("_kernel_compiled"))
        compiled_strategies = {
            kw.value.attr
            for call in self._bench_case_calls(project).get("BenchCase", [])
            if _true_keyword(call, "compiled")
            for kw in call.keywords
            if kw.arg == "strategy" and isinstance(kw.value, ast.Attribute)
        }
        for kernel in compiled:
            base = kernel[: -len("_compiled")]
            if base not in table:
                report.at(
                    SWEEP_ENGINE,
                    selector.lineno,
                    f"compiled kernel {kernel!r} has no event-lane "
                    f"{base!r} in the dispatch table",
                )
            if defined is not None and kernel not in defined:
                report.at(
                    SWEEP_ENGINE,
                    selector.lineno,
                    f"{kernel!r} is dispatched but not defined in "
                    f"{SWEEP_KERNELS}",
                )
            self._require_equivalence_test(
                project, report, SWEEP_ENGINE, selector.lineno, kernel, base
            )
            if base.startswith("onetime"):
                required = "ONE_TIME"
            elif base.startswith("persistent"):
                required = "PERSISTENT"
            else:
                required = None
            if required is not None and required not in compiled_strategies:
                report.at(
                    BENCH_CASES,
                    1,
                    f"no BenchCase with compiled=True and strategy="
                    f"Strategy.{required} in {BENCH_CASES}; compiled "
                    f"kernel {kernel!r} has no bench coverage",
                )
            if runner_ctx is not None and kernel not in runner_refs:
                report.at(
                    BENCH_RUNNER,
                    1,
                    f"{BENCH_RUNNER} does not time {kernel!r}",
                )

    # -- mapreduce dispatch table --------------------------------------

    def _check_mapreduce(self, project: Project, report: Reporter) -> None:
        ctx = project.scanned.get(MR_GRID)
        if ctx is None:
            return
        table_node: Optional[ast.Assign] = None
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "_BATCH_KERNELS"
                for t in node.targets
            ):
                table_node = node
                break
        if table_node is None or not isinstance(table_node.value, ast.Dict):
            report.at(
                MR_GRID,
                1,
                "_BATCH_KERNELS dispatch dict not found; the MapReduce "
                "kernel switch must stay statically analyzable",
            )
            return
        kernels: List[Tuple[str, str]] = sorted(
            (value.id, key.value)
            for key, value in zip(
                table_node.value.keys, table_node.value.values
            )
            if isinstance(value, ast.Name)
            and isinstance(key, ast.Constant)
            and isinstance(key.value, str)
        )
        if not kernels:
            report.at(
                MR_GRID, table_node.lineno, "_BATCH_KERNELS registers no kernels"
            )
            return
        oracle = "run_plan_on_traces"
        if oracle not in referenced_names(ctx.tree):
            report.at(
                MR_GRID,
                table_node.lineno,
                f"the scalar oracle {oracle!r} is no longer referenced by "
                f"{MR_GRID}; the batched kernels would have no reference "
                f"path",
            )
        kernels_ctx = project.file(MR_KERNELS)
        defined = (
            module_bindings(kernels_ctx.tree) if kernels_ctx is not None else None
        )
        for kernel, key in kernels:
            if defined is not None and kernel not in defined:
                report.at(
                    MR_GRID,
                    table_node.lineno,
                    f"{kernel!r} is dispatched but not defined in {MR_KERNELS}",
                )
            self._require_equivalence_test(
                project,
                report,
                MR_GRID,
                table_node.lineno,
                kernel,
                oracle,
                via=("run_plan_grid", key),
            )
        mr_calls = self._bench_case_calls(project).get("MapReduceBenchCase", [])
        if not mr_calls:
            report.at(
                BENCH_CASES,
                1,
                f"no MapReduceBenchCase in {BENCH_CASES}; the plan-grid "
                f"kernels {', '.join(repr(k) for k, _ in kernels)} have no "
                f"bench coverage",
            )
        elif any(key == "compiled" for _, key in kernels) and not any(
            _true_keyword(call, "compiled") for call in mr_calls
        ):
            report.at(
                BENCH_CASES,
                1,
                f"no MapReduceBenchCase with compiled=True in "
                f"{BENCH_CASES}; the compiled plan-grid kernel has no "
                f"bench coverage",
            )

    # -- extensions dispatch table -------------------------------------

    def _check_extensions(self, project: Project, report: Reporter) -> None:
        ctx = project.scanned.get(EXT_KERNELS)
        if ctx is None:
            return
        # The table is annotated (`_EXT_KERNELS: Dict[...] = {...}`), so
        # accept both plain and annotated assignments.
        table_node: Optional[Union[ast.Assign, ast.AnnAssign]] = None
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "_EXT_KERNELS"
                for t in node.targets
            ):
                table_node = node
                break
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "_EXT_KERNELS"
                and node.value is not None
            ):
                table_node = node
                break
        if table_node is None or not isinstance(table_node.value, ast.Dict):
            report.at(
                EXT_KERNELS,
                1,
                "_EXT_KERNELS dispatch dict not found; the extension "
                "kernel switch must stay statically analyzable",
            )
            return
        pairs: List[Tuple[int, str, str]] = []
        fast_by_key: Dict[str, str] = {}
        for key, value in zip(table_node.value.keys, table_node.value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            if not (
                isinstance(value, ast.Tuple)
                and len(value.elts) == 2
                and all(isinstance(e, ast.Name) for e in value.elts)
            ):
                report.at(
                    EXT_KERNELS,
                    value.lineno,
                    f"_EXT_KERNELS entry {key.value!r} must be a "
                    f"(kernel, oracle) tuple of plain names",
                )
                continue
            pairs.append((value.lineno, value.elts[0].id, value.elts[1].id))
            fast_by_key[key.value] = value.elts[0].id
        if not pairs:
            report.at(
                EXT_KERNELS, table_node.lineno, "_EXT_KERNELS registers no kernels"
            )
            return
        defined = module_bindings(ctx.tree)
        for lineno, kernel, oracle in sorted(pairs):
            if oracle != f"{kernel}_reference":
                report.at(
                    EXT_KERNELS,
                    lineno,
                    f"dispatch table pairs {kernel!r} with {oracle!r}; the "
                    f"oracle must be named {kernel + '_reference'!r}",
                )
            for fn in (kernel, oracle):
                if fn not in defined:
                    report.at(
                        EXT_KERNELS,
                        lineno,
                        f"{fn!r} is dispatched but not defined in "
                        f"{EXT_KERNELS}",
                    )
            self._require_equivalence_test(
                project, report, EXT_KERNELS, lineno, kernel, oracle
            )
        ext_calls = self._bench_case_calls(project).get("ExtensionBenchCase", [])
        if not ext_calls:
            report.at(
                BENCH_CASES,
                1,
                f"no ExtensionBenchCase in {BENCH_CASES}; the extension "
                f"kernels have no bench coverage",
            )
        runner_ctx = project.file(BENCH_RUNNER)
        runner_refs = (
            referenced_names(runner_ctx.tree) if runner_ctx is not None else set()
        )
        if runner_ctx is not None and "extension_kernel_pair" not in runner_refs:
            report.at(
                BENCH_RUNNER,
                1,
                f"{BENCH_RUNNER} does not time the extension kernels "
                f"(no extension_kernel_pair reference)",
            )
        self._check_extensions_compiled(
            project, report, ctx, fast_by_key, defined, ext_calls, runner_refs,
            runner_ctx is not None,
        )

    def _check_extensions_compiled(
        self,
        project: Project,
        report: Reporter,
        ctx: "object",
        fast_by_key: Dict[str, str],
        defined: Set[str],
        ext_calls: List[ast.Call],
        runner_refs: Set[str],
        have_runner: bool,
    ) -> None:
        """The ``_EXT_KERNELS_COMPILED`` table: keys must be dispatch
        keys, values ``{event_kernel}_compiled`` names with a randomized
        equivalence test against the event kernel and a ``compiled=True``
        bench case."""
        tree = ctx.tree  # type: ignore[attr-defined]
        comp_node: Optional[Union[ast.Assign, ast.AnnAssign]] = None
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "_EXT_KERNELS_COMPILED"
                for t in node.targets
            ):
                comp_node = node
                break
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "_EXT_KERNELS_COMPILED"
                and node.value is not None
            ):
                comp_node = node
                break
        if comp_node is None or not isinstance(comp_node.value, ast.Dict):
            report.at(
                EXT_KERNELS,
                1,
                "_EXT_KERNELS_COMPILED dispatch dict not found; the "
                "compiled extension switch must stay statically analyzable",
            )
            return
        entries: List[Tuple[int, str, str]] = []
        for key, value in zip(comp_node.value.keys, comp_node.value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            if not isinstance(value, ast.Name):
                report.at(
                    EXT_KERNELS,
                    value.lineno,
                    f"_EXT_KERNELS_COMPILED entry {key.value!r} must be a "
                    f"plain kernel name",
                )
                continue
            entries.append((value.lineno, key.value, value.id))
        for lineno, key, kernel in sorted(entries):
            fast = fast_by_key.get(key)
            if fast is None:
                report.at(
                    EXT_KERNELS,
                    lineno,
                    f"_EXT_KERNELS_COMPILED key {key!r} is not an "
                    f"_EXT_KERNELS dispatch key",
                )
                continue
            if kernel != f"{fast}_compiled":
                report.at(
                    EXT_KERNELS,
                    lineno,
                    f"compiled counterpart for {key!r} must be named "
                    f"{fast + '_compiled'!r}, got {kernel!r}",
                )
            if kernel not in defined:
                report.at(
                    EXT_KERNELS,
                    lineno,
                    f"{kernel!r} is dispatched but not defined in "
                    f"{EXT_KERNELS}",
                )
            self._require_equivalence_test(
                project, report, EXT_KERNELS, lineno, kernel, fast
            )
            if not any(
                _true_keyword(call, "compiled")
                and any(
                    kw.arg == "kernel"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value == key
                    for kw in call.keywords
                )
                for call in ext_calls
            ):
                report.at(
                    BENCH_CASES,
                    1,
                    f"no ExtensionBenchCase with kernel={key!r} and "
                    f"compiled=True in {BENCH_CASES}; {kernel!r} has no "
                    f"bench coverage",
                )
        if entries and have_runner and (
            "extension_kernel_compiled" not in runner_refs
        ):
            report.at(
                BENCH_RUNNER,
                1,
                f"{BENCH_RUNNER} does not time the compiled extension "
                f"kernels (no extension_kernel_compiled reference)",
            )
