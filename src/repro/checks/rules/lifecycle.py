"""RB703/RB704 — durability and resource-lifecycle rules.

* **RB703 journal-durability** — the crash-consistency story of the
  sweep/shard journals (:class:`repro.resilience.execution.SweepJournal`
  and subclasses) holds only while (a) every construction site makes an
  *explicit* durability choice — ``fsync=True`` or a justified
  ``fsync=False`` — instead of silently inheriting the non-durable
  default, and (b) every method of a ``*Journal`` class that opens a
  file for writing and writes records through the handle also reaches
  an ``os.fsync`` call (dataflow from ``open`` to the write).
* **RB704 resource-lifecycle** — generalizes RB501 beyond shared
  memory: pipes, sockets, tempfiles, and file handles must be released
  on **every** CFG path.  A creation site is accepted when it is
  structurally scoped (``with`` / ``try``-``finally``), when the value
  escapes the scope (returned, stored on an object, passed to another
  call — ownership transferred), or when the per-function CFG proves a
  release (``.close()`` etc.) on every path from creation to exit.
  Exception edges are modeled only at ``try`` entries, so explicit
  close discipline on branchy code is what this rule actually audits.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set, Tuple

from ..dataflow import Scope, cfg_for_scope, every_path_hits
from ..engine import FileContext, Reporter, Rule
from ._common import dotted_name, is_test_path, referenced_names, walk_contains

#: Journal class whose ``fsync`` default is the *non*-durable one; call
#: sites must choose explicitly.  (``ShardJournal`` defaults to durable,
#: so inheriting its default is already a safe choice.)
_EXPLICIT_FSYNC_CLASSES = {"SweepJournal"}

#: Fully-qualified resource factories (matched on the whole dotted name).
_RESOURCE_DOTTED = {
    "os.pipe",
    "socket.socket",
    "socket.socketpair",
    "socket.create_connection",
}

#: Resource factories matched on the last dotted component (constructor
#: class names are unambiguous enough; bare module calls are not).
_RESOURCE_TAILS = {
    "Pipe",
    "SharedMemory",
    "SharedPriceStack",
    "NamedTemporaryFile",
    "TemporaryFile",
    "SpooledTemporaryFile",
    "TemporaryDirectory",
    "mkstemp",
}

#: Methods that release a resource for the path query.
_CLOSE_METHODS = {
    "close",
    "shutdown",
    "unlink",
    "cleanup",
    "terminate",
    "kill",
    "release",
}

#: The shm attach-side cache module RB501 already exempts.
_OWNER_MODULE = "repro/sweep/shm.py"


def _call_tail(node: ast.Call) -> str:
    name = dotted_name(node.func)
    return name.split(".")[-1] if name else ""


def _open_mode(node: ast.Call) -> str:
    """The mode string of an ``open(...)`` call (default ``"r"``)."""
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return "r" if mode is None else "?"


def _is_writable_mode(mode: str) -> bool:
    return any(flag in mode for flag in "wax+") or mode == "?"


class JournalDurabilityRule(Rule):
    rule_id = "RB703"
    name = "journal-durability"
    description = (
        "SweepJournal construction must pass an explicit fsync= choice, "
        "and every *Journal method that opens-for-write and writes must "
        "reach os.fsync — otherwise a crash can lose records the caller "
        "already saw acknowledged."
    )
    node_types = (ast.Call, ast.ClassDef)

    def applies_to(self, ctx: FileContext) -> bool:
        return not is_test_path(ctx.rel)

    def visit(
        self,
        node: ast.AST,
        ancestors: Sequence[ast.AST],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        if isinstance(node, ast.Call):
            self._check_call_site(node, ctx, report)
        elif isinstance(node, ast.ClassDef):
            self._check_journal_class(node, ctx, report)

    def _check_call_site(
        self, node: ast.Call, ctx: FileContext, report: Reporter
    ) -> None:
        name = _call_tail(node)
        if name not in _EXPLICIT_FSYNC_CLASSES:
            return
        if any(keyword.arg == "fsync" for keyword in node.keywords):
            return
        if any(keyword.arg is None for keyword in node.keywords):
            return  # **kwargs forwarding may carry the choice
        report.at_node(
            ctx,
            node,
            f"{name}(...) without an explicit fsync= choice silently "
            f"inherits the non-durable default; pass fsync=True, or "
            f"fsync=False with a justification comment",
        )

    def _check_journal_class(
        self, node: ast.ClassDef, ctx: FileContext, report: Reporter
    ) -> None:
        if not node.name.endswith("Journal"):
            return
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._check_write_path(method, ctx, report)

    def _check_write_path(
        self,
        method: ast.AST,
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        handles: List[Tuple[str, ast.Call]] = []
        writes: Set[str] = set()
        fsyncs = False
        assert isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
        for sub in ast.walk(method):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if name == "open" and _is_writable_mode(_open_mode(sub)):
                handles.append((name, sub))
            elif name in ("os.fsync", "os.fdatasync"):
                fsyncs = True
            elif (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("write", "writelines")
                and isinstance(sub.func.value, ast.Name)
            ):
                writes.add(sub.func.value.id)
        if not handles or not writes or fsyncs:
            return
        # Tie the open back to the written handle through the with-item
        # / assignment name the handle is bound to.
        for name, call in handles:
            bound = self._bound_names(call, method)
            if bound & writes:
                report.at_node(
                    ctx,
                    call,
                    f"journal write path opens {sorted(bound & writes)[0]!r} "
                    f"for writing and writes records but never reaches "
                    f"os.fsync; a crash can lose acknowledged records — "
                    f"fsync the handle (or gate it on an explicit "
                    f"fsync=False setting)",
                )

    @staticmethod
    def _bound_names(call: ast.Call, method: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for sub in ast.walk(method):
            if isinstance(sub, ast.withitem) and sub.context_expr is call:
                if isinstance(sub.optional_vars, ast.Name):
                    names.add(sub.optional_vars.id)
            elif isinstance(sub, ast.Assign) and sub.value is call:
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names


def _is_structurally_guarded(
    node: ast.Call, ancestors: Sequence[ast.AST]
) -> bool:
    """RB501-style guard: created as a with-item, or in a try body whose
    finally is presumed to clean up."""
    for ancestor in reversed(ancestors):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if walk_contains(item.context_expr, node):
                    return True
        elif isinstance(ancestor, ast.Try) and ancestor.finalbody:
            if any(walk_contains(stmt, node) for stmt in ancestor.body):
                return True
    return False


def _target_names(target: ast.expr) -> Optional[List[str]]:
    """Plain names bound by an assignment target, or ``None`` when the
    target stores elsewhere (attribute/subscript — an escape)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            sub = _target_names(element)
            if sub is None:
                return None
            names.extend(sub)
        return names
    return None


def _own_subtree(stmt: ast.stmt) -> Sequence[ast.AST]:
    """The statement plus its expression children, stopping at nested
    statements — those live in their own CFG blocks, and looking inside
    them here would let ``if cond: s.close()`` satisfy paths that take
    the other branch."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        out.append(node)
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.stmt):
                stack.append(child)
    return out


def _releases_or_escapes(stmt: ast.stmt, name: str) -> bool:
    """Does ``stmt`` itself (not its nested blocks) release ``name``
    (close-family call) or transfer ownership out of the local scope?"""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Captured by a nested scope: lifetime leaves this function.
        return name in referenced_names(stmt)
    for sub in _own_subtree(stmt):
        if isinstance(sub, ast.Call):
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == name
                and func.attr in _CLOSE_METHODS
            ):
                return True
            if dotted_name(func) in ("os.close", "os.closerange"):
                if any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in sub.args
                ):
                    return True
            # Passed as an argument: ownership transferred to the callee.
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                if any(
                    isinstance(inner, ast.Name) and inner.id == name
                    for inner in ast.walk(arg)
                ):
                    return True
        elif isinstance(sub, (ast.Return, ast.Raise, ast.Yield, ast.YieldFrom)):
            if any(
                isinstance(inner, ast.Name) and inner.id == name
                for inner in ast.walk(sub)
            ):
                return True
        elif isinstance(sub, ast.Assign):
            if any(
                isinstance(inner, ast.Name) and inner.id == name
                for inner in ast.walk(sub.value)
            ):
                return True  # aliased or stored out
        elif isinstance(sub, ast.withitem):
            if any(
                isinstance(inner, ast.Name) and inner.id == name
                for inner in ast.walk(sub.context_expr)
            ):
                return True  # e.g. with closing(handle):
    return False


class ResourceLifecycleRule(Rule):
    rule_id = "RB704"
    name = "resource-lifecycle"
    description = (
        "Pipes, sockets, tempfiles, shared memory and file handles must "
        "be released on every path: scope them with with / try-finally, "
        "hand ownership off, or close them on all CFG paths to the "
        "function exit."
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return not is_test_path(ctx.rel) and not ctx.rel.endswith(_OWNER_MODULE)

    def visit(
        self,
        node: ast.AST,
        ancestors: Sequence[ast.AST],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name is None:
            return
        is_resource = (
            name in _RESOURCE_DOTTED
            or name.split(".")[-1] in _RESOURCE_TAILS
            or name == "open"
        )
        if not is_resource:
            return
        if _is_structurally_guarded(node, ancestors):
            return

        stmt = self._enclosing_statement(ancestors)
        if stmt is None:
            return
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)) or not (
            getattr(stmt, "value", None) is node
        ):
            # Not directly bound to a name: accept escapes (argument,
            # return value, comprehension feeding a call, ...), flag
            # bare-expression drops.
            if isinstance(stmt, ast.Expr) and stmt.value is node:
                report.at_node(
                    ctx,
                    node,
                    f"{name}(...) creates a resource and immediately "
                    f"drops the handle; nothing can ever close it",
                )
            return

        if isinstance(stmt, ast.Assign):
            names: Optional[List[str]] = []
            for target in stmt.targets:
                sub = _target_names(target)
                if sub is None:
                    names = None  # attribute/subscript store: escapes
                    break
                names.extend(sub)
        else:
            names = _target_names(stmt.target)
        if names is None:
            return
        if name.split(".")[-1] == "mkstemp" and len(names) == 2:
            names = names[:1]  # (fd, path): only the fd needs closing

        scope = self._enclosing_scope(ancestors, ctx)
        cfg = cfg_for_scope(ctx, scope)
        for bound in names:
            if not every_path_hits(
                cfg, stmt, lambda s: _releases_or_escapes(s, bound)
            ):
                report.at_node(
                    ctx,
                    node,
                    f"{name}(...) binds {bound!r} but some path to the "
                    f"end of {scope.qualname!r} neither releases it "
                    f"(.close()/os.close) nor hands it off; scope it "
                    f"with a with-block or try/finally",
                )

    @staticmethod
    def _enclosing_statement(
        ancestors: Sequence[ast.AST],
    ) -> Optional[ast.stmt]:
        for ancestor in reversed(ancestors):
            if isinstance(ancestor, ast.stmt):
                return ancestor
        return None

    @staticmethod
    def _enclosing_scope(
        ancestors: Sequence[ast.AST], ctx: FileContext
    ) -> Scope:
        for ancestor in reversed(ancestors):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return Scope(ancestor, ancestor.name, ())
            if isinstance(ancestor, ast.Lambda):
                break
        return Scope(ctx.tree, "<module>", ())
