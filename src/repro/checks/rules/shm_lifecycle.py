"""RB501 — shared-memory segments are closed on every path.

A :class:`~repro.sweep.shm.SharedPriceStack` owns a
``multiprocessing.shared_memory`` segment: if an exception escapes
between creation and ``close()``, the segment leaks until the resource
tracker (or a reboot) reaps it, and on failure paths the leak recurs on
every retry round.  Creation sites must therefore be lifetime-scoped:

* ``with SharedPriceStack(...) as stack: ...`` (the context manager
  closes *and unlinks*), or
* created inside a ``try:`` whose ``finally:`` closes it.

The same applies to raw ``shared_memory.SharedMemory(...)`` handles.
:mod:`repro.sweep.shm` itself is exempt — it implements the lifecycle
(including the deliberately cached worker-side attach,
:func:`~repro.sweep.shm.open_stack`, whose cache is bounded and torn
down by :func:`~repro.sweep.shm.close_stacks`).
"""

from __future__ import annotations

import ast
from typing import Sequence

from ..engine import FileContext, Reporter, Rule
from ._common import dotted_name, is_test_path, walk_contains

#: Constructor names owning a shared-memory segment.
_OWNING_CALLS = {"SharedPriceStack", "SharedMemory"}

OWNER_MODULE = "repro/sweep/shm.py"


def _called_name(node: ast.Call) -> str:
    name = dotted_name(node.func)
    if name is None:
        return ""
    return name.split(".")[-1]


def _is_guarded(node: ast.Call, ancestors: Sequence[ast.AST]) -> bool:
    for ancestor in reversed(ancestors):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if walk_contains(item.context_expr, node):
                    return True
        elif isinstance(ancestor, ast.Try) and ancestor.finalbody:
            if any(walk_contains(stmt, node) for stmt in ancestor.body):
                return True
    return False


class ShmLifecycleRule(Rule):
    rule_id = "RB501"
    name = "shm-lifecycle"
    description = (
        "SharedPriceStack / shared_memory.SharedMemory creation must be "
        "scoped by a with-block or a try/finally that closes it."
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return not is_test_path(ctx.rel) and not ctx.rel.endswith(OWNER_MODULE)

    def visit(
        self,
        node: ast.AST,
        ancestors: Sequence[ast.AST],
        ctx: FileContext,
        report: Reporter,
    ) -> None:
        assert isinstance(node, ast.Call)
        name = _called_name(node)
        if name not in _OWNING_CALLS:
            return
        if not _is_guarded(node, ancestors):
            report.at_node(
                ctx,
                node,
                f"{name}(...) creates a shared-memory segment outside a "
                f"with-block or try/finally; an exception here leaks the "
                f"segment",
            )
