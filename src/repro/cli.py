"""Command-line interface: ``repro-bid``.

Subcommands
-----------
``trace``      Generate a synthetic spot-price trace CSV for an instance
               type (equilibrium / renewal / correlated / provider).
``bid``        Compute the optimal bid for a job from a trace CSV.
``fit``        Fit the Section 4 model to a trace CSV (Figure 3).
``backtest``   Decide a bid on one trace and execute it on another.
``sweep``      Evaluate a grid of bids against future traces in one
               batched pass (the ``repro.sweep`` engine).
``experiment`` Run one of the paper's table/figure reproductions
               (or ``all`` to regenerate a full markdown report).
``describe``   Summarize a trace CSV (floor occupancy, episodes, tail).
``options``    Compare on-demand / one-time / persistent / spot-block.
``mapreduce``  Plan a master/slave cluster bid (eq. 20).
``chaos``      Stress a bid under injected market faults and report
               per-fault-class cost/completion degradation; with
               ``--kill-workers``, crash/stall the scheduler's worker
               pool instead and check results stay bitwise identical.
``bench``      Benchmark the sweep kernels (event vs reference vs
               compiled), emit a ``BENCH_*.json`` trajectory point, and
               gate regressions against a committed baseline.
``check``      Run the repo-aware static-analysis suite (``repro.checks``:
               determinism, kernel-oracle parity, numeric hygiene).
``catalog``    List the built-in instance types.

Examples
--------
::

    repro-bid trace r3.xlarge --days 60 --out history.csv
    repro-bid bid history.csv --hours 1 --recovery-seconds 30
    repro-bid fit history.csv
    repro-bid experiment table3
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

import numpy as np

from . import __version__
from .constants import seconds
from .core.client import BiddingClient
from .core.types import (
    CvarDecision,
    DecisionRequest,
    JobSpec,
    PortfolioDecision,
    Strategy,
)
from .errors import ReproError
from .provider.fitting import fit_both_families
from .traces import io as trace_io
from .traces.catalog import CATALOG, get_instance_type
from .traces.generator import (
    generate_correlated_history,
    generate_equilibrium_history,
    generate_provider_history,
    generate_renewal_history,
)

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "fig3", "fig4", "table3", "fig5", "fig6", "table4", "fig7", "prop12",
)

_FAULT_CLASSES = (
    "spike", "plateau", "dropout", "duplication", "storm", "truncation",
)


def _positive_float(text: str) -> float:
    """argparse type: a finite float strictly greater than zero."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not (value > 0 and math.isfinite(value)):
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text!r}"
        )
    return value


def _nonnegative_float(text: str) -> float:
    """argparse type: a finite float greater than or equal to zero."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not (value >= 0 and math.isfinite(value)):
        raise argparse.ArgumentTypeError(
            f"must be a non-negative number, got {text!r}"
        )
    return value


def _positive_int(text: str) -> int:
    """argparse type: an integer strictly greater than zero."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}"
        )
    return value


def _grid_shape(text: str) -> "tuple[int, int]":
    """argparse type: a bid-table grid shape like ``32x8``."""
    parts = text.lower().split("x")
    try:
        if len(parts) != 2:
            raise ValueError
        n_ts, n_tr = (int(p) for p in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must look like '32x8' (t_s points x t_r points), got {text!r}"
        ) from None
    if n_ts < 2 or n_tr < 1:
        raise argparse.ArgumentTypeError(
            f"needs at least 2x1 grid points, got {text!r}"
        )
    return n_ts, n_tr


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-bid`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bid",
        description="Spot-market bidding toolkit (SIGCOMM'15 'How to Bid "
        "the Cloud' reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="generate a synthetic price trace")
    p_trace.add_argument("instance_type", help="e.g. r3.xlarge")
    p_trace.add_argument("--days", type=_positive_float, default=60.0)
    p_trace.add_argument(
        "--model",
        choices=("equilibrium", "renewal", "correlated", "provider"),
        default="equilibrium",
    )
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", required=True, help="output CSV path")

    p_bid = sub.add_parser("bid", help="compute optimal bids from a trace")
    p_bid.add_argument("trace", help="price-history CSV")
    p_bid.add_argument("--hours", type=_positive_float, default=1.0, help="t_s")
    p_bid.add_argument(
        "--recovery-seconds", type=_nonnegative_float, default=30.0,
        help="t_r in seconds",
    )
    p_bid.add_argument(
        "--ondemand", type=float, default=None,
        help="on-demand price; defaults to the catalog entry for the "
        "trace's instance type",
    )
    p_bid.add_argument(
        "--strategy",
        choices=(
            "one-time", "persistent", "percentile", "portfolio", "cvar", "all",
        ),
        default="all",
        help="'all' runs the paper's three strategies; portfolio and "
        "cvar must be requested explicitly",
    )
    p_bid.add_argument("--percentile", type=float, default=90.0)
    p_bid.add_argument(
        "--max-variance", type=float, default=None,
        help="portfolio: cap on Var(paid price) in ($/h)^2",
    )
    p_bid.add_argument(
        "--cvar-alpha", type=float, default=0.95,
        help="cvar: tail level (CVaR averages the worst 1-alpha windows)",
    )

    p_fit = sub.add_parser("fit", help="fit the provider model to a trace")
    p_fit.add_argument("trace", help="price-history CSV")
    p_fit.add_argument("--ondemand", type=float, default=None)
    p_fit.add_argument("--bins", type=int, default=40)
    p_fit.add_argument("--jacobian", action="store_true",
                       help="use the exact change-of-variables density")

    p_back = sub.add_parser(
        "backtest", help="decide on one trace, execute on another"
    )
    p_back.add_argument("history", help="trace CSV used to compute the bid")
    p_back.add_argument("future", help="trace CSV the bid is executed on")
    p_back.add_argument("--hours", type=_positive_float, default=1.0)
    p_back.add_argument("--recovery-seconds", type=_nonnegative_float, default=30.0)
    p_back.add_argument("--ondemand", type=float, default=None)
    p_back.add_argument(
        "--strategy", choices=("one-time", "persistent", "percentile"),
        default="persistent",
    )
    p_back.add_argument("--start-slot", type=int, default=0)

    p_sweep = sub.add_parser(
        "sweep", help="evaluate a grid of bids against one or more future traces"
    )
    p_sweep.add_argument("history", help="trace CSV the bid grid is derived from")
    p_sweep.add_argument(
        "futures", nargs="+", help="trace CSV(s) the bids are executed on"
    )
    p_sweep.add_argument("--hours", type=_positive_float, default=1.0, help="t_s")
    p_sweep.add_argument("--recovery-seconds", type=_nonnegative_float, default=30.0)
    p_sweep.add_argument(
        "--strategy",
        choices=("one-time", "persistent", "portfolio", "cvar"),
        default="persistent",
        help="portfolio/cvar first select a bid from the history, then "
        "sweep the chosen price as a persistent request",
    )
    p_sweep.add_argument("--bids", type=_positive_int, default=16,
                         help="number of bid grid points")
    p_sweep.add_argument("--low", type=float, default=None,
                         help="lowest bid (default: history minimum)")
    p_sweep.add_argument("--high", type=float, default=None,
                         help="highest bid (default: history maximum)")
    p_sweep.add_argument("--start-slot", type=int, default=0)
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="fan traces out over this many workers")
    p_sweep.add_argument(
        "--ondemand", type=float, default=None,
        help="on-demand price for portfolio/cvar selection; defaults to "
        "the catalog entry for the history's instance type",
    )
    p_sweep.add_argument(
        "--max-variance", type=float, default=None,
        help="portfolio: cap on Var(paid price) in ($/h)^2",
    )
    p_sweep.add_argument(
        "--cvar-alpha", type=float, default=0.95,
        help="cvar: tail level (CVaR averages the worst 1-alpha windows)",
    )

    p_exp = sub.add_parser("experiment", help="run a paper reproduction")
    p_exp.add_argument("name", choices=_EXPERIMENTS + ("all",))
    p_exp.add_argument("--fast", action="store_true",
                       help="use the small/CI configuration")
    p_exp.add_argument("--out", default=None,
                       help="with 'all': write a markdown report here")

    p_desc = sub.add_parser("describe", help="summarize a trace CSV")
    p_desc.add_argument("trace", help="price-history CSV")

    p_opt = sub.add_parser(
        "options", help="compare all four purchasing options for a job"
    )
    p_opt.add_argument("trace", help="price-history CSV")
    p_opt.add_argument("--hours", type=_positive_float, default=1.0)
    p_opt.add_argument("--recovery-seconds", type=_nonnegative_float, default=30.0)
    p_opt.add_argument("--ondemand", type=float, default=None)

    p_mr = sub.add_parser("mapreduce", help="plan a MapReduce cluster bid")
    p_mr.add_argument("--master", default="m3.xlarge")
    p_mr.add_argument("--slave", default="c3.4xlarge")
    p_mr.add_argument("--hours", type=_positive_float, default=16.0,
                      help="total execution time t_s")
    p_mr.add_argument("--slaves", type=_positive_int, default=6, help="slave count M")
    p_mr.add_argument("--recovery-seconds", type=_nonnegative_float, default=30.0)
    p_mr.add_argument("--overhead-seconds", type=_nonnegative_float, default=60.0)
    p_mr.add_argument("--seed", type=int, default=0)

    p_chaos = sub.add_parser(
        "chaos", help="stress a bid under injected market faults"
    )
    p_chaos.add_argument(
        "trace", help="price-history CSV (split into history and future)"
    )
    p_chaos.add_argument("--hours", type=_positive_float, default=1.0, help="t_s")
    p_chaos.add_argument(
        "--recovery-seconds", type=_nonnegative_float, default=30.0
    )
    p_chaos.add_argument("--ondemand", type=float, default=None)
    p_chaos.add_argument(
        "--strategy", choices=("one-time", "persistent", "percentile"),
        default="persistent",
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--intensity", type=_positive_float, default=1.0,
        help="how hard each fault class hits (1.0 = default calibration)",
    )
    p_chaos.add_argument(
        "--split", type=_positive_float, default=0.67,
        help="fraction of the trace used as history; the rest is the "
        "future the bid is stressed on",
    )
    p_chaos.add_argument(
        "--classes", nargs="+", choices=_FAULT_CLASSES, default=None,
        help="fault classes to run (default: all)",
    )
    p_chaos.add_argument(
        "--starts", type=_positive_int, default=8,
        help="number of start slots sampled across the future",
    )
    p_chaos.add_argument(
        "--mapreduce", action="store_true",
        help="stress a §6.2 master+slaves plan (eq. 20) instead of a "
        "single-instance bid; --hours becomes the total cluster work",
    )
    p_chaos.add_argument(
        "--slave-trace", default=None, metavar="PATH",
        help="price-history CSV for the slave market (default: the "
        "master's trace); only with --mapreduce",
    )
    p_chaos.add_argument(
        "--slaves", type=_positive_int, default=6,
        help="slave count M for --mapreduce (default 6)",
    )
    p_chaos.add_argument(
        "--kill-workers", action="store_true",
        help="process-level chaos instead of market faults: run the "
        "sweep on the work-stealing pool while seeded faults kill, "
        "stall, and slow-start workers, then check the results are "
        "bitwise identical to the fault-free run",
    )
    p_chaos.add_argument(
        "--workers", type=_positive_int, default=2,
        help="pool size for --kill-workers (default 2)",
    )

    p_bench = sub.add_parser(
        "bench", help="benchmark the sweep kernels and gate regressions"
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="run only the small smoke cases (CI default)",
    )
    p_bench.add_argument(
        "--cases", nargs="+", default=None, metavar="NAME",
        help="explicit benchmark case names (overrides --quick)",
    )
    p_bench.add_argument(
        "--filter", default=None, metavar="GLOB", dest="filter_pattern",
        help="select cases by glob, e.g. 'mapreduce_*' (overrides "
        "--quick; mutually exclusive with --cases)",
    )
    p_bench.add_argument(
        "--repeats", type=_positive_int, default=None,
        help="timed repetitions per kernel (best-of; default 3, quick 5)",
    )
    p_bench.add_argument(
        "--kernel", default=None, metavar="MODE",
        help="contender lane: event, reference or compiled (default: "
        "REPRO_SWEEP_KERNEL)",
    )
    p_bench.add_argument(
        "--min-speedup", type=_positive_float, default=None,
        dest="min_speedup", metavar="FLOAT",
        help="fail unless every timed case reaches this speedup floor",
    )
    p_bench.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the BENCH_*.json report here",
    )
    p_bench.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare against this committed report and fail on regression",
    )
    p_bench.add_argument(
        "--tolerance", type=_positive_float, default=None,
        help="allowed fractional speedup drop vs baseline (default 0.2)",
    )
    p_bench.add_argument(
        "--list", action="store_true", dest="list_cases",
        help="list available cases and exit",
    )

    p_serve = sub.add_parser(
        "serve", help="run the live bid-decision daemon on a price trace"
    )
    p_serve.add_argument("trace", help="bootstrap price-history CSV")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default: REPRO_SERVE_PORT; 0 = ephemeral)",
    )
    p_serve.add_argument("--ondemand", type=float, default=None)
    p_serve.add_argument(
        "--grid", type=_grid_shape, default=None, metavar="NxM",
        help="bid-table grid shape (default: REPRO_SERVE_TABLE_GRID)",
    )
    p_serve.add_argument(
        "--source", choices=("iid", "replay"), default="iid",
        help="price feed after bootstrap: iid draws from the trace's "
        "distribution (endless), or replay of the trace remainder "
        "(exhaustion then exercises the degradation path)",
    )
    p_serve.add_argument(
        "--split", type=_positive_float, default=0.8,
        help="with --source replay: fraction of the trace used as the "
        "bootstrap window",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--rebuild-every", type=_positive_int, default=12,
        help="rebuild tables every N ingested slots",
    )
    p_serve.add_argument(
        "--stale-slots", type=_positive_int, default=None,
        help="table staleness TTL in ingested slots "
        "(default: REPRO_SERVE_STALE_SLOTS)",
    )
    p_serve.add_argument(
        "--cache-size", type=_positive_int, default=None,
        help="decision-cache capacity (default: REPRO_SERVE_CACHE_SIZE)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="enable the persistent file cache tier under this directory",
    )
    p_serve.add_argument(
        "--interval", type=_nonnegative_float, default=0.0,
        help="seconds between ingest pulls (0 = as fast as the source)",
    )
    p_serve.add_argument(
        "--max-slots", type=_positive_int, default=None,
        help="stop ingesting after this many slots (serving continues)",
    )
    p_serve.add_argument(
        "--smoke", type=_positive_int, default=None, metavar="N",
        help="smoke mode: boot on an ephemeral port, fire N loadgen "
        "requests in-process, print the report and exit",
    )
    p_serve.add_argument(
        "--smoke-connections", type=_positive_int, default=2,
        help="loadgen connections in smoke mode",
    )
    p_serve.add_argument(
        "--smoke-pipeline", type=_positive_int, default=8,
        help="requests in flight per connection in smoke mode",
    )
    p_serve.add_argument(
        "--p99-ms", type=_positive_float, default=50.0,
        help="smoke mode fails if p99 latency exceeds this bound",
    )
    p_serve.add_argument(
        "--hist-out", default=None, metavar="PATH",
        help="smoke mode: write the latency report JSON here",
    )

    p_load = sub.add_parser(
        "loadgen", help="fire a deterministic request stream at a daemon"
    )
    p_load.add_argument(
        "trace", help="price-history CSV fixing slot length and job grid"
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, required=True)
    p_load.add_argument(
        "-n", "--requests", type=_positive_int, default=1000, dest="requests"
    )
    p_load.add_argument("--connections", type=_positive_int, default=4)
    p_load.add_argument(
        "--pipeline", type=_positive_int, default=32,
        help="requests in flight per connection",
    )
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument(
        "--grid", type=_grid_shape, default=None, metavar="NxM",
        help="job grid the request mix is drawn from "
        "(default: REPRO_SERVE_TABLE_GRID)",
    )
    p_load.add_argument(
        "--on-grid-fraction", type=_nonnegative_float, default=0.5,
        help="fraction of requests landing exactly on grid points",
    )
    p_load.add_argument(
        "--hist-out", default=None, metavar="PATH",
        help="write the latency report JSON here",
    )

    p_check = sub.add_parser(
        "check",
        help="run the repo-aware static-analysis suite (repro.checks)",
    )
    from .checks.cli import add_arguments as _add_check_arguments

    _add_check_arguments(p_check)

    sub.add_parser("catalog", help="list built-in instance types")
    return parser


def _resolve_ondemand(explicit: Optional[float], instance_type: Optional[str]) -> float:
    if explicit is not None:
        if explicit <= 0:
            raise ReproError(f"--ondemand must be positive, got {explicit!r}")
        return explicit
    if instance_type is not None and instance_type in CATALOG:
        return CATALOG[instance_type].on_demand_price
    raise ReproError(
        "on-demand price unknown: pass --ondemand or use a trace whose "
        "instance type is in the catalog"
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    itype = get_instance_type(args.instance_type)
    rng = np.random.default_rng(args.seed)
    generators = {
        "equilibrium": generate_equilibrium_history,
        "renewal": generate_renewal_history,
        "correlated": generate_correlated_history,
        "provider": generate_provider_history,
    }
    history = generators[args.model](itype, days=args.days, rng=rng)
    trace_io.write_csv(history, args.out)
    print(
        f"wrote {history.n_slots} slots ({args.days:g} days) of {itype.name} "
        f"prices to {args.out}"
    )
    return 0


def _print_decision(label: str, decision) -> None:
    parts = [f"{label:12s} bid=${decision.price:.4f}/h"]
    parts.append(f"expected cost=${decision.expected_cost:.4f}")
    if decision.expected_completion_time is not None:
        parts.append(f"expected T={decision.expected_completion_time:.2f}h")
    if decision.acceptance_probability is not None:
        parts.append(f"F(p)={decision.acceptance_probability:.3f}")
    if isinstance(decision, PortfolioDecision):
        parts.append(f"spot fraction={decision.spot_fraction:.2f}")
        parts.append(f"Var(price)={decision.price_variance:.3e}")
    elif isinstance(decision, CvarDecision):
        parts.append(
            f"CVaR_{decision.alpha:g}=${decision.cvar:.4f} "
            f"({decision.n_windows} windows)"
        )
    print("  ".join(parts))


def _cmd_bid(args: argparse.Namespace) -> int:
    history = trace_io.read_csv(args.trace)
    ondemand = _resolve_ondemand(args.ondemand, history.instance_type)
    client = BiddingClient(history, ondemand_price=ondemand)
    job = JobSpec(
        execution_time=args.hours,
        recovery_time=seconds(args.recovery_seconds),
        slot_length=history.slot_length,
    )
    strategies = (
        # The paper's three; portfolio/cvar are opt-in extensions.
        (Strategy.ONE_TIME, Strategy.PERSISTENT, Strategy.PERCENTILE)
        if args.strategy == "all"
        else (Strategy(args.strategy),)
    )
    print(
        f"job: t_s={args.hours:g}h t_r={args.recovery_seconds:g}s  "
        f"on-demand=${ondemand:.4f}/h  history={history.n_slots} slots"
    )
    for strategy in strategies:
        response = client.decide(
            DecisionRequest(
                job=job,
                strategy=strategy,
                percentile=args.percentile,
                max_variance=args.max_variance,
                cvar_alpha=args.cvar_alpha,
            )
        )
        _print_decision(str(strategy), response.decision)
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    history = trace_io.read_csv(args.trace)
    ondemand = _resolve_ondemand(args.ondemand, history.instance_type)
    pareto, exponential = fit_both_families(
        history.prices, ondemand, bins=args.bins, jacobian=args.jacobian
    )
    print(
        f"pareto:      beta={pareto.beta:.4f} theta={pareto.theta:.3f} "
        f"alpha={pareto.alpha:.3f} floor_mass={pareto.floor_mass:.3f} "
        f"mse={pareto.mse_mass:.3e}"
    )
    print(
        f"exponential: beta={exponential.beta:.4f} theta={exponential.theta:.3f} "
        f"eta={exponential.eta:.3e} floor_mass={exponential.floor_mass:.3f} "
        f"mse={exponential.mse_mass:.3e}"
    )
    return 0


def _cmd_backtest(args: argparse.Namespace) -> int:
    history = trace_io.read_csv(args.history)
    future = trace_io.read_csv(args.future)
    ondemand = _resolve_ondemand(args.ondemand, history.instance_type)
    client = BiddingClient(history, ondemand_price=ondemand)
    job = JobSpec(
        execution_time=args.hours,
        recovery_time=seconds(args.recovery_seconds),
        slot_length=history.slot_length,
    )
    report = client.backtest(
        job, future, strategy=Strategy(args.strategy), start_slot=args.start_slot
    )
    _print_decision(args.strategy, report.decision)
    o = report.outcome
    status = "completed" if o.completed else f"NOT completed ({o.state})"
    time_str = f"{o.completion_time:.2f}h" if o.completion_time is not None else "n/a"
    print(
        f"outcome: {status}  cost=${o.cost:.4f}  T={time_str}  "
        f"interruptions={o.interruptions}  idle={o.idle_time:.2f}h"
    )
    print(
        f"vs on-demand ${client.ondemand_cost(job):.4f}: "
        f"savings {1 - o.cost / client.ondemand_cost(job):.1%}"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import run_sweep

    history = trace_io.read_csv(args.history)
    futures = [trace_io.read_csv(path) for path in args.futures]
    job = JobSpec(
        execution_time=args.hours,
        recovery_time=seconds(args.recovery_seconds),
        slot_length=history.slot_length,
    )
    strategy = Strategy(args.strategy)
    if strategy.sweepable:
        low = args.low if args.low is not None else float(history.prices.min())
        high = args.high if args.high is not None else float(history.prices.max())
        if not high >= low:
            raise ReproError(f"--high ({high:g}) must be >= --low ({low:g})")
        bids = np.linspace(low, high, args.bids)
    else:
        # Selection strategies pick one price from the history, which is
        # then scored on the futures as a persistent request.
        ondemand = _resolve_ondemand(args.ondemand, history.instance_type)
        client = BiddingClient(history, ondemand_price=ondemand)
        response = client.respond(
            DecisionRequest(
                job=job,
                strategy=strategy,
                max_variance=args.max_variance,
                cvar_alpha=args.cvar_alpha,
            )
        )
        _print_decision(str(strategy), response.decision)
        bids = np.asarray([response.decision.price])
        strategy = Strategy.PERSISTENT
    report = run_sweep(
        futures,
        bids,
        job,
        strategy=strategy,
        start_slots=args.start_slot,
        max_workers=args.workers,
    )
    print(
        f"sweep: {report.counters.n_traces} trace(s) x "
        f"{report.counters.n_bids} bids ({report.counters.cells} cells), "
        f"{report.counters.slots_simulated} slots in "
        f"{report.counters.kernel_seconds * 1e3:.1f} ms"
    )
    print(f"{'bid $/h':>9s} {'done':>6s} {'mean $':>9s} {'mean intr':>9s}")
    rates = report.completion_rate()
    for j, bid in enumerate(report.bids):
        print(
            f"{bid:9.4f} {rates[j]:6.2f} {report.mean_cost()[j]:9.4f} "
            f"{report.interruptions[:, j].mean():9.2f}"
        )
    best = report.best_bid_index()
    print(f"best bid: ${report.bids[best]:.4f}/h "
          f"(mean cost ${report.mean_cost()[best]:.4f}, "
          f"completion rate {rates[best]:.0%})")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from . import experiments

    modules = {
        "fig3": experiments.fig3_price_pdf,
        "fig4": experiments.fig4_job_timeline,
        "table3": experiments.table3_bid_prices,
        "fig5": experiments.fig5_onetime_costs,
        "fig6": experiments.fig6_persistent_vs_onetime,
        "table4": experiments.table4_mapreduce_plans,
        "fig7": experiments.fig7_mapreduce_costs,
        "prop12": experiments.queue_stability,
    }
    config = experiments.FAST_CONFIG if args.fast else experiments.FULL_CONFIG
    if args.name == "all":
        from .experiments.report import generate_report

        report = generate_report(config)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(report)
            print(f"wrote report to {args.out}")
        else:
            print(report)
        return 0
    result = modules[args.name].run(config)
    if hasattr(result, "table"):
        print(result.table())
    if args.name == "fig4":
        print(
            f"bid={result.bid_price:.4f} interruptions="
            f"{result.outcome.interruptions}"
        )
        print(result.ascii_timeline())
    return 0


def _cmd_mapreduce(args: argparse.Namespace) -> int:
    from .core.mapreduce import plan_master_slave
    from .core.types import MapReduceJobSpec
    from .mapreduce.runner import ondemand_baseline
    from .traces.generator import generate_equilibrium_history

    master_t = get_instance_type(args.master)
    slave_t = get_instance_type(args.slave)
    rng = np.random.default_rng(args.seed)
    master_hist = generate_equilibrium_history(master_t, days=60, rng=rng)
    slave_hist = generate_equilibrium_history(slave_t, days=60, rng=rng)
    job = MapReduceJobSpec(
        execution_time=args.hours,
        num_slaves=args.slaves,
        overhead_time=seconds(args.overhead_seconds),
        recovery_time=seconds(args.recovery_seconds),
    )
    plan = plan_master_slave(
        master_hist.to_distribution(), slave_hist.to_distribution(), job,
        master_ondemand=master_t.on_demand_price,
        slave_ondemand=slave_t.on_demand_price,
    )
    baseline = ondemand_baseline(
        job, master_t.on_demand_price, slave_t.on_demand_price
    )
    print(f"job: t_s={args.hours:g}h M={args.slaves} "
          f"t_r={args.recovery_seconds:g}s t_o={args.overhead_seconds:g}s")
    print(f"master ({master_t.name}):  one-time bid ${plan.master_bid.price:.4f}/h")
    print(f"slaves ({slave_t.name}): persistent bid ${plan.slave_bid.price:.4f}/h")
    print(f"minimum viable slaves (eq. 20): {plan.min_slaves}")
    print(f"expected spot cost:  ${plan.total_expected_cost:.3f}")
    print(f"on-demand baseline:  ${baseline.total_cost:.3f} "
          f"({1 - plan.total_expected_cost / baseline.total_cost:.1%} cheaper)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience import run_chaos

    trace = trace_io.read_csv(args.trace)
    ondemand = _resolve_ondemand(args.ondemand, trace.instance_type)
    if not args.split < 1.0:
        raise ReproError(
            f"--split must be below 1 to leave a future to stress, "
            f"got {args.split:g}"
        )
    if args.slave_trace is not None and not args.mapreduce:
        raise ReproError("--slave-trace requires --mapreduce")
    if args.kill_workers and args.mapreduce:
        raise ReproError("--kill-workers and --mapreduce are exclusive")
    split_slot = max(1, min(trace.n_slots - 1, int(trace.n_slots * args.split)))
    history = trace.slice_slots(0, split_slot)
    future = trace.slice_slots(split_slot, trace.n_slots)
    if args.mapreduce:
        return _chaos_mapreduce(args, trace, history, future, ondemand)
    job = JobSpec(
        execution_time=args.hours,
        recovery_time=seconds(args.recovery_seconds),
        slot_length=trace.slot_length,
    )
    if args.kill_workers:
        return _chaos_workers(args, history, future, job, ondemand)
    report = run_chaos(
        history,
        future,
        job,
        ondemand_price=ondemand,
        strategy=Strategy(args.strategy),
        seed=args.seed,
        intensity=args.intensity,
        n_starts=args.starts,
        classes=args.classes,
    )
    print(
        f"chaos: {len(report.results)} fault class(es) on "
        f"{future.n_slots} future slots (seed {args.seed}, "
        f"intensity {args.intensity:g})"
    )
    print(report.table())
    return 0


def _chaos_workers(args, history, future, job, ondemand):
    from .resilience import run_worker_chaos

    report = run_worker_chaos(
        history,
        future,
        job,
        ondemand_price=ondemand,
        strategy=Strategy(args.strategy),
        seed=args.seed,
        n_starts=args.starts,
        max_workers=args.workers,
    )
    print(report.table())
    return 0 if report.bitwise_identical else 1


def _chaos_mapreduce(args, master_trace, master_history, master_future, ondemand):
    from .core.mapreduce import plan_master_slave
    from .core.types import MapReduceJobSpec
    from .resilience import run_mapreduce_chaos

    if args.slave_trace is not None:
        slave_trace = trace_io.read_csv(args.slave_trace)
        if slave_trace.slot_length != master_trace.slot_length:
            raise ReproError(
                "--slave-trace must share the master trace's slot length"
            )
        slave_ondemand = _resolve_ondemand(
            args.ondemand, slave_trace.instance_type
        )
        split = max(
            1,
            min(
                slave_trace.n_slots - 1,
                int(slave_trace.n_slots * args.split),
            ),
        )
        slave_history = slave_trace.slice_slots(0, split)
        slave_future = slave_trace.slice_slots(split, slave_trace.n_slots)
    else:
        slave_ondemand = ondemand
        slave_history, slave_future = master_history, master_future

    job = MapReduceJobSpec(
        execution_time=args.hours,
        num_slaves=args.slaves,
        recovery_time=seconds(args.recovery_seconds),
        slot_length=master_trace.slot_length,
    )
    plan = plan_master_slave(
        master_history.to_distribution(),
        slave_history.to_distribution(),
        job,
        master_ondemand=ondemand,
        slave_ondemand=slave_ondemand,
    )
    report = run_mapreduce_chaos(
        plan,
        master_future,
        slave_future,
        reference_price=max(ondemand, slave_ondemand),
        seed=args.seed,
        intensity=args.intensity,
        n_starts=args.starts,
        classes=args.classes,
    )
    print(
        f"mapreduce chaos: {len(report.results)} fault class(es) on "
        f"{master_future.n_slots} future slots (seed {args.seed}, "
        f"intensity {args.intensity:g})"
    )
    print(report.table())
    return 0


def _cmd_options(args: argparse.Namespace) -> int:
    from .extensions.spot_blocks import compare_purchasing_options

    history = trace_io.read_csv(args.trace)
    ondemand = _resolve_ondemand(args.ondemand, history.instance_type)
    job = JobSpec(
        execution_time=args.hours,
        recovery_time=seconds(args.recovery_seconds),
        slot_length=history.slot_length,
    )
    options = compare_purchasing_options(
        history.to_distribution(), job, ondemand
    )
    print(f"job: t_s={args.hours:g}h t_r={args.recovery_seconds:g}s  "
          f"on-demand=${ondemand:.4f}/h")
    print(f"{'option':12s} {'price $/h':>10s} {'expected $':>11s} "
          f"{'T (h)':>7s} {'P(done)':>8s}")
    for option in options:
        print(
            f"{option.name:12s} {option.price:10.4f} "
            f"{option.expected_cost:11.4f} "
            f"{option.expected_completion_time:7.2f} "
            f"{option.completion_probability:8.2f}"
        )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .analysis.trace_stats import describe_history

    history = trace_io.read_csv(args.trace)
    label = history.instance_type or "unlabeled trace"
    print(f"{label} — {args.trace}")
    print(describe_history(history).render())
    return 0


def _cmd_catalog(_args: argparse.Namespace) -> int:
    print(f"{'type':12s} {'vCPU':>4s} {'mem GiB':>8s} {'on-demand':>10s} {'floor':>8s}")
    for name in sorted(CATALOG):
        it = CATALOG[name]
        print(
            f"{it.name:12s} {it.vcpus:4d} {it.memory_gib:8.1f} "
            f"{it.on_demand_price:10.4f} {it.market.pi_min:8.4f}"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .bench import (
        CASES,
        compare_reports,
        quick_case_names,
        run_benchmarks,
    )
    from .bench.compare import DEFAULT_TOLERANCE

    if args.list_cases:
        quick = set(quick_case_names())
        for case in CASES:
            tag = " (quick)" if case.name in quick else ""
            print(
                f"{case.name:20s} {case.label:10s} "
                f"{case.n_traces}x{case.n_slots}x{case.n_bids}{tag}"
            )
        return 0

    if args.cases and args.filter_pattern:
        raise ReproError("--cases and --filter are mutually exclusive")

    kernel = None
    if args.kernel is not None:
        from .constants import SWEEP_KERNEL, EnvVarError

        try:
            kernel = SWEEP_KERNEL.parse(args.kernel)
        except EnvVarError as exc:
            raise ReproError(str(exc)) from exc

    try:
        report = run_benchmarks(
            cases=args.cases,
            quick=args.quick,
            pattern=args.filter_pattern,
            repeats=args.repeats,
            kernel=kernel,
            progress=print,
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")

    broken = [row["name"] for row in report["cases"] if not row["bitwise_equal"]]
    if broken:
        print(
            f"error: event kernels diverged from reference on: "
            f"{', '.join(broken)}",
            file=sys.stderr,
        )
        return 1

    if args.min_speedup is not None:
        if not report["cases"]:
            print(
                "error: --min-speedup given but no case was timed "
                f"(skipped: {', '.join(report['skipped']) or 'none'})",
                file=sys.stderr,
            )
            return 1
        slow = [
            f"{row['name']} ({row['speedup']:.2f}x)"
            for row in report["cases"]
            if row["speedup"] < args.min_speedup
        ]
        if slow:
            print(
                f"error: speedup below the {args.min_speedup:g}x floor "
                f"on: {', '.join(slow)}",
                file=sys.stderr,
            )
            return 1
        print(f"all cases at or above the {args.min_speedup:g}x floor")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        try:
            regressions = compare_reports(
                report, baseline, tolerance=tolerance
            )
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
        if regressions:
            for regression in regressions:
                print(f"regression: {regression}", file=sys.stderr)
            return 1
        print(
            f"no regressions vs {args.baseline} "
            f"(tolerance {tolerance:.0%})"
        )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .checks.cli import run_check

    return run_check(args)


def _print_load_report(report, *, hist_out: Optional[str] = None) -> None:
    import json

    print(
        f"requests={report.n_requests} errors={report.errors} "
        f"qps={report.qps:.0f} p50={report.p50_ms:.3f}ms "
        f"p99={report.p99_ms:.3f}ms over {report.duration_s:.2f}s"
    )
    if hist_out:
        with open(hist_out, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {hist_out}")


def _build_serve_service(args: argparse.Namespace):
    """Shared setup of the serve command: market state + service."""
    from .core.distcache import cached_distribution
    from .market.price_sources import IIDPriceSource, TracePriceSource
    from .serve import BidService, DecisionCache, MarketState, default_grid

    history = trace_io.read_csv(args.trace)
    ondemand = _resolve_ondemand(args.ondemand, history.instance_type)
    if args.source == "replay":
        boot_slots = int(history.n_slots * min(args.split, 1.0))
        if not 2 <= boot_slots < history.n_slots:
            raise ReproError(
                f"--split {args.split!r} leaves no bootstrap window or no "
                f"future to replay in a {history.n_slots}-slot trace"
            )
        boot = history.slice_slots(0, boot_slots)
        source = TracePriceSource(history, start_slot=boot_slots)
    else:
        boot = history
        source = IIDPriceSource(
            cached_distribution(history), np.random.default_rng(args.seed)
        )
    grid = default_grid(shape=args.grid, slot_length=boot.slot_length)
    state = MarketState(
        source,
        initial_history=boot,
        ondemand_price=ondemand,
        grid=grid,
        rebuild_every=args.rebuild_every,
    )
    cache = DecisionCache(capacity=args.cache_size, directory=args.cache_dir)
    service = BidService(state, cache=cache, stale_after=args.stale_slots)
    return service, state, grid


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .constants import SERVE_PORT
    from .serve import IngestLoop, build_requests, run_loadgen, start_server

    service, state, grid = _build_serve_service(args)

    if args.smoke is not None:

        async def _smoke() -> int:
            server = await start_server(service, host=args.host, port=0)
            port = server.sockets[0].getsockname()[1]
            requests = build_requests(
                args.smoke,
                grid=grid,
                slot_length=state.history().slot_length,
                rng=np.random.default_rng(args.seed),
            )
            # Warm the tables/cache path before the measured run.
            warm = requests[: min(len(requests), 100)]
            await run_loadgen(
                args.host, port, warm,
                connections=1, pipeline=args.smoke_pipeline,
            )
            report = await run_loadgen(
                args.host, port, requests,
                connections=args.smoke_connections,
                pipeline=args.smoke_pipeline,
            )
            server.close()
            await server.wait_closed()
            _print_load_report(report, hist_out=args.hist_out)
            if report.errors:
                print(f"error: {report.errors} failed requests", file=sys.stderr)
                return 1
            if report.p99_ms > args.p99_ms:
                print(
                    f"error: p99 {report.p99_ms:.3f}ms exceeds the "
                    f"{args.p99_ms:g}ms bound",
                    file=sys.stderr,
                )
                return 1
            return 0

        return asyncio.run(_smoke())

    port = args.port if args.port is not None else SERVE_PORT.get()

    async def _run() -> None:
        server = await start_server(
            service,
            host=args.host,
            port=port,
            ingest=IngestLoop(state, interval=args.interval),
            max_ingest_slots=args.max_slots,
        )
        bound = server.sockets[0].getsockname()[1]
        print(
            f"serving {state.instance_type or 'trace'} on "
            f"{args.host}:{bound}  table={state.tables.version}  "
            f"grid={grid.shape[0]}x{grid.shape[1]}"
        )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import build_requests, default_grid, run_loadgen

    history = trace_io.read_csv(args.trace)
    grid = default_grid(shape=args.grid, slot_length=history.slot_length)
    on_grid = args.on_grid_fraction
    if on_grid > 1.0:
        raise ReproError(
            f"--on-grid-fraction must be within [0, 1], got {on_grid!r}"
        )
    requests = build_requests(
        args.requests,
        grid=grid,
        slot_length=history.slot_length,
        rng=np.random.default_rng(args.seed),
        on_grid_fraction=on_grid,
    )
    report = asyncio.run(
        run_loadgen(
            args.host,
            args.port,
            requests,
            connections=args.connections,
            pipeline=args.pipeline,
        )
    )
    _print_load_report(report, hist_out=args.hist_out)
    return 1 if report.errors else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "trace": _cmd_trace,
        "bid": _cmd_bid,
        "fit": _cmd_fit,
        "backtest": _cmd_backtest,
        "sweep": _cmd_sweep,
        "experiment": _cmd_experiment,
        "describe": _cmd_describe,
        "options": _cmd_options,
        "mapreduce": _cmd_mapreduce,
        "chaos": _cmd_chaos,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "check": _cmd_check,
        "catalog": _cmd_catalog,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
