"""Shared numeric constants and the ``REPRO_*`` environment registry.

All prices in this library are expressed in dollars per instance-hour and
all durations in hours, matching the units used throughout the paper
(Section 5, Table 1).

Behaviour switches read from the process environment are declared here,
once, as :class:`EnvVar` entries in :data:`ENV_VARS`.  Everything else in
the package goes through these entries (``SWEEP_KERNEL.get()``) instead
of touching ``os.environ`` directly — the ``repro.checks`` rule ``RB301``
enforces this, and the registry is the source of truth for the variable
table in ``docs/development.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Generic, Mapping, Tuple, TypeVar

from .errors import ReproError

#: Length of one spot-market time slot in hours.  Amazon updates the spot
#: price roughly every five minutes (Section 3.2).
DEFAULT_SLOT_HOURS: float = 5.0 / 60.0

#: Number of time slots in one day at the default slot length.
SLOTS_PER_DAY: int = round(24.0 / DEFAULT_SLOT_HOURS)

#: Length of the spot-price history window Amazon exposes, in days
#: (Section 1.2: "the two-month history made available by Amazon").
HISTORY_WINDOW_DAYS: int = 60

#: Seconds per hour, for converting the paper's second-denominated recovery
#: times (t_r = 10s, 30s) and overheads (t_o = 60s) into hours.
SECONDS_PER_HOUR: float = 3600.0

#: Absolute tolerance used when comparing prices ($/hour).
PRICE_ATOL: float = 1e-9

#: Absolute tolerance used when comparing durations (hours).
TIME_ATOL: float = 1e-9

#: Relative tolerance for generic floating-point comparisons.
RTOL: float = 1e-9


def seconds(value: float) -> float:
    """Convert a duration in seconds to hours.

    Convenience helper for expressing the paper's parameters, e.g.
    ``JobSpec(execution_time=1.0, recovery_time=seconds(30))``.
    """
    if value < 0:
        raise ValueError(f"duration must be non-negative, got {value!r}")
    return value / SECONDS_PER_HOUR


def minutes(value: float) -> float:
    """Convert a duration in minutes to hours."""
    if value < 0:
        raise ValueError(f"duration must be non-negative, got {value!r}")
    return value / 60.0


class EnvVarError(ReproError, ValueError):
    """A ``REPRO_*`` environment variable holds an invalid value.

    Subclasses :class:`ValueError` so legacy callers that validated the
    raw strings themselves keep their exception contracts.
    """


_T = TypeVar("_T")


@dataclass(frozen=True)
class EnvVar(Generic[_T]):
    """One registered ``REPRO_*`` environment variable.

    ``parse`` receives the stripped raw string (never empty — an unset
    or blank variable yields ``default``) and either returns the parsed
    value or raises :class:`EnvVarError` with a message naming the
    variable.  ``get`` re-reads the environment on every call so the
    switches also work when set after import (e.g. in spawned pool
    workers inheriting the parent's environment).
    """

    name: str
    default: _T
    parse: Callable[[str], _T]
    description: str
    #: Human-readable value domain, shown in docs and error messages.
    values: str = ""

    def get(self) -> _T:
        raw = os.environ.get(self.name, "").strip()
        if not raw:
            return self.default
        return self.parse(raw)


#: Kernel families accepted by :data:`SWEEP_KERNEL`.
SWEEP_KERNEL_MODES: Tuple[str, ...] = ("event", "reference", "compiled")


def _parse_sweep_kernel(raw: str) -> str:
    mode = raw.lower()
    if mode in SWEEP_KERNEL_MODES:
        return mode
    allowed = ", ".join(repr(m) for m in SWEEP_KERNEL_MODES)
    raise EnvVarError(
        f"REPRO_SWEEP_KERNEL must be one of {allowed}, got {raw!r}"
    )


def _parse_dist_cache_size(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise EnvVarError(
            f"REPRO_DIST_CACHE_SIZE must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise EnvVarError(
            f"REPRO_DIST_CACHE_SIZE must be a positive integer, got {raw!r}"
        )
    return value


#: Kernel-family switch shared by the sweep engine and the MapReduce
#: plan grid: ``event`` (default) runs the event-driven kernels,
#: ``reference`` the dense/scalar oracle paths, ``compiled`` the
#: numba-JIT tier (falls back to ``event`` when numba is unavailable).
SWEEP_KERNEL: "EnvVar[str]" = EnvVar(
    name="REPRO_SWEEP_KERNEL",
    default="event",
    parse=_parse_sweep_kernel,
    description="Kernel family used by repro.sweep and repro.mapreduce "
    "grids: the event-driven kernels, the dense/scalar oracle path, or "
    "the numba-compiled tier (requires the [compiled] extra; degrades "
    "to the event kernels with a one-time warning otherwise).",
    values="event (default) | reference | compiled",
)

#: Bound on the process-local memoized-distribution cache
#: (:mod:`repro.core.distcache`).
DIST_CACHE_SIZE: "EnvVar[int]" = EnvVar(
    name="REPRO_DIST_CACHE_SIZE",
    default=64,
    parse=_parse_dist_cache_size,
    description="Maximum number of distinct price histories kept alive "
    "by the distribution cache in repro.core.distcache.",
    values="positive integer (default 64)",
)

def _parse_serve_port(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise EnvVarError(
            f"REPRO_SERVE_PORT must be an integer in [0, 65535], got {raw!r}"
        ) from None
    if not 0 <= value <= 65535:
        raise EnvVarError(
            f"REPRO_SERVE_PORT must be an integer in [0, 65535], got {raw!r}"
        )
    return value


def _parse_serve_grid(raw: str) -> Tuple[int, int]:
    parts = raw.lower().split("x")
    try:
        if len(parts) != 2:
            raise ValueError
        n_ts, n_tr = (int(p) for p in parts)
    except ValueError:
        raise EnvVarError(
            f"REPRO_SERVE_TABLE_GRID must look like '32x8' "
            f"(execution-time points x recovery-time points), got {raw!r}"
        ) from None
    if n_ts < 2 or n_tr < 1:
        raise EnvVarError(
            f"REPRO_SERVE_TABLE_GRID needs at least 2 execution-time and "
            f"1 recovery-time points, got {raw!r}"
        )
    return n_ts, n_tr


def _parse_positive_int(name: str, raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise EnvVarError(
            f"{name} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise EnvVarError(f"{name} must be a positive integer, got {raw!r}")
    return value


#: Default TCP port of the ``repro-bid serve`` daemon.
SERVE_PORT: "EnvVar[int]" = EnvVar(
    name="REPRO_SERVE_PORT",
    default=7787,
    parse=_parse_serve_port,
    description="Default TCP port the repro.serve daemon listens on "
    "(0 picks an ephemeral port).",
    values="integer in [0, 65535] (default 7787)",
)

#: Bid-table resolution used by :mod:`repro.serve.tables`.
SERVE_TABLE_GRID: "EnvVar[Tuple[int, int]]" = EnvVar(
    name="REPRO_SERVE_TABLE_GRID",
    default=(32, 8),
    parse=_parse_serve_grid,
    description="Bid-table grid resolution for repro.serve, as "
    "execution-time x recovery-time bucket counts.",
    values="'<n_ts>x<n_tr>' with n_ts >= 2, n_tr >= 1 (default 32x8)",
)

#: Capacity of the in-process decision LRU in :mod:`repro.serve.cache`.
SERVE_CACHE_SIZE: "EnvVar[int]" = EnvVar(
    name="REPRO_SERVE_CACHE_SIZE",
    default=4096,
    parse=lambda raw: _parse_positive_int("REPRO_SERVE_CACHE_SIZE", raw),
    description="Maximum number of decision responses kept in the "
    "serving layer's in-process LRU cache.",
    values="positive integer (default 4096)",
)

#: Staleness TTL of served bid tables, in ingest slots.
SERVE_STALE_SLOTS: "EnvVar[int]" = EnvVar(
    name="REPRO_SERVE_STALE_SLOTS",
    default=SLOTS_PER_DAY,
    parse=lambda raw: _parse_positive_int("REPRO_SERVE_STALE_SLOTS", raw),
    description="Number of ingested market slots after which a bid table "
    "counts as stale and the service degrades to the on-demand fallback.",
    values=f"positive integer (default {SLOTS_PER_DAY}, one day of slots)",
)

def _parse_positive_float(name: str, raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise EnvVarError(
            f"{name} must be a positive number, got {raw!r}"
        ) from None
    if not value > 0:
        raise EnvVarError(f"{name} must be a positive number, got {raw!r}")
    return value


#: Straggler deadline multiplier of the work-stealing scheduler
#: (:mod:`repro.scheduler`): a running shard older than ``factor`` times
#: the median completed-shard duration gets a speculative second copy.
SCHED_STRAGGLER_FACTOR: "EnvVar[float]" = EnvVar(
    name="REPRO_SCHED_STRAGGLER_FACTOR",
    default=3.0,
    parse=lambda raw: _parse_positive_float("REPRO_SCHED_STRAGGLER_FACTOR", raw),
    description="Multiple of the median completed-shard duration after "
    "which the scheduler speculatively re-dispatches a running shard.",
    values="positive number (default 3.0)",
)

#: Floor of the straggler deadline in seconds, so tiny shards do not
#: trigger speculation on scheduler noise alone.
SCHED_STRAGGLER_MIN_SECONDS: "EnvVar[float]" = EnvVar(
    name="REPRO_SCHED_STRAGGLER_MIN_SECONDS",
    default=1.0,
    parse=lambda raw: _parse_positive_float(
        "REPRO_SCHED_STRAGGLER_MIN_SECONDS", raw
    ),
    description="Lower bound on the scheduler's straggler deadline; no "
    "shard is speculatively re-dispatched before this many seconds.",
    values="positive number of seconds (default 1.0)",
)

#: Interval between scheduler-worker heartbeats, in seconds.
SCHED_HEARTBEAT_SECONDS: "EnvVar[float]" = EnvVar(
    name="REPRO_SCHED_HEARTBEAT_SECONDS",
    default=0.5,
    parse=lambda raw: _parse_positive_float(
        "REPRO_SCHED_HEARTBEAT_SECONDS", raw
    ),
    description="Seconds between heartbeat messages from scheduler "
    "workers to the coordinator.",
    values="positive number of seconds (default 0.5)",
)

#: Distinct-worker failures after which a shard is quarantined as poison.
SCHED_MAX_SHARD_FAILURES: "EnvVar[int]" = EnvVar(
    name="REPRO_SCHED_MAX_SHARD_FAILURES",
    default=3,
    parse=lambda raw: _parse_positive_int("REPRO_SCHED_MAX_SHARD_FAILURES", raw),
    description="Number of distinct-worker failures after which the "
    "scheduler quarantines a shard as poison instead of re-queuing it.",
    values="positive integer (default 3)",
)

#: Resolution of the on-demand/spot split grid scanned by the portfolio
#: strategy (:mod:`repro.extensions.portfolio`).
PORTFOLIO_GRID: "EnvVar[int]" = EnvVar(
    name="REPRO_PORTFOLIO_GRID",
    default=33,
    parse=lambda raw: _parse_positive_int("REPRO_PORTFOLIO_GRID", raw),
    description="Number of on-demand fraction grid points scanned by the "
    "portfolio bid optimizer in repro.extensions.portfolio.",
    values="positive integer (default 33)",
)

def _parse_bool_flag(name: str, raw: str) -> bool:
    value = raw.lower()
    if value in ("1", "true", "on", "yes"):
        return True
    if value in ("0", "false", "off", "no"):
        return False
    raise EnvVarError(
        f"{name} must be a boolean flag (0/1/true/false/on/off), got {raw!r}"
    )


#: Switch for the incremental result cache of ``repro-bid check``.
CHECK_CACHE: "EnvVar[bool]" = EnvVar(
    name="REPRO_CHECK_CACHE",
    default=True,
    parse=lambda raw: _parse_bool_flag("REPRO_CHECK_CACHE", raw),
    description="Enable the incremental result cache of repro-bid check "
    "(per-file findings keyed by content hash and rule-pack version, "
    "stored under .repro-check-cache/ at the repo root); 0 disables all "
    "cache reads and writes.",
    values="boolean flag (default 1)",
)

#: Number of historical windows the CVaR bid selector scores each
#: candidate bid on (:mod:`repro.extensions.portfolio`).
CVAR_WINDOWS: "EnvVar[int]" = EnvVar(
    name="REPRO_CVAR_WINDOWS",
    default=16,
    parse=lambda raw: _parse_positive_int("REPRO_CVAR_WINDOWS", raw),
    description="Number of rolling historical windows the CVaR bid "
    "selector sweeps each candidate bid across.",
    values="positive integer (default 16)",
)

#: Every environment variable the package reads, keyed by name.  New
#: ``REPRO_*`` switches must be added here (rule ``RB301``) and to the
#: table in ``docs/development.md``.
ENV_VARS: Mapping[str, "EnvVar[object]"] = {
    var.name: var
    for var in (
        SWEEP_KERNEL,
        DIST_CACHE_SIZE,
        SERVE_PORT,
        SERVE_TABLE_GRID,
        SERVE_CACHE_SIZE,
        SERVE_STALE_SLOTS,
        SCHED_STRAGGLER_FACTOR,
        SCHED_STRAGGLER_MIN_SECONDS,
        SCHED_HEARTBEAT_SECONDS,
        SCHED_MAX_SHARD_FAILURES,
        PORTFOLIO_GRID,
        CVAR_WINDOWS,
        CHECK_CACHE,
    )
}


def env_var(name: str) -> "EnvVar[object]":
    """Look up a registered variable by name.

    Raises :class:`EnvVarError` for unregistered names so typos fail
    loudly rather than silently reading an empty environment slot.
    """
    try:
        return ENV_VARS[name]
    except KeyError:
        raise EnvVarError(
            f"{name!r} is not a registered REPRO_* environment variable; "
            f"known: {', '.join(sorted(ENV_VARS))}"
        ) from None
