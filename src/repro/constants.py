"""Shared numeric constants for the spot-bidding reproduction.

All prices in this library are expressed in dollars per instance-hour and
all durations in hours, matching the units used throughout the paper
(Section 5, Table 1).
"""

#: Length of one spot-market time slot in hours.  Amazon updates the spot
#: price roughly every five minutes (Section 3.2).
DEFAULT_SLOT_HOURS: float = 5.0 / 60.0

#: Number of time slots in one day at the default slot length.
SLOTS_PER_DAY: int = round(24.0 / DEFAULT_SLOT_HOURS)

#: Length of the spot-price history window Amazon exposes, in days
#: (Section 1.2: "the two-month history made available by Amazon").
HISTORY_WINDOW_DAYS: int = 60

#: Seconds per hour, for converting the paper's second-denominated recovery
#: times (t_r = 10s, 30s) and overheads (t_o = 60s) into hours.
SECONDS_PER_HOUR: float = 3600.0

#: Absolute tolerance used when comparing prices ($/hour).
PRICE_ATOL: float = 1e-9

#: Absolute tolerance used when comparing durations (hours).
TIME_ATOL: float = 1e-9

#: Relative tolerance for generic floating-point comparisons.
RTOL: float = 1e-9


def seconds(value: float) -> float:
    """Convert a duration in seconds to hours.

    Convenience helper for expressing the paper's parameters, e.g.
    ``JobSpec(execution_time=1.0, recovery_time=seconds(30))``.
    """
    if value < 0:
        raise ValueError(f"duration must be non-negative, got {value!r}")
    return value / SECONDS_PER_HOUR


def minutes(value: float) -> float:
    """Convert a duration in minutes to hours."""
    if value < 0:
        raise ValueError(f"duration must be non-negative, got {value!r}")
    return value / 60.0
