"""The paper's primary contribution: optimal spot-bidding strategies.

Public surface:

* :class:`~repro.core.types.JobSpec` and friends — job descriptions.
* :class:`~repro.core.distributions.EmpiricalPriceDistribution` — the
  price model a client builds from history.
* :func:`~repro.core.onetime.optimal_onetime_bid` — Prop. 4.
* :func:`~repro.core.persistent.optimal_persistent_bid` — Prop. 5.
* :func:`~repro.core.mapreduce.plan_master_slave` — Section 6.
* :class:`~repro.core.client.BiddingClient` — Figure 1's client loop.
"""

from .adaptive import AdaptiveBiddingClient, AdaptiveRunResult
from .client import BiddingClient, BidRunReport
from .fleet import (
    FleetAllocation,
    FleetOption,
    FleetPlan,
    FleetRunResult,
    plan_fleet,
    rank_fleet_options,
    run_fleet,
)
from .distributions import (
    EmpiricalPriceDistribution,
    PriceDistribution,
    TruncatedExponentialPriceDistribution,
    UniformPriceDistribution,
)
from .heuristics import percentile_bid, retrospective_best_price
from .mapreduce import (
    optimal_parallel_bid,
    plan_master_slave,
    plan_with_optimal_slaves,
)
from .onetime import optimal_onetime_bid
from .persistent import optimal_persistent_bid
from .distcache import (
    cached_distribution,
    clear_distribution_cache,
    distribution_cache_stats,
)
from .types import (
    BidDecision,
    DecisionRequest,
    DecisionResponse,
    DegradedDecision,
    BidKind,
    CompletionStats,
    CostBreakdown,
    JobSpec,
    MapReduceJobSpec,
    MapReducePlan,
    ParallelJobSpec,
    Strategy,
    normalize_strategy,
)

__all__ = [
    "AdaptiveBiddingClient",
    "AdaptiveRunResult",
    "BiddingClient",
    "BidRunReport",
    "FleetAllocation",
    "FleetOption",
    "FleetPlan",
    "FleetRunResult",
    "plan_fleet",
    "rank_fleet_options",
    "run_fleet",
    "EmpiricalPriceDistribution",
    "PriceDistribution",
    "TruncatedExponentialPriceDistribution",
    "UniformPriceDistribution",
    "percentile_bid",
    "retrospective_best_price",
    "optimal_parallel_bid",
    "plan_master_slave",
    "plan_with_optimal_slaves",
    "optimal_onetime_bid",
    "optimal_persistent_bid",
    "cached_distribution",
    "clear_distribution_cache",
    "distribution_cache_stats",
    "BidDecision",
    "DecisionRequest",
    "DecisionResponse",
    "DegradedDecision",
    "BidKind",
    "CompletionStats",
    "CostBreakdown",
    "JobSpec",
    "MapReduceJobSpec",
    "MapReducePlan",
    "ParallelJobSpec",
    "Strategy",
    "normalize_strategy",
]
