"""Adaptive re-bidding under non-stationary prices.

The paper's strategies compute one bid from a stationary distribution;
Section 8 concedes real markets drift.  A real client keeps watching the
price feed (Figure 1's price monitor) and can react: EC2 persistent bids
could not be *modified*, but cancelling and resubmitting at a new price
— with progress preserved on the checkpoint volume — achieves the same.

:class:`AdaptiveBiddingClient` implements that loop: every
``rebid_interval`` slots it refits the empirical distribution over a
rolling window (seed history plus everything observed since) and, if the
newly optimal bid differs materially from the standing one, cancels and
resubmits the request for the remaining work.  The regime-shift ablation
shows why this matters: a static bid computed before a price-floor shift
can be out-bid forever, while the adaptive client recovers within a
window's worth of observations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import InfeasibleBidError, MarketError
from ..market.price_sources import TracePriceSource
from ..market.requests import RequestState
from ..market.simulator import SpotMarket
from ..traces.history import SpotPriceHistory
from .distributions import EmpiricalPriceDistribution
from .persistent import optimal_persistent_bid
from .types import BidKind, JobSpec

__all__ = ["AdaptiveRunResult", "AdaptiveBiddingClient"]


@dataclass(frozen=True)
class AdaptiveRunResult:
    """Outcome of one adaptive run."""

    completed: bool
    total_cost: float
    completion_time: float
    interruptions: int
    #: Bids placed over the run, in order (length-1 means never re-bid).
    bids: List[float]

    @property
    def rebids(self) -> int:
        return max(0, len(self.bids) - 1)


class AdaptiveBiddingClient:
    """Persistent bidding with periodic re-estimation and re-bidding.

    Parameters
    ----------
    window_hours:
        Length of the rolling price window the distribution is fit to.
        Shorter windows adapt faster but estimate quantiles worse.
    rebid_interval_slots:
        How often (in slots) to re-optimize while the job is unfinished.
    rebid_threshold:
        Relative bid change below which the standing request is kept —
        cancelling and resubmitting loses queue position for nothing.
    """

    def __init__(
        self,
        *,
        window_hours: float = 240.0,
        rebid_interval_slots: int = 36,
        rebid_threshold: float = 0.02,
    ):
        if window_hours <= 0:
            raise ValueError(f"window_hours must be positive, got {window_hours!r}")
        if rebid_interval_slots < 1:
            raise ValueError(
                f"rebid_interval_slots must be >= 1, got {rebid_interval_slots!r}"
            )
        if rebid_threshold < 0:
            raise ValueError(
                f"rebid_threshold must be >= 0, got {rebid_threshold!r}"
            )
        self.window_hours = float(window_hours)
        self.rebid_interval_slots = int(rebid_interval_slots)
        self.rebid_threshold = float(rebid_threshold)

    def _fit_bid(
        self, prices: np.ndarray, job: JobSpec
    ) -> Optional[float]:
        window_slots = int(round(self.window_hours / job.slot_length))
        window = prices[-window_slots:]
        dist = EmpiricalPriceDistribution(window)
        try:
            return optimal_persistent_bid(dist, job).price
        except InfeasibleBidError:
            return None

    def run(
        self,
        job: JobSpec,
        history: SpotPriceHistory,
        future: SpotPriceHistory,
        *,
        start_slot: int = 0,
        adaptive: bool = True,
    ) -> AdaptiveRunResult:
        """Run the job over ``future`` with (or without) re-bidding.

        ``adaptive=False`` freezes the initial bid — the static baseline
        the ablation compares against.
        """
        if future.slot_length != job.slot_length:
            raise MarketError(
                "future trace slot length must match the job's slot length"
            )
        observed = list(history.prices)
        initial_bid = self._fit_bid(np.asarray(observed), job)
        if initial_bid is None:
            raise InfeasibleBidError("no feasible initial bid from the history")

        market = SpotMarket(
            TracePriceSource(future, start_slot=start_slot),
            slot_length=job.slot_length,
        )
        bids = [initial_bid]
        rid = market.submit(
            bid_price=initial_bid,
            work=job.execution_time,
            kind=BidKind.PERSISTENT,
            recovery_time=job.recovery_time,
        )
        request_ids = [rid]
        current_work = job.execution_time
        budget = future.n_slots - start_slot

        for step in range(budget):
            price = market.step()
            observed.append(price)
            state = market.request_state(rid)
            if state is RequestState.COMPLETED:
                break
            if (
                adaptive
                and (step + 1) % self.rebid_interval_slots == 0
                and not state.is_terminal
            ):
                new_bid = self._fit_bid(np.asarray(observed), job)
                if new_bid is None:
                    continue
                if abs(new_bid - bids[-1]) <= self.rebid_threshold * bids[-1]:
                    continue
                # Cancel-and-resubmit with the remaining work: progress
                # persists on the checkpoint volume, one recovery is paid
                # on the relaunch.
                outcome = market.outcome(rid)
                useful = outcome.running_time - outcome.recovery_time_used
                remaining = max(current_work - useful, job.slot_length * 0.01)
                market.cancel(rid)
                rid = market.submit(
                    bid_price=new_bid,
                    work=remaining,
                    kind=BidKind.PERSISTENT,
                    recovery_time=job.recovery_time,
                )
                current_work = remaining
                request_ids.append(rid)
                bids.append(new_bid)

        outcomes = [market.outcome(r) for r in request_ids]
        last = outcomes[-1]
        completed = last.state is RequestState.COMPLETED
        completion = (
            last.submitted_slot * job.slot_length + (last.completion_time or 0.0)
            if completed
            else math.nan
        )
        return AdaptiveRunResult(
            completed=completed,
            total_cost=sum(o.cost for o in outcomes),
            completion_time=completion,
            interruptions=sum(o.interruptions for o in outcomes),
            bids=bids,
        )
