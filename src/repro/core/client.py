"""The user-side bidding client (Figure 1).

The client wires together the paper's architecture: a *price monitor*
(the historical price distribution), the *bid calculator* (Sections 5–6),
and a *job monitor* (executing the bid against the market and watching
for interruptions).  In the paper the market is live EC2; here it is the
:mod:`repro.market` simulator replaying a held-out future trace — the
standard backtest protocol used by every Section 7 experiment.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Optional, Union

from ..errors import InfeasibleBidError, MarketError
from ..market.price_sources import TracePriceSource
from ..market.simulator import JobOutcome, SpotMarket
from ..traces.history import SpotPriceHistory
from .distcache import cached_distribution
from .distributions import EmpiricalPriceDistribution
from .heuristics import percentile_bid
from .onetime import optimal_onetime_bid
from .persistent import optimal_persistent_bid
from .types import (
    BidDecision,
    BidKind,
    DecisionRequest,
    DecisionResponse,
    DegradedDecision,
    JobSpec,
    Strategy,
)

__all__ = ["BidRunReport", "BiddingClient"]

_KWARGS_DEPRECATION = (
    "passing a JobSpec with keyword arguments to BiddingClient.decide is "
    "deprecated; wrap the job in a repro.core.types.DecisionRequest "
    "(decide(DecisionRequest(job=job, strategy=...)) returns a "
    "DecisionResponse)"
)


@dataclass(frozen=True)
class BidRunReport:
    """A bid decision paired with its realized outcome."""

    decision: BidDecision
    outcome: JobOutcome

    @property
    def cost_prediction_error(self) -> float:
        """Realized minus predicted cost, in dollars."""
        return self.outcome.cost - self.decision.expected_cost


class BiddingClient:
    """Computes bids from history and runs them against future prices.

    Parameters
    ----------
    history:
        The observed spot-price history (Amazon exposed two months).
    ondemand_price:
        ``π̄`` for the instance type, used for feasibility ceilings.
    """

    def __init__(self, history: SpotPriceHistory, *, ondemand_price: float):
        if ondemand_price <= 0:
            raise ValueError(
                f"ondemand_price must be positive, got {ondemand_price!r}"
            )
        self.history = history
        self.ondemand_price = float(ondemand_price)
        self.distribution: EmpiricalPriceDistribution = cached_distribution(history)

    # -- bid calculation (Figure 1's "bid calculator") --------------------
    def decide(
        self,
        request: Union[DecisionRequest, JobSpec],
        *,
        strategy: "Strategy | str | None" = None,
        percentile: Optional[float] = None,
        degrade: Optional[bool] = None,
    ) -> Union[DecisionResponse, BidDecision]:
        """Compute a bid for a :class:`~repro.core.types.DecisionRequest`.

        The request names the job, the strategy (``Strategy.ONE_TIME``,
        Prop. 4; ``Strategy.PERSISTENT``, Prop. 5; ``Strategy.PERCENTILE``,
        the Section 7 heuristic baseline; ``Strategy.PORTFOLIO``, the
        variance-capped on-demand/spot mix; ``Strategy.CVAR``, tail-risk
        bid selection over historical windows) and the degradation
        policy; the
        returned :class:`~repro.core.types.DecisionResponse` carries the
        :class:`~repro.core.types.BidDecision` plus serving metadata.

        With ``request.degrade`` set, an infeasible optimization (every
        bid violates the constraints — typical of fault-perturbed price
        distributions) falls back to the on-demand baseline: the response
        wraps a :class:`~repro.core.types.DegradedDecision` and names the
        degradation reason instead of raising
        :class:`~repro.errors.InfeasibleBidError`.

        Passing a bare :class:`~repro.core.types.JobSpec` with keyword
        arguments is the deprecated pre-serving form; it returns the bare
        ``BidDecision`` and emits a :class:`DeprecationWarning`.
        """
        if isinstance(request, DecisionRequest):
            if strategy is not None or percentile is not None or degrade is not None:
                raise TypeError(
                    "decide() accepts either a DecisionRequest or the "
                    "deprecated JobSpec-with-keywords form, not both"
                )
            return self.respond(request)
        warnings.warn(_KWARGS_DEPRECATION, DeprecationWarning, stacklevel=2)
        legacy = DecisionRequest(
            job=request,
            strategy=Strategy.PERSISTENT if strategy is None else strategy,
            percentile=90.0 if percentile is None else percentile,
            degrade=bool(degrade),
        )
        return self.respond(legacy).decision

    def respond(self, request: DecisionRequest) -> DecisionResponse:
        """The single decision path shared by the library and ``repro.serve``.

        Dispatches ``request`` to the strategy optimizers and wraps the
        result; serving layers stamp table/cache metadata onto the
        response via :meth:`DecisionResponse.with_serving`.
        """
        job = request.job
        try:
            if request.strategy is Strategy.ONE_TIME:
                decision: BidDecision = optimal_onetime_bid(
                    self.distribution, job, ondemand_price=self.ondemand_price
                )
            elif request.strategy is Strategy.PERSISTENT:
                decision = optimal_persistent_bid(
                    self.distribution, job, ondemand_price=self.ondemand_price
                )
            elif request.strategy is Strategy.PORTFOLIO:
                # Deferred: repro.extensions imports repro.core.
                from ..extensions.portfolio import optimal_portfolio_bid

                decision = optimal_portfolio_bid(
                    self.distribution,
                    job,
                    ondemand_price=self.ondemand_price,
                    max_variance=request.max_variance,
                )
            elif request.strategy is Strategy.CVAR:
                from ..extensions.portfolio import cvar_bid

                decision = cvar_bid(
                    self.history,
                    job,
                    alpha=request.cvar_alpha,
                    ondemand_price=self.ondemand_price,
                )
            else:
                decision = percentile_bid(
                    self.distribution, job, percentile=request.percentile
                )
        except InfeasibleBidError as exc:
            if not request.degrade:
                raise
            degraded = self.degraded_decision(
                job, strategy=request.strategy, reason=str(exc)
            )
            return DecisionResponse(
                decision=degraded,
                request=request,
                cache_tier="compute",
                degradation_reason=degraded.reason,
            )
        return DecisionResponse(
            decision=decision, request=request, cache_tier="compute"
        )

    def degraded_decision(
        self,
        job: JobSpec,
        *,
        strategy: Strategy = Strategy.PERSISTENT,
        reason: str = "",
    ) -> DegradedDecision:
        """The explicit on-demand fallback: bid the on-demand price.

        A bid at ``π̄`` is always accepted in the paper's model (the spot
        price never exceeds on-demand), so the expected cost is the
        on-demand baseline and completion is certain.
        """
        return DegradedDecision(
            price=self.ondemand_price,
            kind=strategy.bid_kind,
            expected_cost=self.ondemand_cost(job),
            expected_completion_time=job.execution_time,
            expected_running_time=job.execution_time,
            expected_interruptions=0.0,
            acceptance_probability=1.0,
            reason=reason,
        )

    # -- execution (Figure 1's "job monitor") ------------------------------
    def execute(
        self,
        decision: Union[BidDecision, DecisionResponse],
        job: JobSpec,
        future: SpotPriceHistory,
        *,
        start_slot: int = 0,
        fallback_ondemand: bool = False,
    ) -> JobOutcome:
        """Run a bid against held-out future prices on the simulator.

        Accepts the :class:`~repro.core.types.BidDecision` directly or a
        :class:`~repro.core.types.DecisionResponse` from :meth:`decide`
        (the wrapped decision is executed).

        With ``fallback_ondemand`` a failed one-time request is assumed to
        be rerun from scratch on an on-demand instance (the paper notes
        users "may default to on-demand instances if the jobs are not
        completed"); the reported cost then includes both the wasted spot
        spend and the on-demand rerun.
        """
        if isinstance(decision, DecisionResponse):
            decision = decision.decision
        if future.slot_length != job.slot_length:
            raise MarketError(
                f"future trace slot length {future.slot_length!r} differs from "
                f"the job's slot length {job.slot_length!r}"
            )
        market = SpotMarket(
            TracePriceSource(future, start_slot=start_slot),
            slot_length=job.slot_length,
        )
        request_id = market.submit(
            bid_price=decision.price,
            work=job.execution_time,
            kind=decision.kind,
            recovery_time=(
                job.recovery_time if decision.kind is BidKind.PERSISTENT else 0.0
            ),
        )
        try:
            market.run_until_done(max_slots=future.n_slots - start_slot)
        except MarketError:
            # Trace ran out with the job unfinished; report the partial
            # outcome rather than guessing beyond the data.
            pass
        outcome = market.outcome(request_id)

        if fallback_ondemand and not outcome.completed:
            # The paper's noted remedy: rerun the whole job on demand.
            extra = self.ondemand_price * job.execution_time
            outcome = dataclasses.replace(outcome, cost=outcome.cost + extra)
        return outcome

    def backtest(
        self,
        job: JobSpec,
        future: SpotPriceHistory,
        *,
        strategy: "Strategy | str" = Strategy.PERSISTENT,
        percentile: float = 90.0,
        start_slot: int = 0,
        fallback_ondemand: bool = False,
    ) -> BidRunReport:
        """Decide and execute in one call; returns prediction and outcome."""
        response = self.respond(
            DecisionRequest(job=job, strategy=strategy, percentile=percentile)
        )
        outcome = self.execute(
            response.decision,
            job,
            future,
            start_slot=start_slot,
            fallback_ondemand=fallback_ondemand,
        )
        return BidRunReport(decision=response.decision, outcome=outcome)

    def ondemand_cost(self, job: JobSpec) -> float:
        """Baseline cost of the job on an on-demand instance."""
        return self.ondemand_price * job.execution_time
