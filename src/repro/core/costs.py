"""The paper's cost and running-time formulas (Sections 5 and 6).

Everything here is a pure function of a :class:`~repro.core.distributions.
PriceDistribution` and a job specification.  The optimizers in
:mod:`repro.core.onetime`, :mod:`repro.core.persistent` and
:mod:`repro.core.mapreduce` search over bid prices using these formulas.

Equation map
------------
==============================  =======================================
:func:`expected_uninterrupted_time`   eq. 8   ``t_k / (1 − F(p))``
:func:`expected_price_paid`           eq. 9   ``E[π | π ≤ p]``
:func:`onetime_cost`                  eq. 10  ``Φ_so(p) = t_s·E[π|π≤p]``
:func:`expected_interruptions`        eq. 12  ``(T/t_k)·F(p)(1−F(p))``
:func:`persistent_running_time`       eq. 13  ``T·F(p)``
:func:`is_interruptible`              eq. 14  ``t_r < t_k/(1−F(p))``
:func:`persistent_cost`               eq. 15  ``Φ_sp(p)``
:func:`psi`                           eq. 16  ``ψ(p)`` (Prop. 5)
:func:`parallel_total_running_time`   eq. 17
:func:`parallel_completion_time`      eq. 18
:func:`parallel_cost`                 eq. 19  ``Φ_mp(p)``
==============================  =======================================
"""

from __future__ import annotations

import math

from .distributions import PriceDistribution
from .types import JobSpec, ParallelJobSpec

__all__ = [
    "expected_uninterrupted_time",
    "expected_price_paid",
    "onetime_cost",
    "expected_interruptions",
    "persistent_running_time",
    "persistent_completion_time",
    "is_interruptible",
    "persistent_cost",
    "psi",
    "parallel_total_running_time",
    "parallel_completion_time",
    "parallel_cost",
    "ondemand_cost",
]


def expected_uninterrupted_time(
    dist: PriceDistribution, price: float, slot_length: float
) -> float:
    """Expected time a bid at ``price`` keeps running before an
    interruption: ``t_k / (1 − F_π(p))`` (eq. 8).

    Returns ``inf`` when ``F_π(p) == 1`` (the bid always wins).
    """
    survive = dist.cdf(price)
    if survive >= 1.0:
        return math.inf
    return slot_length / (1.0 - survive)


def expected_price_paid(dist: PriceDistribution, price: float) -> float:
    """Expected per-hour price charged while running (eq. 9).

    The user is charged the *spot* price, not the bid, so this is
    ``E[π | π ≤ p]``, which increases monotonically with ``p``.
    """
    return dist.conditional_mean_below(price)


def onetime_cost(dist: PriceDistribution, price: float, job: JobSpec) -> float:
    """Expected cost ``Φ_so(p)`` of a one-time request (objective of eq. 10).

    A one-time request either runs to completion or is terminated, so the
    expected cost conditional on completion is the execution time times
    the expected price paid.
    """
    return job.execution_time * expected_price_paid(dist, price)


def expected_interruptions(
    dist: PriceDistribution, price: float, completion_time: float, slot_length: float
) -> float:
    """Expected number of interruptions over ``completion_time`` (eq. 12).

    Each interruption is one idle→running plus one running→idle transition;
    the per-slot transition probability is ``F(p)(1 − F(p))``.
    """
    accept = dist.cdf(price)
    return (completion_time / slot_length) * accept * (1.0 - accept)


def _recovery_slot_fraction(job: JobSpec) -> float:
    """``r = t_r / t_k`` — recovery time measured in slots."""
    return job.recovery_time / job.slot_length


def is_interruptible(dist: PriceDistribution, price: float, job: JobSpec) -> bool:
    """Check the interruptibility condition ``t_r < t_k/(1−F(p))`` (eq. 14).

    When it fails, every interruption costs more running time than the job
    gains between interruptions and the expected running time diverges.
    """
    accept = dist.cdf(price)
    return job.recovery_time * (1.0 - accept) < job.slot_length


def persistent_running_time(
    dist: PriceDistribution, price: float, job: JobSpec
) -> float:
    """Expected running time ``T·F(p)`` of a persistent request (eq. 13).

    Returns ``inf`` when the interruptibility condition (eq. 14) fails.
    Requires ``t_s > t_r``: the job must outlast a single recovery.
    """
    if job.execution_time <= job.recovery_time:
        raise ValueError(
            f"persistent model needs execution_time > recovery_time, got "
            f"t_s={job.execution_time} <= t_r={job.recovery_time}"
        )
    accept = dist.cdf(price)
    denom = 1.0 - _recovery_slot_fraction(job) * (1.0 - accept)
    if denom <= 0.0:
        return math.inf
    return (job.execution_time - job.recovery_time) / denom


def persistent_completion_time(
    dist: PriceDistribution, price: float, job: JobSpec
) -> float:
    """Expected total completion time ``T`` (running plus idle time).

    ``T = (T·F(p)) / F(p)``; infinite when the bid is never accepted or
    the job is not interruptible at this bid.
    """
    accept = dist.cdf(price)
    if accept <= 0.0:
        return math.inf
    running = persistent_running_time(dist, price, job)
    return running / accept


def persistent_cost(dist: PriceDistribution, price: float, job: JobSpec) -> float:
    """Expected cost ``Φ_sp(p)`` of a persistent request (eq. 15).

    The product of the expected running time (idle slots are free) and the
    expected price paid per running hour.  ``inf`` when infeasible.
    """
    accept = dist.cdf(price)
    if accept <= 0.0:
        return math.inf
    running = persistent_running_time(dist, price, job)
    if math.isinf(running):
        return math.inf
    return running * dist.partial_expectation(price) / accept


def psi(dist: PriceDistribution, price: float) -> float:
    """Prop. 5's ψ function: ``ψ(p) = F(p)·(S(p)/P(p) − 1)``.

    ``S(p) = ∫ x f dx`` and ``P(p) = ∫ (p − x) f dx``.  The optimal
    persistent bid solves ``ψ(p) = t_k/t_r − 1``.  When the price PDF is
    decreasing (F concave) ψ decreases through that target: Φ_sp
    increases exactly where ``ψ(p) < t_k/t_r − 1`` (the appendix's g(p)
    changes sign once), so the crossing is the unique interior minimum.

    Returns ``inf`` as ``P(p) → 0`` (p at the bottom of the support) and
    0 below the support.
    """
    accept = dist.cdf(price)
    if accept <= 0.0:
        return 0.0
    below = dist.partial_expectation(price)
    shortfall = price * accept - below
    if shortfall <= 0.0:
        return math.inf
    return accept * (below / shortfall - 1.0)


# ----------------------------------------------------------------------
# Parallel (slave-only) jobs — Section 6.1
# ----------------------------------------------------------------------

def _parallel_denominator(
    dist: PriceDistribution, price: float, job: ParallelJobSpec
) -> float:
    accept = dist.cdf(price)
    return 1.0 - (job.recovery_time / job.slot_length) * (1.0 - accept)


def parallel_total_running_time(
    dist: PriceDistribution, price: float, job: ParallelJobSpec
) -> float:
    """Sum of the M instances' expected running times (eq. 17).

    ``Σ_i T_i·F(p) = (t_s + t_o − M·t_r) / (1 − (t_r/t_k)(1 − F(p)))``.
    Requires positive effective work ``t_s + t_o − M·t_r``.
    """
    if job.effective_work <= 0.0:
        raise ValueError(
            "effective work t_s + t_o - M*t_r must be positive; splitting "
            f"into M={job.num_instances} sub-jobs budgets more recovery time "
            "than the job contains"
        )
    denom = _parallel_denominator(dist, price, job)
    if denom <= 0.0:
        return math.inf
    return job.effective_work / denom


def parallel_completion_time(
    dist: PriceDistribution, price: float, job: ParallelJobSpec
) -> float:
    """Wall-clock completion time of the parallelized job (eq. 18 / F(p)).

    Eq. 18 gives the slowest sub-job's *running* time
    ``(t_s + t_o − M·t_r)/(M·(1 − (t_r/t_k)(1 − F(p))))``; dividing by
    ``F(p)`` adds the expected idle time.
    """
    accept = dist.cdf(price)
    if accept <= 0.0:
        return math.inf
    total = parallel_total_running_time(dist, price, job)
    if math.isinf(total):
        return math.inf
    return total / (job.num_instances * accept)


def parallel_cost(
    dist: PriceDistribution, price: float, job: ParallelJobSpec
) -> float:
    """Expected cost ``Φ_mp(p)`` of M persistent sub-job requests (eq. 19)."""
    accept = dist.cdf(price)
    if accept <= 0.0:
        return math.inf
    total = parallel_total_running_time(dist, price, job)
    if math.isinf(total):
        return math.inf
    return total * dist.partial_expectation(price) / accept


def ondemand_cost(ondemand_price: float, execution_time: float) -> float:
    """Cost of running the job on an on-demand instance: ``t_s · π̄``.

    Used as the feasibility ceiling in eqs. 10, 15 and 19 and as the
    baseline in all of Section 7's comparisons.
    """
    if ondemand_price < 0:
        raise ValueError(f"ondemand_price must be non-negative, got {ondemand_price!r}")
    if execution_time < 0:
        raise ValueError(f"execution_time must be non-negative, got {execution_time!r}")
    return ondemand_price * execution_time
