"""Memoized :class:`EmpiricalPriceDistribution` construction.

Building an empirical distribution sorts the whole price history; sweep
workloads (and the experiment loops rewired onto them) repeatedly build
distributions from the *same* history — one per strategy, one per
repetition, one per client.  This module deduplicates that work with a
content-addressed LRU cache keyed on the price bytes, so identical
histories share one distribution object.

The cache lives in ``repro.core`` (it depends only on the distribution
types) so both the batch layers (:mod:`repro.sweep`, which re-exports it
as ``repro.sweep.cache`` for backward compatibility) and the serving
layer (:mod:`repro.serve`) share one seam — and so
:class:`~repro.core.client.BiddingClient` can import it at module scope
instead of deferring the import to every construction.

The cache is deliberately process-local and bounded; hit/miss counters
feed the :class:`~repro.sweep.report.SweepCounters` diagnostics.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Tuple, Union

import numpy as np

from ..constants import DIST_CACHE_SIZE
from .distributions import EmpiricalPriceDistribution

__all__ = [
    "cached_distribution",
    "distribution_cache_stats",
    "clear_distribution_cache",
]


def _max_entries() -> int:
    """Effective cache bound: the ``REPRO_DIST_CACHE_SIZE`` registry
    entry, re-read per call so the env var also works when set after
    import (e.g. in spawned pool workers)."""
    return DIST_CACHE_SIZE.get()

_lock = threading.Lock()
_cache: "OrderedDict[Tuple[str, Optional[float]], EmpiricalPriceDistribution]" = (
    OrderedDict()
)
_hits = 0
_misses = 0


def _key(prices: np.ndarray, upper: Optional[float]) -> Tuple[str, Optional[float]]:
    digest = hashlib.sha1(np.ascontiguousarray(prices, dtype=float)).hexdigest()
    return digest, None if upper is None else float(upper)


def cached_distribution(
    source: Union[np.ndarray, "object"],
    *,
    upper: Optional[float] = None,
) -> EmpiricalPriceDistribution:
    """Return (possibly shared) ``EmpiricalPriceDistribution(prices, upper)``.

    ``source`` is a price array or anything with a ``.prices`` attribute
    (e.g. :class:`~repro.traces.history.SpotPriceHistory`).  Distributions
    are immutable in practice, so sharing one instance between callers
    that supplied byte-identical histories is safe.
    """
    global _hits, _misses
    prices = np.asarray(getattr(source, "prices", source), dtype=float)
    key = _key(prices, upper)
    with _lock:
        cached = _cache.get(key)
        if cached is not None:
            _cache.move_to_end(key)
            _hits += 1
            return cached
    dist = EmpiricalPriceDistribution(prices, upper=upper)
    with _lock:
        _misses += 1
        _cache[key] = dist
        while len(_cache) > _max_entries():
            _cache.popitem(last=False)
    return dist


def distribution_cache_stats() -> Tuple[int, int]:
    """Lifetime ``(hits, misses)`` of the process-local cache."""
    with _lock:
        return _hits, _misses


def clear_distribution_cache() -> None:
    """Drop all cached distributions and reset the counters."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0
