"""Spot-price distributions.

Every bidding strategy in the paper consumes the spot-price distribution
``F_π`` and nothing else (footnote 7: the strategies "do not explicitly
depend on the provider model ... but rather on the spot price's PDF").
This module defines the interface those strategies program against and two
families of implementations:

* :class:`EmpiricalPriceDistribution` — built from an observed price trace,
  exactly what a real client computes from Amazon's two-month history.
* Closed-form parametric distributions (uniform, truncated exponential)
  used by unit tests and analytic cross-checks.

The equilibrium distribution induced by the Section 4 provider model lives
in :mod:`repro.provider.equilibrium` and implements the same interface.

Three integral quantities drive all of the paper's formulas, so they are
first-class methods here:

``cdf(p)``
    ``F_π(p)`` — probability a bid at ``p`` is accepted in a slot.
``partial_expectation(p)``
    ``S(p) = ∫_π^p x f_π(x) dx`` — the *unnormalized* expected price below
    ``p``.  The expected price actually paid (eq. 9) is ``S(p)/F(p)``.
``expected_shortfall(p)``
    ``P(p) = ∫_π^p (p − x) f_π(x) dx = p·F(p) − S(p)`` — used by the
    persistent-bid optimality condition (Prop. 5).
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence

import numpy as np
from scipy import integrate, optimize

from ..errors import DistributionError, SupportError

__all__ = [
    "PriceDistribution",
    "EmpiricalPriceDistribution",
    "UniformPriceDistribution",
    "TruncatedExponentialPriceDistribution",
]


class PriceDistribution(abc.ABC):
    """Interface for a distribution of per-slot spot prices ($/hour)."""

    #: Inclusive lower edge of the support (the minimum spot price π_min).
    lower: float
    #: Upper edge of the support.  Prices never exceed the on-demand price.
    upper: float

    # ------------------------------------------------------------------
    # Abstract core
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def cdf(self, price: float) -> float:
        """Return ``F_π(price)``, clamped to [0, 1] outside the support."""

    @abc.abstractmethod
    def pdf(self, price: float) -> float:
        """Return the density ``f_π(price)`` (0 outside the support)."""

    @abc.abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` i.i.d. spot prices."""

    # ------------------------------------------------------------------
    # Derived quantities with generic numeric implementations.
    # Subclasses override these with closed forms where available.
    # ------------------------------------------------------------------
    def ppf(self, quantile: float) -> float:
        """Return the smallest price ``p`` with ``F_π(p) >= quantile``.

        ``quantile <= 0`` maps to the lower support edge and
        ``quantile >= 1`` to the upper edge, which is the behaviour
        Prop. 4 relies on (a short job bids the minimum spot price).
        """
        if math.isnan(quantile):
            raise DistributionError("quantile must not be NaN")
        if quantile <= 0.0:
            return self.lower
        if quantile >= 1.0:
            return self.upper
        lo, hi = self.lower, self.upper
        if self.cdf(lo) >= quantile:
            return lo
        return float(
            optimize.brentq(lambda p: self.cdf(p) - quantile, lo, hi, xtol=1e-12)
        )

    def partial_expectation(self, price: float) -> float:
        """Return ``S(price) = ∫_lower^price x f_π(x) dx``."""
        if price <= self.lower:
            return 0.0
        hi = min(price, self.upper)
        value, _abserr = integrate.quad(
            lambda x: x * self.pdf(x), self.lower, hi, limit=200
        )
        return float(value)

    def expected_shortfall(self, price: float) -> float:
        """Return ``P(price) = price·F(price) − S(price)`` (>= 0)."""
        return price * self.cdf(price) - self.partial_expectation(price)

    def conditional_mean_below(self, price: float) -> float:
        """Return ``E[π | π <= price]`` — the expected price paid (eq. 9).

        Raises :class:`SupportError` if ``F(price) == 0`` (conditioning on
        a null event).
        """
        accept = self.cdf(price)
        if accept <= 0.0:
            raise SupportError(
                f"bid {price!r} is below the entire price support "
                f"[{self.lower}, {self.upper}]; acceptance probability is 0"
            )
        return self.partial_expectation(price) / accept

    def mean(self) -> float:
        """Return the unconditional mean spot price."""
        return self.partial_expectation(self.upper)

    def candidate_bids(self) -> Optional[np.ndarray]:
        """Return the finite set of bid prices worth considering, if any.

        For discrete (empirical) distributions the objective functions are
        piecewise-constant between atoms, so optimizers only need to scan
        the atoms.  Continuous distributions return ``None`` and are
        optimized with root finding.
        """
        return None

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_support(self) -> None:
        if not (math.isfinite(self.lower) and math.isfinite(self.upper)):
            raise DistributionError(
                f"support edges must be finite, got [{self.lower}, {self.upper}]"
            )
        if self.lower < 0:
            raise DistributionError(f"prices must be non-negative, got lower={self.lower}")
        if self.upper < self.lower:
            raise DistributionError(
                f"upper support edge {self.upper} below lower edge {self.lower}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(lower={self.lower:.6g}, upper={self.upper:.6g})"
        )


class EmpiricalPriceDistribution(PriceDistribution):
    """The ECDF of an observed spot-price trace.

    This is the distribution a real bidding client builds from the price
    history Amazon exposes (Figure 1's "price monitor").  All quantities
    are exact for the discrete distribution that puts mass ``1/n`` on each
    observation, computed with O(log n) lookups over presorted arrays.

    Parameters
    ----------
    prices:
        Observed per-slot spot prices, in any order.
    upper:
        Optional explicit upper support edge (e.g. the on-demand price).
        Defaults to the maximum observation.
    """

    def __init__(self, prices: Sequence[float], *, upper: Optional[float] = None):
        arr = np.asarray(prices, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise DistributionError("prices must be a non-empty 1-D sequence")
        if not np.all(np.isfinite(arr)):
            raise DistributionError("prices must all be finite")
        if np.any(arr < 0):
            raise DistributionError("prices must be non-negative")
        self._sorted = np.sort(arr)
        self._n = self._sorted.size
        # Cumulative sums enable O(log n) partial expectations/moments.
        self._cumsum = np.concatenate(([0.0], np.cumsum(self._sorted)))
        self._cumsum_sq = np.concatenate(([0.0], np.cumsum(self._sorted**2)))
        self.lower = float(self._sorted[0])
        observed_max = float(self._sorted[-1])
        if upper is None:
            self.upper = observed_max
        else:
            if upper < observed_max:
                raise DistributionError(
                    f"explicit upper edge {upper} is below the maximum "
                    f"observation {observed_max}"
                )
            self.upper = float(upper)
        self._check_support()
        self._unique = np.unique(self._sorted)

    # -- core ----------------------------------------------------------
    @property
    def n_observations(self) -> int:
        """Number of price observations backing the ECDF."""
        return self._n

    def cdf(self, price: float) -> float:
        count = np.searchsorted(self._sorted, price, side="right")
        return float(count) / self._n

    def cdf_array(self, prices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cdf` for candidate scans."""
        counts = np.searchsorted(self._sorted, prices, side="right")
        return counts / self._n

    def pdf(self, price: float) -> float:
        """Histogram-style density estimate.

        An ECDF has no density; this returns the probability mass at the
        nearest atom divided by the local atom spacing, which is adequate
        for plotting and for the concavity heuristics.  All optimization
        paths use :meth:`cdf`/:meth:`partial_expectation` instead.
        """
        if price < self.lower or price > self.upper:
            return 0.0
        if self._unique.size == 1:
            return math.inf if price == self.lower else 0.0
        idx = int(np.clip(np.searchsorted(self._unique, price), 0, self._unique.size - 1))
        left = self._unique[max(idx - 1, 0)]
        right = self._unique[min(idx + 1, self._unique.size - 1)]
        width = max((right - left) / 2.0, 1e-12)
        mass = self.cdf(self._unique[idx]) - (
            self.cdf(self._unique[idx - 1]) if idx > 0 else 0.0
        )
        return mass / width

    def ppf(self, quantile: float) -> float:
        if math.isnan(quantile):
            raise DistributionError("quantile must not be NaN")
        if quantile <= 0.0:
            return self.lower
        if quantile >= 1.0:
            return float(self._sorted[-1])
        # Smallest observation x with F(x) >= q, i.e. index ceil(q*n) - 1.
        idx = int(math.ceil(quantile * self._n)) - 1
        idx = min(max(idx, 0), self._n - 1)
        return float(self._sorted[idx])

    def partial_expectation(self, price: float) -> float:
        count = int(np.searchsorted(self._sorted, price, side="right"))
        return float(self._cumsum[count]) / self._n

    def partial_expectation_array(self, prices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`partial_expectation`."""
        counts = np.searchsorted(self._sorted, prices, side="right")
        return self._cumsum[counts] / self._n

    def partial_second_moment(self, price: float) -> float:
        """``∫_lower^price x² f(x) dx`` — used by risk-aware bidding."""
        count = int(np.searchsorted(self._sorted, price, side="right"))
        return float(self._cumsum_sq[count]) / self._n

    def partial_second_moment_array(self, prices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`partial_second_moment`."""
        counts = np.searchsorted(self._sorted, prices, side="right")
        return self._cumsum_sq[counts] / self._n

    def mean(self) -> float:
        return float(self._cumsum[-1]) / self._n

    def candidate_bids(self) -> np.ndarray:
        """All distinct observed prices — the only bids worth scanning."""
        return self._unique.copy()

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.choice(self._sorted, size=size, replace=True)

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile price, ``q`` in [0, 100].

        Convenience wrapper used by the 90th-percentile heuristic (§7.1).
        """
        if not 0.0 <= q <= 100.0:
            raise DistributionError(f"percentile must be within [0, 100], got {q!r}")
        return self.ppf(q / 100.0)


class UniformPriceDistribution(PriceDistribution):
    """Uniform prices on ``[lower, upper]`` — closed forms for everything.

    The paper uses a uniform distribution to model the *bids* arriving at
    the provider (Section 4.1); here it doubles as a simple analytic price
    model for tests and examples.
    """

    def __init__(self, lower: float, upper: float):
        if not upper > lower >= 0:
            raise DistributionError(
                f"need 0 <= lower < upper, got [{lower!r}, {upper!r}]"
            )
        self.lower = float(lower)
        self.upper = float(upper)
        self._check_support()

    def cdf(self, price: float) -> float:
        if price <= self.lower:
            return 0.0
        if price >= self.upper:
            return 1.0
        return (price - self.lower) / (self.upper - self.lower)

    def pdf(self, price: float) -> float:
        if self.lower <= price <= self.upper:
            return 1.0 / (self.upper - self.lower)
        return 0.0

    def ppf(self, quantile: float) -> float:
        if math.isnan(quantile):
            raise DistributionError("quantile must not be NaN")
        q = min(max(quantile, 0.0), 1.0)
        return self.lower + q * (self.upper - self.lower)

    def partial_expectation(self, price: float) -> float:
        if price <= self.lower:
            return 0.0
        hi = min(price, self.upper)
        return (hi * hi - self.lower * self.lower) / (2.0 * (self.upper - self.lower))

    def mean(self) -> float:
        return 0.5 * (self.lower + self.upper)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.lower, self.upper, size=size)


class TruncatedExponentialPriceDistribution(PriceDistribution):
    """Exponential decay from ``lower``, truncated at ``upper``.

    Density ``f(p) ∝ exp(−(p − lower)/scale)`` on ``[lower, upper]``.
    Its PDF is monotonically decreasing, satisfying Prop. 5's concavity
    requirement, and it mimics the knee-shaped empirical spot-price
    distributions (Figure 3) closely enough for analytic tests.
    """

    def __init__(self, lower: float, upper: float, scale: float):
        if not upper > lower >= 0:
            raise DistributionError(
                f"need 0 <= lower < upper, got [{lower!r}, {upper!r}]"
            )
        if not scale > 0:
            raise DistributionError(f"scale must be positive, got {scale!r}")
        self.lower = float(lower)
        self.upper = float(upper)
        self.scale = float(scale)
        # Normalizing constant: total un-truncated mass on [lower, upper].
        self._mass = 1.0 - math.exp(-(self.upper - self.lower) / self.scale)
        self._check_support()

    def cdf(self, price: float) -> float:
        if price <= self.lower:
            return 0.0
        if price >= self.upper:
            return 1.0
        raw = 1.0 - math.exp(-(price - self.lower) / self.scale)
        return raw / self._mass

    def pdf(self, price: float) -> float:
        if self.lower <= price <= self.upper:
            return math.exp(-(price - self.lower) / self.scale) / (
                self.scale * self._mass
            )
        return 0.0

    def ppf(self, quantile: float) -> float:
        if math.isnan(quantile):
            raise DistributionError("quantile must not be NaN")
        if quantile <= 0.0:
            return self.lower
        if quantile >= 1.0:
            return self.upper
        return self.lower - self.scale * math.log(1.0 - quantile * self._mass)

    def partial_expectation(self, price: float) -> float:
        if price <= self.lower:
            return 0.0
        hi = min(price, self.upper)
        s, a = self.scale, self.lower
        # ∫_a^hi x e^{-(x-a)/s} dx / (s * mass)
        integral = (a + s) - (hi + s) * math.exp(-(hi - a) / s)
        return integral / self._mass

    def mean(self) -> float:
        return self.partial_expectation(self.upper)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        u = rng.uniform(0.0, 1.0, size=size)
        return self.lower - self.scale * np.log(1.0 - u * self._mass)
