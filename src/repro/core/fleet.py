"""Fleet bidding: choosing *which* instance types to bid on.

The paper optimizes the bid price for a given instance type; the obvious
next question — which Amazon answered two months after SIGCOMM'15 by
launching Spot Fleet — is how to spread a divisible workload across
types.  This module extends the Section 5 machinery to that decision:

1. Normalize each type by work throughput (vCPUs): a job of ``W``
   vCPU-hours takes ``W/vcpus`` wall-hours of execution on one instance.
2. Compute the optimal persistent bid per type (Prop. 5 is
   type-independent given the type's price distribution).
3. Rank types by expected dollar cost per vCPU-hour and allocate.

Two allocation strategies:

* ``"cheapest"`` — everything on the lowest-cost type;
* ``"diversified"`` — split evenly across the ``k`` cheapest types, so a
  price spike in one market cannot stall the whole workload (spot
  markets for different types move independently here, as they largely
  did on EC2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..errors import InfeasibleBidError, PlanError
from ..market.price_sources import TracePriceSource
from ..market.simulator import SpotMarket
from ..traces.catalog import InstanceType, get_instance_type
from ..traces.history import SpotPriceHistory
from .persistent import optimal_persistent_bid
from .types import BidDecision, BidKind, JobSpec

__all__ = [
    "FleetOption",
    "FleetAllocation",
    "FleetPlan",
    "FleetRunResult",
    "rank_fleet_options",
    "plan_fleet",
    "run_fleet",
]


@dataclass(frozen=True)
class FleetOption:
    """One instance type's bid, normalized for cross-type comparison."""

    instance_type: InstanceType
    decision: BidDecision
    #: Wall-clock execution time of the whole workload on one instance.
    execution_time: float

    @property
    def cost_per_vcpu_hour(self) -> float:
        """Expected dollars per vCPU-hour of useful work."""
        work = self.execution_time * self.instance_type.vcpus
        return self.decision.expected_cost / work

    @property
    def ondemand_cost_per_vcpu_hour(self) -> float:
        return self.instance_type.on_demand_price / self.instance_type.vcpus


@dataclass(frozen=True)
class FleetAllocation:
    """A share of the workload assigned to one instance type."""

    instance_type: InstanceType
    job: JobSpec
    decision: BidDecision
    work_vcpu_hours: float


@dataclass(frozen=True)
class FleetPlan:
    allocations: List[FleetAllocation]
    #: All candidate options, ranked cheapest first (for reporting).
    ranking: List[FleetOption]

    @property
    def total_expected_cost(self) -> float:
        return sum(a.decision.expected_cost for a in self.allocations)

    @property
    def expected_completion_time(self) -> float:
        """Allocations run in parallel; the slowest bounds the fleet."""
        return max(
            a.decision.expected_completion_time for a in self.allocations
        )


@dataclass(frozen=True)
class FleetRunResult:
    """Observed outcome of a fleet run on per-type future traces."""

    completed: bool
    total_cost: float
    completion_time: float
    per_type_cost: Dict[str, float]
    interruptions: int


def _job_for(
    itype: InstanceType,
    work_vcpu_hours: float,
    recovery_time: float,
    slot_length: float,
) -> JobSpec:
    return JobSpec(
        execution_time=work_vcpu_hours / itype.vcpus,
        recovery_time=recovery_time,
        slot_length=slot_length,
    )


def rank_fleet_options(
    histories: Mapping[str, SpotPriceHistory],
    *,
    work_vcpu_hours: float,
    recovery_time: float = 0.0,
) -> List[FleetOption]:
    """Rank candidate instance types by expected cost per vCPU-hour.

    ``histories`` maps catalog type names to their price histories; types
    whose bid problem is infeasible are dropped from the ranking.
    """
    if work_vcpu_hours <= 0:
        raise PlanError(f"work must be positive, got {work_vcpu_hours!r}")
    if not histories:
        raise PlanError("need at least one candidate instance type")
    options = []
    for name, history in histories.items():
        itype = get_instance_type(name)
        job = _job_for(itype, work_vcpu_hours, recovery_time, history.slot_length)
        try:
            decision = optimal_persistent_bid(
                history.to_distribution(), job,
                ondemand_price=itype.on_demand_price,
            )
        except InfeasibleBidError:
            continue
        options.append(
            FleetOption(
                instance_type=itype,
                decision=decision,
                execution_time=job.execution_time,
            )
        )
    if not options:
        raise InfeasibleBidError("no candidate type admits a feasible bid")
    options.sort(key=lambda o: o.cost_per_vcpu_hour)
    return options


def plan_fleet(
    histories: Mapping[str, SpotPriceHistory],
    *,
    work_vcpu_hours: float,
    recovery_time: float = 0.0,
    strategy: str = "diversified",
    max_types: int = 3,
) -> FleetPlan:
    """Allocate the workload across instance types.

    ``strategy="cheapest"`` puts everything on the best-ranked type;
    ``"diversified"`` splits evenly across the ``max_types`` cheapest.
    """
    if strategy not in {"cheapest", "diversified"}:
        raise PlanError(f"unknown strategy {strategy!r}")
    if max_types < 1:
        raise PlanError(f"max_types must be >= 1, got {max_types!r}")
    ranking = rank_fleet_options(
        histories, work_vcpu_hours=work_vcpu_hours, recovery_time=recovery_time
    )
    chosen = ranking[:1] if strategy == "cheapest" else ranking[:max_types]
    # Work splits proportionally to capacity (vCPUs), so every allocation
    # has the same wall-clock execution time — real Spot Fleet's
    # capacity-weighted distribution.
    total_vcpus = sum(o.instance_type.vcpus for o in chosen)
    allocations = []
    for option in chosen:
        share = work_vcpu_hours * option.instance_type.vcpus / total_vcpus
        history = histories[option.instance_type.name]
        job = _job_for(
            option.instance_type, share, recovery_time, history.slot_length
        )
        decision = optimal_persistent_bid(
            history.to_distribution(), job,
            ondemand_price=option.instance_type.on_demand_price,
        )
        allocations.append(
            FleetAllocation(
                instance_type=option.instance_type,
                job=job,
                decision=decision,
                work_vcpu_hours=share,
            )
        )
    return FleetPlan(allocations=allocations, ranking=ranking)


def run_fleet(
    plan: FleetPlan,
    futures: Mapping[str, SpotPriceHistory],
    *,
    start_slot: int = 0,
) -> FleetRunResult:
    """Execute every allocation on its own market, in lockstep.

    Each allocation's type must have a future trace in ``futures``.
    """
    markets: Dict[str, SpotMarket] = {}
    requests: Dict[str, int] = {}
    for alloc in plan.allocations:
        name = alloc.instance_type.name
        if name not in futures:
            raise PlanError(f"no future trace supplied for {name!r}")
        market = SpotMarket(
            TracePriceSource(futures[name], start_slot=start_slot),
            slot_length=alloc.job.slot_length,
        )
        markets[name] = market
        requests[name] = market.submit(
            bid_price=alloc.decision.price,
            work=alloc.job.execution_time,
            kind=BidKind.PERSISTENT,
            recovery_time=alloc.job.recovery_time,
            label=name,
        )

    budget = min(f.n_slots - start_slot for f in futures.values())
    for _step in range(budget):
        if not any(m.has_active_requests() for m in markets.values()):
            break
        for market in markets.values():
            if market.has_active_requests():
                market.step()

    outcomes = {
        name: markets[name].outcome(rid) for name, rid in requests.items()
    }
    completed = all(o.completed for o in outcomes.values())
    finish_times = [
        o.completion_time for o in outcomes.values() if o.completion_time
    ]
    return FleetRunResult(
        completed=completed,
        total_cost=sum(o.cost for o in outcomes.values()),
        completion_time=max(finish_times) if finish_times else float("nan"),
        per_type_cost={n: o.cost for n, o in outcomes.items()},
        interruptions=sum(o.interruptions for o in outcomes.values()),
    )
