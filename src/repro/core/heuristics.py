"""Baseline bidding heuristics the paper compares against (Section 7.1).

* :func:`percentile_bid` — bid a fixed percentile of the historical spot
  prices (the paper evaluates the 90th percentile and shows it saves less
  than the optimal bid).
* :func:`retrospective_best_price` — the "best offline price in
  retrospect": search the last 10 hours of history for the minimal price
  that would have consistently exceeded the spot price for one hour.  The
  paper shows this price can be *below* the optimal one-time bid, i.e.
  bidding it risks termination — 10 hours of history is insufficient.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..errors import TraceError
from . import costs
from .distributions import PriceDistribution
from .types import BidDecision, BidKind, JobSpec

__all__ = ["percentile_bid", "retrospective_best_price"]


def percentile_bid(
    dist: PriceDistribution,
    job: JobSpec,
    *,
    percentile: float = 90.0,
    kind: BidKind = BidKind.PERSISTENT,
) -> BidDecision:
    """Bid the given percentile of the spot-price distribution.

    The decision's expected quantities are evaluated with the same model
    as the optimal strategies so the comparison in Figure 6 is apples to
    apples.
    """
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {percentile!r}")
    price = dist.ppf(percentile / 100.0)
    accept = dist.cdf(price)

    if kind is BidKind.ONE_TIME:
        expected_cost = costs.onetime_cost(dist, price, job)
        completion = (
            job.slot_length * (1.0 / accept - 1.0) + job.execution_time
            if accept > 0.0
            else math.inf
        )
        running: Optional[float] = job.execution_time
        interruptions: Optional[float] = 0.0
    else:
        expected_cost = costs.persistent_cost(dist, price, job)
        completion = costs.persistent_completion_time(dist, price, job)
        running = costs.persistent_running_time(dist, price, job)
        interruptions = (
            costs.expected_interruptions(dist, price, completion, job.slot_length)
            if math.isfinite(completion)
            else math.inf
        )

    return BidDecision(
        price=price,
        kind=kind,
        expected_cost=expected_cost if math.isfinite(expected_cost) else float("inf"),
        expected_completion_time=completion,
        expected_running_time=running,
        expected_interruptions=interruptions,
        acceptance_probability=accept,
    )


def retrospective_best_price(
    prices: Sequence[float],
    *,
    lookback_slots: int = 120,
    run_slots: int = 12,
) -> float:
    """The "best offline price in retrospect" heuristic (§7.1).

    Over the last ``lookback_slots`` observations (default 10 hours of
    5-minute slots), find — for every window of ``run_slots`` consecutive
    slots (default one hour) — the minimal bid that would have survived
    that window, namely the window's maximum price.  Return the smallest
    such bid over all windows: the cheapest price that *would have* kept
    an instance running for one uninterrupted hour somewhere in the recent
    past.

    Raises :class:`TraceError` if fewer than ``run_slots`` observations
    are available.
    """
    if run_slots < 1:
        raise ValueError(f"run_slots must be >= 1, got {run_slots!r}")
    if lookback_slots < run_slots:
        raise ValueError(
            f"lookback_slots ({lookback_slots}) must be >= run_slots ({run_slots})"
        )
    arr = np.asarray(prices, dtype=float)
    if arr.ndim != 1:
        raise TraceError("prices must be a 1-D sequence")
    if arr.size < run_slots:
        raise TraceError(
            f"need at least {run_slots} price observations, got {arr.size}"
        )
    window = arr[-lookback_slots:]
    views = np.lib.stride_tricks.sliding_window_view(window, run_slots)
    return float(views.max(axis=1).min())
