"""Bidding for MapReduce jobs (Section 6).

Two strategies are composed here:

* **Slave nodes** (§6.1): the job is split into ``M`` equal sub-jobs, one
  persistent request each, sharing a single bid price.  The cost Φ_mp
  (eq. 19) is the persistent cost Φ_sp (eq. 15) with the numerator
  ``t_s − t_r`` replaced by the effective work ``t_s + t_o − M·t_r``, so
  the *optimal bid price is identical* to the single-instance persistent
  bid and we reuse that machinery through an equivalent ``JobSpec``.

* **Master node** (§6.2): one one-time request that must outlive the
  slaves.  Its required runtime comes from eq. 20's first constraint; the
  bid follows Prop. 4 with that runtime as the execution time.

The extracted paper text is ambiguous about one factor in eq. 20 (see
DESIGN.md §2); we take the worst-case sub-job completion time from eq. 18
divided by ``F_v(p_v)`` and subtract the printed slack term
``(M−1)·t_k/(1−F_v(p_v))``.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import InfeasibleBidError, PlanError
from . import costs
from .distributions import PriceDistribution
from .onetime import optimal_onetime_bid
from .persistent import optimal_persistent_bid
from .types import (
    BidDecision,
    BidKind,
    JobSpec,
    MapReduceJobSpec,
    MapReducePlan,
    ParallelJobSpec,
)

__all__ = [
    "equivalent_single_job",
    "optimal_parallel_bid",
    "parallel_speedup_condition",
    "required_master_time",
    "minimum_slaves",
    "plan_master_slave",
    "plan_with_optimal_slaves",
]

#: Upper bound on the slave-count search in :func:`plan_with_optimal_slaves`.
_MAX_SLAVES_SEARCH = 64


def equivalent_single_job(job: ParallelJobSpec) -> JobSpec:
    """Map a parallel job onto a single-instance job with the same Φ shape.

    Φ_mp(p) equals Φ_sp(p) of a job with ``t_s' − t_r = t_s + t_o − M·t_r``,
    i.e. ``t_s' = effective_work + t_r``.  Optimizing that equivalent job
    therefore yields both the optimal slave bid and (after scaling) all of
    eq. 17–19's quantities.
    """
    if job.effective_work <= 0.0:
        raise InfeasibleBidError(
            f"splitting into M={job.num_instances} sub-jobs budgets more "
            f"recovery ({job.num_instances}×{job.recovery_time:.6g}h) than the "
            f"job's work ({job.execution_time + job.overhead_time:.6g}h)"
        )
    return JobSpec(
        execution_time=job.effective_work + job.recovery_time,
        recovery_time=job.recovery_time,
        slot_length=job.slot_length,
    )


def optimal_parallel_bid(
    dist: PriceDistribution,
    job: ParallelJobSpec,
    *,
    ondemand_price: Optional[float] = None,
    method: str = "auto",
) -> BidDecision:
    """Solve eq. 19: the shared bid price for ``M`` persistent sub-jobs.

    Returns a :class:`BidDecision` whose expected quantities describe the
    whole parallel job: ``expected_cost`` is Φ_mp summed over instances,
    ``expected_completion_time`` is the slowest sub-job's wall-clock time
    (eq. 18 divided by ``F(p)``).
    """
    surrogate = equivalent_single_job(job)
    inner = optimal_persistent_bid(dist, surrogate, method=method)
    price = inner.price

    expected_cost = costs.parallel_cost(dist, price, job)
    if ondemand_price is not None:
        ceiling = costs.ondemand_cost(ondemand_price, job.execution_time)
        if expected_cost > ceiling * (1.0 + 1e-12):
            raise InfeasibleBidError(
                f"parallel spot cost {expected_cost:.6g} exceeds the "
                f"on-demand cost {ceiling:.6g} (eq. 19 constraint)"
            )

    completion = costs.parallel_completion_time(dist, price, job)
    total_running = costs.parallel_total_running_time(dist, price, job)
    interruptions = (
        job.num_instances
        * costs.expected_interruptions(dist, price, completion, job.slot_length)
        if math.isfinite(completion)
        else math.inf
    )
    return BidDecision(
        price=price,
        kind=BidKind.PERSISTENT,
        expected_cost=expected_cost,
        expected_completion_time=completion,
        expected_running_time=total_running,
        expected_interruptions=interruptions,
        acceptance_probability=dist.cdf(price),
    )


def parallel_speedup_condition(
    dist: PriceDistribution, price: float, job: ParallelJobSpec
) -> bool:
    """Section 6.1's condition for splitting to shorten completion time:

    ``t_o < (M − 1)·t_k / (1 − F_π(p))``.

    Always true for ``t_o == 0`` and ``M > 1``; for ``M == 1`` splitting is
    a no-op and this returns ``t_o <= 0``... strictly, ``t_o < 0`` is
    impossible, so M == 1 with overhead never "speeds up".
    """
    accept = dist.cdf(price)
    if accept >= 1.0:
        return job.num_instances > 1 or job.overhead_time == 0.0
    bound = (job.num_instances - 1) * job.slot_length / (1.0 - accept)
    return job.overhead_time < bound


def required_master_time(
    slave_dist: PriceDistribution,
    slave_price: float,
    job: ParallelJobSpec,
    *,
    include_slack: bool = True,
) -> float:
    """The master runtime demanded by eq. 20's first constraint (hours).

    The leading term is the worst-case sub-job completion time — eq. 18
    divided by ``F_v(p_v)`` to account for idle slots; ``include_slack``
    subtracts the printed ``(M−1)·t_k/(1−F_v(p_v))`` term, which credits
    the master for the time the slowest slaves spend waiting on each
    other.  The result may be non-positive for large ``M``, meaning any
    master bid satisfies the constraint.
    """
    completion = costs.parallel_completion_time(slave_dist, slave_price, job)
    if not include_slack:
        return completion
    accept = slave_dist.cdf(slave_price)
    if accept >= 1.0:
        return completion
    slack = (job.num_instances - 1) * job.slot_length / (1.0 - accept)
    return completion - slack


def minimum_slaves(
    master_dist: PriceDistribution,
    slave_dist: PriceDistribution,
    job: MapReduceJobSpec,
    master_price: float,
    *,
    max_search: int = _MAX_SLAVES_SEARCH,
) -> int:
    """Smallest ``M`` for which eq. 20's first constraint holds.

    The master's expected uninterrupted time at ``master_price``
    (eq. 8) must cover :func:`required_master_time`.  The paper observes
    this minimum "can be as low as 3 or 4" (§6.2).

    Raises :class:`PlanError` when no ``M <= max_search`` works.
    """
    capability = costs.expected_uninterrupted_time(
        master_dist, master_price, job.slot_length
    )
    for m in range(1, max_search + 1):
        candidate = job.with_slaves(m).slaves_spec
        if candidate.effective_work <= 0.0:
            # Larger M only shrinks effective work further.
            break
        try:
            slave_bid = optimal_parallel_bid(slave_dist, candidate)
        except InfeasibleBidError:
            continue
        required = required_master_time(slave_dist, slave_bid.price, candidate)
        if required <= capability:
            return m
    raise PlanError(
        f"no slave count in [1, {max_search}] satisfies eq. 20's master "
        f"runtime constraint at master bid {master_price:.6g}"
    )


def plan_master_slave(
    master_dist: PriceDistribution,
    slave_dist: PriceDistribution,
    job: MapReduceJobSpec,
    *,
    master_ondemand: Optional[float] = None,
    slave_ondemand: Optional[float] = None,
    method: str = "auto",
) -> MapReducePlan:
    """Solve eq. 20: joint bids for the master and ``M`` slave nodes.

    Following the paper's decomposition, the slave bid is set first (it is
    independent of the master), the master's required runtime is derived
    from the slaves' worst-case completion time, and the master then bids
    as a one-time request (Prop. 4) for that runtime.
    """
    slaves = job.slaves_spec
    slave_bid = optimal_parallel_bid(
        slave_dist, slaves, ondemand_price=slave_ondemand, method=method
    )

    # The master must stay up for the slaves' full wall-clock completion
    # (the no-slack requirement); the slack-adjusted value is reported for
    # the constraint bookkeeping.
    master_runtime = required_master_time(
        slave_dist, slave_bid.price, slaves, include_slack=False
    )
    if not math.isfinite(master_runtime) or master_runtime <= 0.0:
        raise PlanError(
            f"slave plan yields non-finite completion time {master_runtime!r}; "
            "cannot size the master request"
        )
    master_job = JobSpec(
        execution_time=master_runtime, slot_length=job.slot_length
    )
    master_bid = optimal_onetime_bid(
        master_dist, master_job, ondemand_price=master_ondemand
    )

    constraint_time = required_master_time(
        slave_dist, slave_bid.price, slaves, include_slack=True
    )
    min_m = minimum_slaves(master_dist, slave_dist, job, master_bid.price)

    return MapReducePlan(
        job=job,
        master_bid=master_bid,
        slave_bid=slave_bid,
        required_master_time=constraint_time,
        min_slaves=min_m,
    )


def plan_with_optimal_slaves(
    master_dist: PriceDistribution,
    slave_dist: PriceDistribution,
    job: MapReduceJobSpec,
    *,
    master_ondemand: Optional[float] = None,
    slave_ondemand: Optional[float] = None,
    max_slaves: int = _MAX_SLAVES_SEARCH,
) -> MapReducePlan:
    """Sweep the slave count ``M`` and return the cheapest feasible plan.

    Only plans with ``M >= min_slaves`` (eq. 20 feasibility) compete; the
    total expected cost Φ_so(p_m) + Φ_mp(p_v) is minimized, breaking ties
    toward fewer slaves.
    """
    best: Optional[MapReducePlan] = None
    for m in range(1, max_slaves + 1):
        candidate_job = job.with_slaves(m)
        if candidate_job.slaves_spec.effective_work <= 0.0:
            break
        try:
            plan = plan_master_slave(
                master_dist,
                slave_dist,
                candidate_job,
                master_ondemand=master_ondemand,
                slave_ondemand=slave_ondemand,
            )
        except (InfeasibleBidError, PlanError):
            continue
        if m < plan.min_slaves:
            continue
        if best is None or plan.total_expected_cost < best.total_expected_cost:
            best = plan
    if best is None:
        raise PlanError(
            f"no feasible master/slave plan with at most {max_slaves} slaves"
        )
    return best
