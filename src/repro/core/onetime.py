"""Optimal bidding for one-time spot requests (Section 5.1, Prop. 4).

A one-time request is terminated permanently the first time the spot price
exceeds the bid, so the user wants the cheapest bid whose expected
uninterrupted running time (eq. 8) covers the whole execution time:

    p* = max(π_min, F_π⁻¹(1 − t_k/t_s))           (eq. 11)

Because the expected price paid ``E[π | π ≤ p]`` increases with ``p``
(Prop. 4's proof), the cheapest *feasible* bid is optimal.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import InfeasibleBidError
from . import costs
from .distributions import PriceDistribution
from .types import BidDecision, BidKind, JobSpec

__all__ = ["onetime_target_quantile", "optimal_onetime_bid"]


def onetime_target_quantile(job: JobSpec) -> float:
    """The quantile ``1 − t_k/t_s`` of eq. 11, clamped at 0.

    Jobs no longer than one time slot (``t_s <= t_k``) never span a price
    change, so they can safely bid the minimum spot price.
    """
    return max(0.0, 1.0 - job.slot_length / job.execution_time)


def optimal_onetime_bid(
    dist: PriceDistribution,
    job: JobSpec,
    *,
    ondemand_price: Optional[float] = None,
) -> BidDecision:
    """Solve eq. 10 and return the optimal one-time bid (Prop. 4).

    Parameters
    ----------
    dist:
        The spot-price distribution ``F_π`` predicted from history.
    job:
        The job; only ``execution_time`` and ``slot_length`` matter
        (a one-time request never recovers, so ``recovery_time`` is
        irrelevant here).
    ondemand_price:
        ``π̄``.  When given, enforce the constraint
        ``Φ_so(p*) ≤ t_s·π̄`` and cap the bid at ``π̄`` — a rational user
        would otherwise just use an on-demand instance.

    Raises
    ------
    InfeasibleBidError
        If the required acceptance quantile cannot be met with a bid at or
        below the on-demand price, or if even the optimal spot bid costs
        more than on demand.
    """
    quantile = onetime_target_quantile(job)
    price = max(dist.lower, dist.ppf(quantile))
    if dist.cdf(price) <= 0.0:
        # Continuous distributions assign zero acceptance probability to
        # the floor itself; the optimum is then an infimum, so take the
        # ε-optimal bid at a tiny but positive acceptance quantile.
        price = dist.ppf(max(quantile, 1e-6))

    if ondemand_price is not None:
        if price > ondemand_price:
            raise InfeasibleBidError(
                f"one-time bid requires price {price:.6g} above the "
                f"on-demand price {ondemand_price:.6g}; the job is too long "
                "to protect from interruption on a spot instance"
            )

    expected_cost = costs.onetime_cost(dist, price, job)
    if ondemand_price is not None:
        ceiling = costs.ondemand_cost(ondemand_price, job.execution_time)
        if expected_cost > ceiling * (1.0 + 1e-12):
            raise InfeasibleBidError(
                f"expected spot cost {expected_cost:.6g} exceeds the "
                f"on-demand cost {ceiling:.6g}"
            )

    accept = dist.cdf(price)
    # The request idles (pending) until its first acceptance: geometric
    # waiting time with success probability F(p), then runs for t_s.
    if accept > 0.0:
        expected_wait = job.slot_length * (1.0 / accept - 1.0)
        completion = expected_wait + job.execution_time
    else:  # pragma: no cover - guarded by the quantile construction
        completion = math.inf

    return BidDecision(
        price=price,
        kind=BidKind.ONE_TIME,
        expected_cost=expected_cost,
        expected_completion_time=completion,
        expected_running_time=job.execution_time,
        expected_interruptions=0.0,
        acceptance_probability=accept,
    )
