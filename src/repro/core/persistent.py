"""Optimal bidding for persistent spot requests (Section 5.2, Prop. 5).

A persistent request is resubmitted after every interruption, so the job
always finishes eventually; the bid price trades the per-hour price paid
against interruption recovery time.  The expected cost

    Φ_sp(p) = T·F(p) · E[π | π ≤ p]                       (eq. 15)

first decreases and then increases in ``p`` when the price PDF is
decreasing, and its minimizer solves ``ψ(p) = t_k/t_r − 1`` (Prop. 5,
eq. 16).  This module provides both solution paths:

* ``method="scan"`` — exact minimization over the discrete candidate set
  (the unique observed prices for an ECDF, or a dense grid otherwise).
  This makes no shape assumptions and is the default for empirical data.
* ``method="psi"`` — root-solve the first-order condition, matching the
  paper's closed form.  Valid when the PDF is monotonically decreasing.

Both agree (to grid resolution) whenever Prop. 5's hypothesis holds; the
test suite checks this against analytic distributions.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np
from scipy import optimize

from ..errors import InfeasibleBidError
from . import costs
from .distributions import PriceDistribution
from .types import BidDecision, BidKind, JobSpec

__all__ = [
    "psi_target",
    "optimal_persistent_bid",
    "solve_psi_bid",
    "minimize_cost_over_candidates",
    "candidate_prices",
]

#: Number of grid points used when scanning a continuous distribution.
_GRID_POINTS = 2048


def psi_target(job: JobSpec) -> float:
    """The right-hand side of eq. 16: ``t_k/t_r − 1``.

    Infinite when the job recovers instantly (``t_r == 0``), in which case
    interruptions are free and the cheapest bid wins.
    """
    if job.recovery_time == 0.0:
        return math.inf
    return job.slot_length / job.recovery_time - 1.0


def _feasible_lower_bound(dist: PriceDistribution, job: JobSpec) -> float:
    """Lowest bid satisfying the interruptibility condition (eq. 14).

    If ``t_r < t_k`` every bid is feasible (the paper's observation after
    eq. 14); otherwise the bid must reach the quantile ``1 − t_k/t_r``.
    """
    if job.recovery_time < job.slot_length:
        return dist.lower
    quantile = 1.0 - job.slot_length / job.recovery_time
    return dist.ppf(quantile)


def candidate_prices(dist: PriceDistribution, low: float) -> np.ndarray:
    """Bid prices worth evaluating, restricted to ``[low, upper]``.

    Discrete distributions contribute their atoms; continuous ones a
    dense grid.  Shared by the optimizers here and by the risk-aware
    extensions.
    """
    candidates = dist.candidate_bids()
    if candidates is None:
        candidates = np.linspace(dist.lower, dist.upper, _GRID_POINTS)
    mask = candidates >= low - 1e-15
    kept = candidates[mask]
    if kept.size == 0:
        kept = np.asarray([dist.upper])
    return kept


def minimize_cost_over_candidates(
    dist: PriceDistribution,
    job: JobSpec,
    cost_fn: Callable[[PriceDistribution, float, JobSpec], float],
) -> float:
    """Return the candidate bid minimizing ``cost_fn``; ties → lowest price.

    Distributions exposing the vectorized pair ``cdf_array`` /
    ``partial_expectation_array`` (the empirical ECDF, the equilibrium
    model) are scanned in one vectorized pass through eq. 15's closed
    form; others fall back to a scalar loop over a dense grid.
    """
    low = _feasible_lower_bound(dist, job)
    candidates = candidate_prices(dist, low)

    if hasattr(dist, "cdf_array") and hasattr(dist, "partial_expectation_array"):
        accept = dist.cdf_array(candidates)
        below = dist.partial_expectation_array(candidates)
        r = job.recovery_time / job.slot_length
        denom = 1.0 - r * (1.0 - accept)
        with np.errstate(divide="ignore", invalid="ignore"):
            running = (job.execution_time - job.recovery_time) / denom
            cost = running * below / accept
        cost = np.where((denom <= 0) | (accept <= 0), np.inf, cost)
    else:
        cost = np.asarray([cost_fn(dist, float(p), job) for p in candidates])

    finite = np.isfinite(cost)
    if not finite.any():
        raise InfeasibleBidError(
            f"no feasible bid price: recovery time t_r={job.recovery_time:.6g}h "
            f"violates eq. 14 at every price in [{dist.lower:.6g}, {dist.upper:.6g}]"
        )
    best = int(np.argmin(np.where(finite, cost, np.inf)))
    return float(candidates[best])


def solve_psi_bid(dist: PriceDistribution, job: JobSpec) -> Optional[float]:
    """Solve the first-order condition ``ψ(p) = t_k/t_r − 1`` (eq. 16).

    Returns ``None`` when no sign change is bracketed (e.g. the optimum is
    at a support boundary, or the PDF is not decreasing so ψ is not
    monotone).  Callers should then fall back to a scan.
    """
    target = psi_target(job)
    if math.isinf(target):
        return None
    low = max(_feasible_lower_bound(dist, job), dist.lower)

    def excess(p: float) -> float:
        if dist.cdf(p) <= 0.0:
            # Below the support ψ is degenerate; exclude from brackets.
            return math.nan
        value = costs.psi(dist, p)
        if math.isinf(value):
            return math.inf
        return value - target

    # Bracket the root on a coarse grid before refining with brentq:
    # ψ − target goes from positive (cheap bids, where avoiding even
    # cheap interruptions is worth a higher price) to negative as p
    # rises past the optimum (ψ decreases through the target).
    grid = np.linspace(low, dist.upper, 256)
    values = [excess(float(p)) for p in grid]
    for i in range(len(grid) - 1):
        a, b = values[i], values[i + 1]
        if math.isinf(a) or math.isinf(b) or math.isnan(a) or math.isnan(b):
            continue
        if a == 0.0:
            return float(grid[i])
        if a * b < 0.0:
            return float(
                optimize.brentq(excess, float(grid[i]), float(grid[i + 1]), xtol=1e-12)
            )
    return None


def optimal_persistent_bid(
    dist: PriceDistribution,
    job: JobSpec,
    *,
    ondemand_price: Optional[float] = None,
    method: str = "auto",
) -> BidDecision:
    """Solve eq. 15 and return the optimal persistent bid.

    Parameters
    ----------
    dist:
        The predicted spot-price distribution.
    job:
        Job with ``execution_time`` (t_s), ``recovery_time`` (t_r) and
        ``slot_length`` (t_k).  Requires ``t_s > t_r``.
    ondemand_price:
        When given, enforce ``Φ_sp(p*) ≤ t_s·π̄`` (eq. 15's first
        constraint).
    method:
        ``"auto"``/``"scan"`` — exact candidate scan (default);
        ``"psi"`` — Prop. 5's first-order condition with a scan fallback.

    Raises
    ------
    InfeasibleBidError
        If eq. 14 fails at every admissible price, or the best spot bid
        still costs more than on demand.
    """
    if method not in {"auto", "scan", "psi"}:
        raise ValueError(f"unknown method {method!r}; use 'auto', 'scan' or 'psi'")
    if job.execution_time <= job.recovery_time:
        raise InfeasibleBidError(
            f"job with t_s={job.execution_time:.6g}h <= t_r={job.recovery_time:.6g}h "
            "cannot make progress between interruptions"
        )

    price: Optional[float] = None
    if method == "psi":
        price = solve_psi_bid(dist, job)
    if price is None:
        if job.recovery_time == 0.0:
            # Interruptions are free: the cheapest bid minimizes eq. 15.
            price = dist.lower
        else:
            price = minimize_cost_over_candidates(dist, job, costs.persistent_cost)

    expected_cost = costs.persistent_cost(dist, price, job)
    if math.isinf(expected_cost):
        raise InfeasibleBidError(
            f"persistent bid at {price:.6g} has unbounded expected cost "
            "(interruptibility condition eq. 14 violated)"
        )
    if ondemand_price is not None:
        ceiling = costs.ondemand_cost(ondemand_price, job.execution_time)
        if expected_cost > ceiling * (1.0 + 1e-12):
            raise InfeasibleBidError(
                f"expected persistent spot cost {expected_cost:.6g} exceeds "
                f"the on-demand cost {ceiling:.6g}; run on demand instead"
            )

    completion = costs.persistent_completion_time(dist, price, job)
    running = costs.persistent_running_time(dist, price, job)
    interruptions = (
        costs.expected_interruptions(dist, price, completion, job.slot_length)
        if math.isfinite(completion)
        else math.inf
    )
    return BidDecision(
        price=price,
        kind=BidKind.PERSISTENT,
        expected_cost=expected_cost,
        expected_completion_time=completion,
        expected_running_time=running,
        expected_interruptions=interruptions,
        acceptance_probability=dist.cdf(price),
    )
