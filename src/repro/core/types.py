"""Core value types shared across the bidding strategies.

These dataclasses carry the paper's notation (Table 1):

=========  ==================================================
``t_s``    job execution time without interruptions (hours)
``t_r``    recovery time per interruption (hours)
``t_o``    overhead time of splitting into sub-jobs (hours)
``t_k``    length of one market time slot (hours)
``p``      user bid price ($/hour)
``π̄``      on-demand price ($/hour)
=========  ==================================================
"""

from __future__ import annotations

import enum
import math
import warnings
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from ..constants import DEFAULT_SLOT_HOURS
from ..errors import PlanError


class BidKind(enum.Enum):
    """The two spot request types offered by EC2 (Section 3.2)."""

    ONE_TIME = "one-time"
    PERSISTENT = "persistent"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Strategy(enum.Enum):
    """Bidding strategies understood by the client and sweep layers.

    ``ONE_TIME`` solves Prop. 4, ``PERSISTENT`` solves Prop. 5 and
    ``PERCENTILE`` is the Section 7 heuristic baseline.  ``PORTFOLIO``
    mixes on-demand and persistent spot capacity, minimizing expected
    cost under a variance cap; ``CVAR`` picks the bid minimizing the
    conditional value-at-risk of the realized sweep cost across
    historical windows.  The enum replaces the legacy string-typed
    ``strategy=`` arguments; strings are still accepted through
    :func:`normalize_strategy` with a :class:`DeprecationWarning`.
    """

    ONE_TIME = "one-time"
    PERSISTENT = "persistent"
    PERCENTILE = "percentile"
    PORTFOLIO = "portfolio"
    CVAR = "cvar"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def bid_kind(self) -> BidKind:
        """The spot request type this strategy submits (all non-one-time
        strategies place persistent requests; PORTFOLIO's spot leg and
        CVAR's swept bid both survive interruptions)."""
        return BidKind.ONE_TIME if self is Strategy.ONE_TIME else BidKind.PERSISTENT

    @property
    def sweepable(self) -> bool:
        """Whether :func:`repro.sweep.engine.run_sweep` can simulate this
        strategy directly over a bid grid.  Selection strategies
        (PERCENTILE, PORTFOLIO, CVAR) pick a price first and then sweep
        it as ONE_TIME or PERSISTENT."""
        return self in (Strategy.ONE_TIME, Strategy.PERSISTENT)


#: Legacy spelling drift observed in the wild for the string API.
_STRATEGY_ALIASES = {
    "one-time": Strategy.ONE_TIME,
    "onetime": Strategy.ONE_TIME,
    "one_time": Strategy.ONE_TIME,
    "persistent": Strategy.PERSISTENT,
    "percentile": Strategy.PERCENTILE,
    "portfolio": Strategy.PORTFOLIO,
    "cvar": Strategy.CVAR,
}


def normalize_strategy(strategy: Union[Strategy, str]) -> Strategy:
    """Coerce a strategy argument to the :class:`Strategy` enum.

    Enum members pass through untouched.  Legacy strings (including the
    ``"onetime"``/``"one_time"`` spelling drift) are accepted with a
    :class:`DeprecationWarning`; anything else raises :class:`ValueError`.
    """
    if isinstance(strategy, Strategy):
        return strategy
    if isinstance(strategy, str):
        resolved = _STRATEGY_ALIASES.get(strategy.strip().lower())
        if resolved is not None:
            warnings.warn(
                f"passing strategy={strategy!r} as a string is deprecated; "
                f"use repro.Strategy.{resolved.name} instead",
                DeprecationWarning,
                stacklevel=3,
            )
            return resolved
    raise ValueError(
        f"unknown strategy {strategy!r}; use Strategy.ONE_TIME, "
        "Strategy.PERSISTENT, Strategy.PERCENTILE, Strategy.PORTFOLIO "
        "or Strategy.CVAR"
    )


@dataclass(frozen=True)
class JobSpec:
    """A single-instance job, as modeled in Section 5.

    Parameters
    ----------
    execution_time:
        ``t_s`` — time the job needs on an instance without interruptions,
        in hours.  Must be positive.
    recovery_time:
        ``t_r`` — extra running time needed to recover from one
        interruption, in hours.  Zero means the job checkpoints for free.
    slot_length:
        ``t_k`` — market time-slot length in hours (default: five minutes).
    """

    execution_time: float
    recovery_time: float = 0.0
    slot_length: float = DEFAULT_SLOT_HOURS

    def __post_init__(self) -> None:
        if not (self.execution_time > 0 and math.isfinite(self.execution_time)):
            raise ValueError(
                f"execution_time must be positive and finite, got {self.execution_time!r}"
            )
        if not (self.recovery_time >= 0 and math.isfinite(self.recovery_time)):
            raise ValueError(
                f"recovery_time must be non-negative and finite, got {self.recovery_time!r}"
            )
        if not (self.slot_length > 0 and math.isfinite(self.slot_length)):
            raise ValueError(
                f"slot_length must be positive and finite, got {self.slot_length!r}"
            )

    @property
    def slots_required(self) -> float:
        """``t_s / t_k`` — execution time measured in time slots."""
        return self.execution_time / self.slot_length

    @property
    def recovery_slots(self) -> float:
        """``t_r / t_k`` — recovery time measured in time slots."""
        return self.recovery_time / self.slot_length

    def with_recovery(self, recovery_time: float) -> "JobSpec":
        """Return a copy of this spec with a different recovery time."""
        return replace(self, recovery_time=recovery_time)


@dataclass(frozen=True)
class ParallelJobSpec:
    """A job split across ``num_instances`` equal sub-jobs (Section 6.1).

    Parameters
    ----------
    execution_time:
        ``t_s`` — the *total* execution time of the whole job on a single
        instance, in hours.
    num_instances:
        ``M`` — number of equal sub-jobs run on parallel spot instances.
    overhead_time:
        ``t_o`` — constant extra running time caused by splitting the job
        (message passing between sub-jobs), in hours.
    recovery_time, slot_length:
        As in :class:`JobSpec`.
    """

    execution_time: float
    num_instances: int
    overhead_time: float = 0.0
    recovery_time: float = 0.0
    slot_length: float = DEFAULT_SLOT_HOURS

    def __post_init__(self) -> None:
        if not (self.execution_time > 0 and math.isfinite(self.execution_time)):
            raise ValueError(
                f"execution_time must be positive and finite, got {self.execution_time!r}"
            )
        if not (isinstance(self.num_instances, int) and self.num_instances >= 1):
            raise ValueError(
                f"num_instances must be an integer >= 1, got {self.num_instances!r}"
            )
        if not (self.overhead_time >= 0 and math.isfinite(self.overhead_time)):
            raise ValueError(
                f"overhead_time must be non-negative and finite, got {self.overhead_time!r}"
            )
        if not (self.recovery_time >= 0 and math.isfinite(self.recovery_time)):
            raise ValueError(
                f"recovery_time must be non-negative and finite, got {self.recovery_time!r}"
            )
        if not (self.slot_length > 0 and math.isfinite(self.slot_length)):
            raise ValueError(
                f"slot_length must be positive and finite, got {self.slot_length!r}"
            )

    @property
    def effective_work(self) -> float:
        """``t_s + t_o − M·t_r`` — the numerator of eq. 17.

        This is the total running time the M instances would accumulate if
        no interruptions occurred beyond the one recovery budgeted per
        instance.  It must be positive for the paper's running-time formula
        to be meaningful.
        """
        return (
            self.execution_time
            + self.overhead_time
            - self.num_instances * self.recovery_time
        )

    @property
    def per_instance_work(self) -> float:
        """``(t_s + t_o)/M`` — work handed to each sub-job, in hours."""
        return (self.execution_time + self.overhead_time) / self.num_instances

    def as_single_instance(self) -> JobSpec:
        """Collapse to a single-instance :class:`JobSpec` (M = 1, no split)."""
        return JobSpec(
            execution_time=self.execution_time,
            recovery_time=self.recovery_time,
            slot_length=self.slot_length,
        )


@dataclass(frozen=True)
class MapReduceJobSpec:
    """A MapReduce job with one master and ``num_slaves`` slaves (§6.2).

    The master is placed as a one-time request (it must never be
    interrupted); the slaves are persistent requests sharing one bid price.
    Master and slaves may target different instance types, hence the two
    on-demand prices carried by the planner rather than this spec.
    """

    execution_time: float
    num_slaves: int
    overhead_time: float = 0.0
    recovery_time: float = 0.0
    slot_length: float = DEFAULT_SLOT_HOURS

    def __post_init__(self) -> None:
        if not (isinstance(self.num_slaves, int) and self.num_slaves >= 1):
            raise ValueError(
                f"num_slaves must be an integer >= 1, got {self.num_slaves!r}"
            )
        # Delegate the remaining validation to ParallelJobSpec's rules.
        self.slaves_spec  # noqa: B018 - validation side effect

    @property
    def slaves_spec(self) -> ParallelJobSpec:
        """The slave side of the job as a :class:`ParallelJobSpec`."""
        return ParallelJobSpec(
            execution_time=self.execution_time,
            num_instances=self.num_slaves,
            overhead_time=self.overhead_time,
            recovery_time=self.recovery_time,
            slot_length=self.slot_length,
        )

    def with_slaves(self, num_slaves: int) -> "MapReduceJobSpec":
        """Return a copy with a different slave count ``M``."""
        return replace(self, num_slaves=num_slaves)


@dataclass(frozen=True)
class BidDecision:
    """The output of a bid optimizer.

    Attributes
    ----------
    price:
        The bid price ``p*`` in $/hour.
    kind:
        Whether the bid is placed as a one-time or persistent request.
    expected_cost:
        The model-predicted total dollar cost of completing the job
        (Φ_so, Φ_sp or Φ_mp evaluated at ``price``).
    expected_completion_time:
        Predicted wall-clock time ``T`` from submission to completion,
        including idle time, in hours.  ``None`` when the model does not
        predict it (e.g. heuristic bids).
    expected_running_time:
        Predicted time actually spent running on the instance
        (``T·F(p)``), in hours.
    expected_interruptions:
        Predicted number of interruptions over the job's lifetime.
    acceptance_probability:
        ``F_π(p*)`` — probability the bid beats the spot price in a slot.
    """

    price: float
    kind: BidKind
    expected_cost: float
    expected_completion_time: Optional[float] = None
    expected_running_time: Optional[float] = None
    expected_interruptions: Optional[float] = None
    acceptance_probability: Optional[float] = None

    def __post_init__(self) -> None:
        if not (self.price >= 0 and math.isfinite(self.price)):
            raise ValueError(f"price must be non-negative and finite, got {self.price!r}")
        if not (self.expected_cost >= 0 and math.isfinite(self.expected_cost)):
            raise ValueError(
                f"expected_cost must be non-negative and finite, got {self.expected_cost!r}"
            )

    @property
    def degraded(self) -> bool:
        """True only on :class:`DegradedDecision` fallbacks."""
        return False


@dataclass(frozen=True)
class DegradedDecision(BidDecision):
    """A :class:`BidDecision` produced by graceful degradation.

    When every spot bid is infeasible (e.g. a fault-perturbed
    distribution violates the interruptibility condition at all
    admissible prices), the client can fall back to bidding the
    on-demand baseline instead of raising
    :class:`~repro.errors.InfeasibleBidError`.  The marker class keeps
    the fallback explicit: downstream code can branch on
    ``decision.degraded`` and ``reason`` records what went wrong.
    """

    reason: str = ""

    @property
    def degraded(self) -> bool:
        return True


@dataclass(frozen=True)
class PortfolioDecision(BidDecision):
    """A :class:`BidDecision` for the on-demand + spot portfolio strategy.

    ``price`` is the spot leg's persistent bid ($/hour); on-demand hours
    are bought at the quoted π̄ for ``spot_fraction``'s complement of the
    work.  ``expected_cost`` covers both legs.
    """

    #: Fraction of the execution time run on spot (1 − w in the split).
    spot_fraction: float = 0.0
    #: Var(paid price) of the blended payment stream, ($/hour)².
    price_variance: float = 0.0


@dataclass(frozen=True)
class CvarDecision(BidDecision):
    """A :class:`BidDecision` chosen by CVaR over swept historical costs.

    ``expected_cost`` is the mean realized cost across windows;
    ``cvar`` is the mean of the worst ``(1 − alpha)`` tail.
    """

    #: Tail level: CVaR averages the worst (1 − alpha) fraction of costs.
    alpha: float = 0.95
    #: CVaR_alpha of the realized sweep cost, dollars.
    cvar: float = 0.0
    #: Number of historical windows the bid was scored on.
    n_windows: int = 0


@dataclass(frozen=True)
class DecisionRequest:
    """One "what should I bid for this job?" question (Figure 1's input).

    The request form is the canonical way to ask
    :meth:`~repro.core.client.BiddingClient.decide` for a bid — batch
    callers and the :mod:`repro.serve` daemon build the same object, so
    their answers are comparable artifacts.  The legacy
    ``decide(job, strategy=..., ...)`` keyword form survives as a
    deprecated shim that wraps its arguments in one of these.

    Parameters
    ----------
    job:
        The :class:`JobSpec` to bid for.
    strategy:
        The bidding strategy; legacy strings are accepted through
        :func:`normalize_strategy` (with its :class:`DeprecationWarning`).
    percentile:
        Heuristic percentile, only meaningful for
        :attr:`Strategy.PERCENTILE`.
    max_variance:
        Cap on the conditional price variance of the blended payment
        stream, only meaningful for :attr:`Strategy.PORTFOLIO`; ``None``
        leaves the portfolio unconstrained.
    cvar_alpha:
        Tail level for :attr:`Strategy.CVAR` (CVaR averages the worst
        ``1 − cvar_alpha`` fraction of historical window costs).
    degrade:
        With ``True``, an infeasible optimization falls back to the
        on-demand baseline (a :class:`DegradedDecision`) instead of
        raising :class:`~repro.errors.InfeasibleBidError`.
    instance_type:
        Optional routing key for multi-market servers; the in-process
        client ignores it.
    """

    job: JobSpec
    strategy: Strategy = Strategy.PERSISTENT
    percentile: float = 90.0
    max_variance: Optional[float] = None
    cvar_alpha: float = 0.95
    degrade: bool = False
    instance_type: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "strategy", normalize_strategy(self.strategy))
        if not (0.0 <= self.percentile <= 100.0):
            raise ValueError(
                f"percentile must be within [0, 100], got {self.percentile!r}"
            )
        if self.max_variance is not None and not (
            self.max_variance >= 0.0 and math.isfinite(self.max_variance)
        ):
            raise ValueError(
                f"max_variance must be non-negative and finite, "
                f"got {self.max_variance!r}"
            )
        if not 0.0 < self.cvar_alpha < 1.0:
            raise ValueError(
                f"cvar_alpha must be within (0, 1), got {self.cvar_alpha!r}"
            )


@dataclass(frozen=True)
class DecisionResponse:
    """A :class:`BidDecision` plus the provenance serving attached to it.

    Batch decisions carry ``table_version=None`` / ``cache_tier=None``
    (computed inline from the client's own distribution); decisions
    answered by :mod:`repro.serve` record which bid-table version and
    cache tier produced them, and why the service degraded to the
    on-demand fallback if it did.  The decision's own numeric fields are
    exposed as passthrough properties so response objects read like the
    decisions they wrap.
    """

    decision: BidDecision
    request: DecisionRequest
    #: Version of the bid table that answered this request (serving only).
    table_version: Optional[str] = None
    #: Cache tier that produced the payload: ``"memory"``, ``"file"``,
    #: ``"table"`` or ``"compute"``; ``None`` for inline batch decisions.
    cache_tier: Optional[str] = None
    #: Why the service fell back to on demand (``None`` when it did not).
    degradation_reason: Optional[str] = None

    @property
    def price(self) -> float:
        return self.decision.price

    @property
    def kind(self) -> BidKind:
        return self.decision.kind

    @property
    def expected_cost(self) -> float:
        return self.decision.expected_cost

    @property
    def expected_completion_time(self) -> Optional[float]:
        return self.decision.expected_completion_time

    @property
    def expected_running_time(self) -> Optional[float]:
        return self.decision.expected_running_time

    @property
    def expected_interruptions(self) -> Optional[float]:
        return self.decision.expected_interruptions

    @property
    def acceptance_probability(self) -> Optional[float]:
        return self.decision.acceptance_probability

    @property
    def degraded(self) -> bool:
        return self.decision.degraded

    @property
    def strategy(self) -> Strategy:
        return self.request.strategy

    def with_serving(
        self,
        *,
        table_version: Optional[str] = None,
        cache_tier: Optional[str] = None,
        degradation_reason: Optional[str] = None,
    ) -> "DecisionResponse":
        """Copy of this response with serving provenance attached."""
        return replace(
            self,
            table_version=table_version,
            cache_tier=cache_tier,
            degradation_reason=degradation_reason,
        )


@dataclass(frozen=True)
class MapReducePlan:
    """A complete bidding plan for a MapReduce job (Section 6.2).

    Produced by :func:`repro.core.mapreduce.plan_master_slave`.
    """

    job: MapReduceJobSpec
    master_bid: BidDecision
    slave_bid: BidDecision
    #: Required master runtime implied by eq. 20's first constraint (hours).
    required_master_time: float
    #: Smallest slave count that makes eq. 20 feasible for this job.
    min_slaves: int

    @property
    def total_expected_cost(self) -> float:
        """Φ_so(p_m) + Φ_mp(p_v) — the objective of eq. 20."""
        return self.master_bid.expected_cost + self.slave_bid.expected_cost

    def __post_init__(self) -> None:
        if self.master_bid.kind is not BidKind.ONE_TIME:
            raise PlanError("master node must use a one-time request (Section 6.2)")
        if self.slave_bid.kind is not BidKind.PERSISTENT:
            raise PlanError("slave nodes must use persistent requests (Section 6.2)")
        if self.min_slaves < 1:
            raise PlanError(f"min_slaves must be >= 1, got {self.min_slaves}")


@dataclass(frozen=True)
class CostBreakdown:
    """Dollar cost of a completed (or abandoned) job, split by component."""

    running_cost: float = 0.0
    recovery_cost: float = 0.0
    overhead_cost: float = 0.0

    @property
    def total(self) -> float:
        return self.running_cost + self.recovery_cost + self.overhead_cost

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            running_cost=self.running_cost + other.running_cost,
            recovery_cost=self.recovery_cost + other.recovery_cost,
            overhead_cost=self.overhead_cost + other.overhead_cost,
        )


@dataclass
class CompletionStats:
    """Observed statistics for one simulated job run (Section 7 metrics)."""

    completion_time: float = 0.0
    running_time: float = 0.0
    idle_time: float = 0.0
    interruptions: int = 0
    cost: float = 0.0
    completed: bool = False
    #: Mean price charged per running hour; 0 when the job never ran.
    charged_price_per_hour: float = field(init=False, default=0.0)

    def finalize(self) -> "CompletionStats":
        """Derive dependent fields; call once the run is over."""
        if self.running_time > 0:
            self.charged_price_per_hour = self.cost / self.running_time
        else:
            self.charged_price_per_hour = 0.0
        return self
