"""Exception hierarchy for the spot-bidding reproduction.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DistributionError(ReproError):
    """A price or arrival distribution was constructed or queried invalidly."""


class SupportError(DistributionError):
    """A query fell outside the support of a distribution."""


class InfeasibleBidError(ReproError):
    """No bid price satisfies the optimization problem's constraints.

    Raised, for example, when a job's recovery time violates the
    interruptibility condition (eq. 14) at every admissible bid price, or
    when every spot bid would cost more than running on demand.
    """


class FittingError(ReproError):
    """Least-squares fitting of the spot-price PDF failed to converge."""


class MarketError(ReproError):
    """The spot-market simulator was driven into an invalid state."""


class TraceError(ReproError):
    """A spot-price trace is malformed (unsorted, negative prices, ...)."""


class CatalogError(ReproError):
    """An unknown instance type was requested from the catalog."""


class PlanError(ReproError):
    """A MapReduce bidding plan is inconsistent or infeasible."""


class FaultError(ReproError):
    """A fault-injection spec is invalid or cannot be applied to a trace."""


class SweepExecutionError(ReproError):
    """A sweep work item failed permanently (retries exhausted, timeout,
    or a journal that does not match the sweep being resumed)."""


class ServeError(ReproError):
    """The bid-decision service was misconfigured or asked an
    unanswerable question (job outside every table's grid coverage,
    malformed wire request, ...)."""
