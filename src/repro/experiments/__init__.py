"""Reproductions of every table and figure in the paper's evaluation.

One module per artifact; each exposes ``run(config) -> Result`` where the
result renders the paper-style rows via ``table()``:

================================  =======================================
:mod:`.fig3_price_pdf`            Figure 3 — spot-price PDF fits
:mod:`.fig4_job_timeline`         Figure 4 — example persistent job run
:mod:`.table3_bid_prices`         Table 3 — optimal bid prices
:mod:`.fig5_onetime_costs`        Figure 5 — one-time vs on-demand cost
:mod:`.fig6_persistent_vs_onetime`  Figure 6 — persistent vs one-time
:mod:`.table4_mapreduce_plans`    Table 4 — MapReduce client settings
:mod:`.fig7_mapreduce_costs`      Figure 7 — MapReduce spot vs on-demand
:mod:`.queue_stability`           Props. 1–3 — stability & equilibrium
:mod:`.ablations`                 design ablations (β, t_r, M, texture)
================================  =======================================
"""

from . import (
    ablations,
    fig3_price_pdf,
    fig4_job_timeline,
    fig5_onetime_costs,
    fig6_persistent_vs_onetime,
    fig7_mapreduce_costs,
    queue_stability,
    table3_bid_prices,
    table4_mapreduce_plans,
)
from .common import FAST_CONFIG, FULL_CONFIG, ExperimentConfig

__all__ = [
    "ablations",
    "fig3_price_pdf",
    "fig4_job_timeline",
    "fig5_onetime_costs",
    "fig6_persistent_vs_onetime",
    "fig7_mapreduce_costs",
    "queue_stability",
    "table3_bid_prices",
    "table4_mapreduce_plans",
    "FAST_CONFIG",
    "FULL_CONFIG",
    "ExperimentConfig",
]
