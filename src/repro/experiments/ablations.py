"""Design ablations for the choices DESIGN.md calls out.

Four studies, each isolating one modeling knob:

* :func:`beta_sweep` — the provider's utilization weight β: higher β
  lowers the optimal spot price (Section 4.1's observation "more weight
  on the utilization term leads to a lower spot price").
* :func:`recovery_sweep` — the recovery time t_r: the persistent bid and
  cost rise with t_r, crossing the one-time cost as jobs become
  effectively non-interruptible.
* :func:`slave_count_sweep` — the slave count M in eq. 18/19: completion
  time falls roughly as 1/M while expected cost stays nearly flat.
* :func:`temporal_texture` — i.i.d. vs copula-correlated vs renewal
  traces with identical marginals: correlation cuts the realized
  interruption rate, the paper's Section 8 prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..constants import seconds
from ..core import costs
from ..core.onetime import optimal_onetime_bid
from ..core.persistent import optimal_persistent_bid
from ..core.mapreduce import optimal_parallel_bid
from ..core.types import BidKind, DecisionRequest, JobSpec, ParallelJobSpec, Strategy
from ..extensions.correlated import lag1_price_persistence
from ..market.price_sources import TracePriceSource
from ..market.simulator import SpotMarket
from ..provider.pricing import optimal_spot_price
from ..sweep import run_sweep
from ..traces.catalog import get_instance_type
from ..traces.generator import (
    generate_correlated_history,
    generate_equilibrium_history,
    generate_renewal_history,
    market_model_for,
)
from .common import ExperimentConfig, FULL_CONFIG, format_table

__all__ = [
    "BetaSweepResult",
    "RecoverySweepResult",
    "SlaveSweepResult",
    "TextureResult",
    "BillingResult",
    "ForecastResult",
    "CheckpointSweepResult",
    "beta_sweep",
    "recovery_sweep",
    "slave_count_sweep",
    "temporal_texture",
    "billing_comparison",
    "forecasting_comparison",
    "checkpoint_sweep",
    "AdaptiveResult",
    "FleetResult",
    "adaptive_rebidding",
    "fleet_allocation",
    "SchedulingResult",
    "scheduling_policy",
    "HistoryLengthResult",
    "history_length_sensitivity",
]


@dataclass(frozen=True)
class BetaSweepResult:
    betas: Tuple[float, ...]
    prices: Tuple[float, ...]

    def table(self) -> str:
        return format_table(
            ("beta", "optimal spot price"),
            [(f"{b:.3f}", f"{p:.5f}") for b, p in zip(self.betas, self.prices)],
        )

    @property
    def monotone_decreasing(self) -> bool:
        return all(a >= b for a, b in zip(self.prices, self.prices[1:]))


def beta_sweep(
    *,
    demand: float = 50.0,
    pi_bar: float = 0.35,
    pi_min: float = 0.0315,
    betas: Tuple[float, ...] = (0.01, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6),
) -> BetaSweepResult:
    """Optimal spot price (eq. 3) as a function of β at fixed demand."""
    prices = tuple(
        optimal_spot_price(demand, beta, pi_bar, pi_min) for beta in betas
    )
    return BetaSweepResult(betas=betas, prices=prices)


@dataclass(frozen=True)
class RecoverySweepRow:
    recovery_seconds: float
    persistent_bid: float
    persistent_cost: float
    onetime_cost: float

    @property
    def persistent_wins(self) -> bool:
        return self.persistent_cost < self.onetime_cost


@dataclass(frozen=True)
class RecoverySweepResult:
    rows: List[RecoverySweepRow]

    def table(self) -> str:
        return format_table(
            ("t_r (s)", "persistent p*", "persistent $", "one-time $", "winner"),
            [
                (
                    f"{r.recovery_seconds:.0f}",
                    f"{r.persistent_bid:.4f}",
                    f"{r.persistent_cost:.4f}",
                    f"{r.onetime_cost:.4f}",
                    "persistent" if r.persistent_wins else "one-time",
                )
                for r in self.rows
            ],
        )

    @property
    def bids_monotone(self) -> bool:
        bids = [r.persistent_bid for r in self.rows]
        return all(a <= b + 1e-12 for a, b in zip(bids, bids[1:]))

    @property
    def crossover_seconds(self) -> float:
        """First t_r at which one-time becomes no worse than persistent
        (``inf`` if persistent wins everywhere swept)."""
        for r in self.rows:
            if not r.persistent_wins:
                return r.recovery_seconds
        return float("inf")


def recovery_sweep(
    config: ExperimentConfig = FULL_CONFIG,
    *,
    instance_type: str = "r3.xlarge",
    recovery_seconds: Tuple[float, ...] = (1, 5, 10, 30, 60, 120, 240, 290),
) -> RecoverySweepResult:
    """Sweep t_r on the analytic model; compare Φ_sp(p*) with Φ_so."""
    itype = get_instance_type(instance_type)
    model = market_model_for(itype)
    onetime = optimal_onetime_bid(
        model, JobSpec(1.0, slot_length=config.slot_length),
        ondemand_price=itype.on_demand_price,
    )
    rows = []
    for tr in recovery_seconds:
        job = JobSpec(1.0, seconds(tr), slot_length=config.slot_length)
        decision = optimal_persistent_bid(model, job)
        rows.append(
            RecoverySweepRow(
                recovery_seconds=tr,
                persistent_bid=decision.price,
                persistent_cost=decision.expected_cost,
                onetime_cost=onetime.expected_cost,
            )
        )
    return RecoverySweepResult(rows=rows)


@dataclass(frozen=True)
class SlaveSweepRow:
    num_slaves: int
    bid: float
    expected_cost: float
    expected_completion: float


@dataclass(frozen=True)
class SlaveSweepResult:
    rows: List[SlaveSweepRow]

    def table(self) -> str:
        return format_table(
            ("M", "p_v*", "expected $", "expected T (h)"),
            [
                (r.num_slaves, f"{r.bid:.4f}", f"{r.expected_cost:.4f}",
                 f"{r.expected_completion:.3f}")
                for r in self.rows
            ],
        )

    @property
    def completion_monotone(self) -> bool:
        times = [r.expected_completion for r in self.rows]
        return all(a >= b - 1e-9 for a, b in zip(times, times[1:]))


def slave_count_sweep(
    config: ExperimentConfig = FULL_CONFIG,
    *,
    instance_type: str = "c3.4xlarge",
    execution_time: float = 8.0,
    max_slaves: int = 12,
) -> SlaveSweepResult:
    """Eq. 18/19 as M varies: wall-clock shrinks, cost stays near-flat."""
    itype = get_instance_type(instance_type)
    model = market_model_for(itype)
    rows = []
    for m in range(1, max_slaves + 1):
        job = ParallelJobSpec(
            execution_time=execution_time,
            num_instances=m,
            overhead_time=seconds(60),
            recovery_time=seconds(30),
            slot_length=config.slot_length,
        )
        if job.effective_work <= 0:
            break
        decision = optimal_parallel_bid(model, job)
        rows.append(
            SlaveSweepRow(
                num_slaves=m,
                bid=decision.price,
                expected_cost=decision.expected_cost,
                expected_completion=decision.expected_completion_time,
            )
        )
    return SlaveSweepResult(rows=rows)


@dataclass(frozen=True)
class TextureRow:
    texture: str
    lag1_persistence: float
    interruptions_per_run: float
    mean_cost: float


@dataclass(frozen=True)
class TextureResult:
    rows: List[TextureRow]

    def table(self) -> str:
        return format_table(
            ("trace texture", "lag-1 persistence", "interruptions/run", "mean $"),
            [
                (r.texture, f"{r.lag1_persistence:.3f}",
                 f"{r.interruptions_per_run:.2f}", f"{r.mean_cost:.4f}")
                for r in self.rows
            ],
        )

    @property
    def correlation_reduces_interruptions(self) -> bool:
        """Section 8's prediction: stickier prices → fewer interruptions."""
        by_name = {r.texture: r for r in self.rows}
        return (
            by_name["renewal"].interruptions_per_run
            <= by_name["iid"].interruptions_per_run
            and by_name["copula-0.95"].interruptions_per_run
            <= by_name["iid"].interruptions_per_run
        )


def temporal_texture(
    config: ExperimentConfig = FULL_CONFIG,
    *,
    instance_type: str = "r3.xlarge",
) -> TextureResult:
    """Run the same persistent bid on three temporal textures with the
    same marginal distribution and compare realized interruptions."""
    itype = get_instance_type(instance_type)
    history_rng = config.rng(8, 0)
    history = generate_equilibrium_history(
        itype, days=config.history_days, rng=history_rng,
        slot_length=config.slot_length,
    )
    dist = history.to_distribution()
    job = JobSpec(1.0, seconds(30), slot_length=config.slot_length)
    decision = optimal_persistent_bid(dist, job, ondemand_price=itype.on_demand_price)

    rows = []
    for texture in ("iid", "copula-0.95", "renewal"):
        rng = config.rng(8, 1, zlib_crc(texture))
        futures, persist = [], []
        for rep in range(config.repetitions):
            if texture == "iid":
                future = generate_equilibrium_history(
                    itype, days=config.future_days, rng=rng,
                    slot_length=config.slot_length,
                )
            elif texture == "copula-0.95":
                future = generate_correlated_history(
                    itype, days=config.future_days, rng=rng, correlation=0.95,
                    slot_length=config.slot_length,
                )
            else:
                future = generate_renewal_history(
                    itype, days=config.future_days, rng=rng,
                    floor_episode_hours=config.floor_episode_hours,
                    tail_episode_hours=config.tail_episode_hours,
                    slot_length=config.slot_length,
                )
            futures.append(future)
            persist.append(lag1_price_persistence(future.prices, decision.price))
        # One batched sweep replaces the per-repetition market loop.
        report = run_sweep(
            futures, decision.price, job, strategy=Strategy.PERSISTENT
        )
        ok = report.completed[:, 0]
        interruptions = report.interruptions[ok, 0]
        costs = report.cost[ok, 0]
        rows.append(
            TextureRow(
                texture=texture,
                lag1_persistence=float(np.mean(persist)),
                interruptions_per_run=float(np.mean(interruptions)) if interruptions.size else float("nan"),
                mean_cost=float(np.mean(costs)) if costs.size else float("nan"),
            )
        )
    return TextureResult(rows=rows)


def zlib_crc(text: str) -> int:
    """Stable small integer from a string (process-hash-safe)."""
    import zlib

    return zlib.crc32(text.encode())


@dataclass(frozen=True)
class BillingRow:
    policy: str
    mean_cost: float
    completed: int
    repetitions: int


@dataclass(frozen=True)
class BillingResult:
    rows: List[BillingRow]

    def table(self) -> str:
        return format_table(
            ("billing policy", "mean $", "completed"),
            [
                (r.policy, f"{r.mean_cost:.4f}", f"{r.completed}/{r.repetitions}")
                for r in self.rows
            ],
        )

    @property
    def hourly_premium(self) -> float:
        """Hourly cost over per-slot cost (EC2's rounding is never free
        for jobs the user terminates)."""
        by = {r.policy: r.mean_cost for r in self.rows}
        return by["hourly"] / by["per-slot"] - 1.0


def billing_comparison(
    config: ExperimentConfig = FULL_CONFIG,
    *,
    instance_type: str = "r3.xlarge",
    execution_time: float = 1.5,
) -> BillingResult:
    """The paper's per-slot cost model vs EC2's 2014 hourly billing.

    The same persistent bid runs on identical traces under both
    policies; whole-hour rounding (charged on completion, waived on
    provider interruption) makes the hourly bill at least the per-slot
    bill for completed runs, quantifying how conservative the paper's
    cost model is.
    """
    from ..market.billing import HourlyBilling
    from ..market.price_sources import TracePriceSource
    from ..market.simulator import SpotMarket
    from .common import calm_start_slot, history_and_future

    itype = get_instance_type(instance_type)
    history, _ = history_and_future(itype, config, 90)
    dist = history.to_distribution()
    job = JobSpec(execution_time, seconds(30), slot_length=config.slot_length)
    decision = optimal_persistent_bid(dist, job)

    # Both policies run on identical traces and start slots (the seed
    # re-derived them per policy from the same substream).
    rng = config.rng(12, 1)
    futures, starts = [], []
    for rep in range(config.repetitions):
        _, future = history_and_future(itype, config, 91, rep)
        futures.append(future)
        starts.append(calm_start_slot(rng, future))

    rows = []

    # Per-slot billing is exactly the sweep kernels' cost model.
    report = run_sweep(
        futures, decision.price, job,
        strategy=Strategy.PERSISTENT, start_slots=starts,
    )
    ok = report.completed[:, 0]
    rows.append(
        BillingRow(
            policy="per-slot",
            mean_cost=float(np.mean(report.cost[ok, 0])),
            completed=int(np.count_nonzero(ok)),
            repetitions=config.repetitions,
        )
    )

    # Hourly rounding needs the full market engine's billing hooks.
    costs, completed = [], 0
    for future, start in zip(futures, starts):
        market = SpotMarket(
            TracePriceSource(future, start_slot=start),
            slot_length=config.slot_length,
            billing_factory=HourlyBilling,
        )
        rid = market.submit(
            bid_price=decision.price,
            work=job.execution_time,
            kind=BidKind.PERSISTENT,
            recovery_time=job.recovery_time,
        )
        try:
            market.run_until_done(max_slots=future.n_slots)
        except Exception:
            pass
        outcome = market.outcome(rid)
        if outcome.completed:
            completed += 1
            costs.append(outcome.cost)
    rows.append(
        BillingRow(
            policy="hourly",
            mean_cost=float(np.mean(costs)),
            completed=completed,
            repetitions=config.repetitions,
        )
    )
    return BillingResult(rows=rows)


@dataclass(frozen=True)
class ForecastRow:
    forecaster: str
    bid: float
    mean_cost: float
    mean_completion: float
    completed: int
    repetitions: int


@dataclass(frozen=True)
class ForecastResult:
    rows: List[ForecastRow]

    def table(self) -> str:
        return format_table(
            ("forecaster", "bid", "mean $", "mean T (h)", "completed"),
            [
                (
                    r.forecaster, f"{r.bid:.4f}", f"{r.mean_cost:.4f}",
                    f"{r.mean_completion:.2f}", f"{r.completed}/{r.repetitions}",
                )
                for r in self.rows
            ],
        )

    def cost_of(self, name: str) -> float:
        for r in self.rows:
            if r.forecaster == name:
                return r.mean_cost
        raise KeyError(name)


def forecasting_comparison(
    config: ExperimentConfig = FULL_CONFIG,
    *,
    instance_type: str = "r3.xlarge",
) -> ForecastResult:
    """Stationary-ECDF bids vs EWMA and AR(1) forecast-based bids (Section 5).

    The paper argues forecasting buys little because autocorrelation dies
    quickly at the horizons jobs need; this ablation runs all three on
    identical sticky futures.
    """
    from ..extensions.forecasting import Ar1Forecaster, EwmaForecaster, forecast_bid
    from .common import calm_start_slot, history_and_future
    from ..core.client import BiddingClient

    itype = get_instance_type(instance_type)
    history, _ = history_and_future(itype, config, 92)
    client = BiddingClient(history, ondemand_price=itype.on_demand_price)
    job = JobSpec(1.0, seconds(30), slot_length=config.slot_length)

    decisions = {
        "stationary-ecdf": client.respond(
            DecisionRequest(job=job, strategy=Strategy.PERSISTENT)
        ).decision,
        "ewma": forecast_bid(EwmaForecaster(), history, job),
        "ar1": forecast_bid(Ar1Forecaster(), history, job),
    }
    # The seed re-derived identical futures and start slots per
    # forecaster from a re-seeded substream; here every forecaster is one
    # bid column of a single sweep over that shared trace stack.
    rng = config.rng(13, 1)
    futures, starts = [], []
    for rep in range(config.repetitions):
        _, future = history_and_future(itype, config, 93, rep)
        futures.append(future)
        starts.append(calm_start_slot(rng, future))
    report = run_sweep(
        futures,
        [decision.price for decision in decisions.values()],
        job,
        strategy=Strategy.PERSISTENT,
        start_slots=starts,
    )
    rows = []
    for j, (name, decision) in enumerate(decisions.items()):
        ok = report.completed[:, j]
        costs = report.cost[ok, j]
        times = report.completion_time[ok, j]
        rows.append(
            ForecastRow(
                forecaster=name,
                bid=decision.price,
                mean_cost=float(np.mean(costs)) if costs.size else float("nan"),
                mean_completion=float(np.mean(times)) if times.size else float("nan"),
                completed=int(np.count_nonzero(ok)),
                repetitions=config.repetitions,
            )
        )
    return ForecastResult(rows=rows)


@dataclass(frozen=True)
class CheckpointRow:
    interval_minutes: float
    recovery_seconds: float
    bid: float
    expected_cost: float
    chosen: bool


@dataclass(frozen=True)
class CheckpointSweepResult:
    rows: List[CheckpointRow]

    def table(self) -> str:
        return format_table(
            ("interval (min)", "t_r (s)", "bid", "expected $", "chosen"),
            [
                (
                    f"{r.interval_minutes:.1f}", f"{r.recovery_seconds:.0f}",
                    f"{r.bid:.4f}", f"{r.expected_cost:.4f}",
                    "*" if r.chosen else "",
                )
                for r in self.rows
            ],
        )

    @property
    def chosen_interval_minutes(self) -> float:
        for r in self.rows:
            if r.chosen:
                return r.interval_minutes
        raise ValueError("no chosen row")

    @property
    def interior_optimum(self) -> bool:
        """The best interval is neither the smallest nor largest swept."""
        intervals = [r.interval_minutes for r in self.rows]
        return min(intervals) < self.chosen_interval_minutes < max(intervals)


def checkpoint_sweep(
    config: ExperimentConfig = FULL_CONFIG,
    *,
    instance_type: str = "r3.xlarge",
    execution_time: float = 8.0,
) -> CheckpointSweepResult:
    """Joint checkpoint-interval and bid optimization.

    Frequent checkpoints shrink t_r (Prop. 5 then bids lower) but inflate
    the execution time; the sweep exposes the interior optimum found by
    :func:`repro.extensions.checkpointing.optimize_checkpoint_interval`.
    """
    from ..extensions.checkpointing import (
        CheckpointPolicy,
        best_capped_bid,
        effective_job,
        optimize_checkpoint_interval,
    )

    itype = get_instance_type(instance_type)
    model = market_model_for(itype)
    job = JobSpec(execution_time, slot_length=config.slot_length)
    # A risk-policy bid cap at the 90th percentile: without one, bidding
    # the market ceiling suppresses interruptions entirely and "never
    # checkpoint" trivially wins (see extensions.checkpointing).
    cap = model.ppf(0.90)
    intervals = [1 / 60, 2 / 60, 5 / 60, 10 / 60, 0.5, 1.0, 2.0, 4.0, 8.0]
    best = optimize_checkpoint_interval(
        model, job, candidate_intervals=intervals, max_bid=cap
    )
    from ..errors import InfeasibleBidError

    rows = []
    for interval in intervals:
        policy = CheckpointPolicy(interval=interval)
        candidate = effective_job(job, policy)
        try:
            decision = best_capped_bid(model, candidate, cap)
        except InfeasibleBidError:
            # Under the bid cap, long intervals make t_r violate eq. 14
            # at every admissible price — exactly why one checkpoints.
            continue
        rows.append(
            CheckpointRow(
                interval_minutes=interval * 60.0,
                recovery_seconds=policy.recovery_time * 3600.0,
                bid=decision.price,
                expected_cost=decision.expected_cost,
                chosen=math.isclose(interval, best.policy.interval, rel_tol=1e-9),
            )
        )
    return CheckpointSweepResult(rows=rows)


@dataclass(frozen=True)
class AdaptiveRow:
    client: str
    completed: int
    repetitions: int
    mean_cost: float
    mean_completion: float
    mean_rebids: float


@dataclass(frozen=True)
class AdaptiveResult:
    rows: List[AdaptiveRow]

    def table(self) -> str:
        return format_table(
            ("client", "completed", "mean $", "mean T (h)", "rebids/run"),
            [
                (
                    r.client, f"{r.completed}/{r.repetitions}",
                    f"{r.mean_cost:.4f}" if not math.isnan(r.mean_cost) else "n/a",
                    f"{r.mean_completion:.2f}" if not math.isnan(r.mean_completion) else "n/a",
                    f"{r.mean_rebids:.1f}",
                )
                for r in self.rows
            ],
        )

    def row(self, client: str) -> AdaptiveRow:
        for r in self.rows:
            if r.client == client:
                return r
        raise KeyError(client)

    @property
    def adaptive_completes_more(self) -> bool:
        return self.row("adaptive").completed >= self.row("static").completed


def adaptive_rebidding(
    config: ExperimentConfig = FULL_CONFIG,
    *,
    instance_type: str = "r3.xlarge",
    floor_multiplier: float = 2.5,
) -> AdaptiveResult:
    """Static vs adaptive bidding across a price-regime shift.

    The price floor jumps by ``floor_multiplier`` six hours into the
    future trace.  A static persistent bid computed pre-shift sits below
    the new floor and idles forever; the adaptive client re-estimates
    from the rolling window and re-bids above it.
    """
    from ..core.adaptive import AdaptiveBiddingClient
    from ..traces.generator import (
        generate_equilibrium_history,
        generate_regime_shift_history,
    )

    itype = get_instance_type(instance_type)
    job = JobSpec(4.0, seconds(30), slot_length=config.slot_length)
    client = AdaptiveBiddingClient(
        window_hours=24.0, rebid_interval_slots=12, rebid_threshold=0.02
    )
    rows = []
    for label, adaptive in (("static", False), ("adaptive", True)):
        rng = config.rng(14, int(adaptive))
        costs_, times, rebids, completed = [], [], [], 0
        for rep in range(config.repetitions):
            hist_rng = config.rng(14, 2, rep)
            history = generate_equilibrium_history(
                itype, days=20, rng=hist_rng, slot_length=config.slot_length
            )
            future = generate_regime_shift_history(
                itype, days=config.future_days, rng=hist_rng,
                shift_hour=1.0, floor_multiplier=floor_multiplier,
                slot_length=config.slot_length,
            )
            result = client.run(job, history, future, adaptive=adaptive)
            rebids.append(result.rebids)
            if result.completed:
                completed += 1
                costs_.append(result.total_cost)
                times.append(result.completion_time)
        rows.append(
            AdaptiveRow(
                client=label,
                completed=completed,
                repetitions=config.repetitions,
                mean_cost=float(np.mean(costs_)) if costs_ else float("nan"),
                mean_completion=float(np.mean(times)) if times else float("nan"),
                mean_rebids=float(np.mean(rebids)),
            )
        )
    return AdaptiveResult(rows=rows)


@dataclass(frozen=True)
class FleetRow:
    strategy: str
    types_used: int
    expected_cost: float
    mean_cost: float
    mean_completion: float
    completed: int
    repetitions: int


@dataclass(frozen=True)
class FleetResult:
    rows: List[FleetRow]
    ranking_table: str

    def table(self) -> str:
        return format_table(
            ("strategy", "types", "expected $", "mean $", "mean T (h)", "completed"),
            [
                (
                    r.strategy, r.types_used, f"{r.expected_cost:.4f}",
                    f"{r.mean_cost:.4f}", f"{r.mean_completion:.2f}",
                    f"{r.completed}/{r.repetitions}",
                )
                for r in self.rows
            ],
        )

    def row(self, strategy: str) -> FleetRow:
        for r in self.rows:
            if r.strategy == strategy:
                return r
        raise KeyError(strategy)


def fleet_allocation(
    config: ExperimentConfig = FULL_CONFIG,
    *,
    candidate_types: Tuple[str, ...] = (
        "c3.xlarge", "c3.2xlarge", "c3.4xlarge", "r3.xlarge", "r3.2xlarge",
    ),
    work_vcpu_hours: float = 64.0,
) -> FleetResult:
    """Spot-fleet-style allocation across instance types.

    Compares putting the whole workload on the cheapest type against
    diversifying over the three cheapest, on per-type sticky futures.
    """
    from ..core.fleet import plan_fleet, rank_fleet_options, run_fleet
    from .common import history_and_future

    histories = {}
    for name in candidate_types:
        history, _ = history_and_future(name, config, 95)
        histories[name] = history
    ranking = rank_fleet_options(
        histories, work_vcpu_hours=work_vcpu_hours, recovery_time=seconds(30)
    )
    ranking_table = format_table(
        ("type", "bid", "$ / vCPU-hour", "on-demand $/vCPU-h"),
        [
            (
                o.instance_type.name, f"{o.decision.price:.4f}",
                f"{o.cost_per_vcpu_hour:.5f}",
                f"{o.ondemand_cost_per_vcpu_hour:.5f}",
            )
            for o in ranking
        ],
    )

    rows = []
    for strategy in ("cheapest", "diversified"):
        plan = plan_fleet(
            histories, work_vcpu_hours=work_vcpu_hours,
            recovery_time=seconds(30), strategy=strategy, max_types=3,
        )
        rng = config.rng(15, zlib_crc(strategy))
        costs_, times, completed = [], [], 0
        for rep in range(config.repetitions):
            futures = {}
            for alloc in plan.allocations:
                _, fut = history_and_future(
                    alloc.instance_type.name, config, 96, rep
                )
                futures[alloc.instance_type.name] = fut
            result = run_fleet(plan, futures)
            if result.completed:
                completed += 1
                costs_.append(result.total_cost)
                times.append(result.completion_time)
        rows.append(
            FleetRow(
                strategy=strategy,
                types_used=len(plan.allocations),
                expected_cost=plan.total_expected_cost,
                mean_cost=float(np.mean(costs_)) if costs_ else float("nan"),
                mean_completion=float(np.mean(times)) if times else float("nan"),
                completed=completed,
                repetitions=config.repetitions,
            )
        )
    return FleetResult(rows=rows, ranking_table=ranking_table)


@dataclass(frozen=True)
class SchedulingRow:
    policy: str
    completed: int
    repetitions: int
    mean_completion: float
    mean_cost: float
    mean_lost_work: float


@dataclass(frozen=True)
class SchedulingResult:
    rows: List[SchedulingRow]

    def table(self) -> str:
        return format_table(
            ("policy", "completed", "mean T (h)", "mean $", "lost work (h)"),
            [
                (
                    r.policy, f"{r.completed}/{r.repetitions}",
                    f"{r.mean_completion:.2f}", f"{r.mean_cost:.4f}",
                    f"{r.mean_lost_work:.3f}",
                )
                for r in self.rows
            ],
        )

    def row(self, policy: str) -> SchedulingRow:
        for r in self.rows:
            if r.policy == policy:
                return r
        raise KeyError(policy)


def scheduling_policy(
    config: ExperimentConfig = FULL_CONFIG,
    *,
    instance_type: str = "c3.4xlarge",
    total_work: float = 8.0,
    num_workers: int = 4,
) -> SchedulingResult:
    """Sub-job pinning (the paper's model) vs Hadoop task stealing.

    Both run the same map work with the same bid on the same traces.
    The pinned policy checkpoints sub-jobs (paying t_r per resume); the
    task pool loses in-flight tasks but reassigns freely.  On spiky
    traces the two trade recovery overhead against lost work.
    """
    from ..core.types import BidKind
    from ..mapreduce.tasks import TaskPool, run_task_pool_on_trace
    from ..market.price_sources import TracePriceSource
    from ..market.simulator import SpotMarket
    from ..traces.generator import generate_renewal_history
    from .common import history_and_future

    itype = get_instance_type(instance_type)
    history, _ = history_and_future(itype, config, 97)
    dist = history.to_distribution()
    surrogate = JobSpec(
        total_work / num_workers, seconds(30), slot_length=config.slot_length
    )
    bid = optimal_persistent_bid(dist, surrogate).price

    # Paired runs on deliberately *spiky* futures (short episodes, random
    # starts): the policies only differ when interruptions actually
    # happen, so this ablation stresses that regime rather than the calm
    # one the Section 7 experiments model.
    rng = config.rng(16, 0)
    futures, starts = [], []
    for rep in range(config.repetitions):
        futures.append(
            generate_renewal_history(
                itype, days=config.future_days, rng=config.rng(16, 2, rep),
                floor_episode_hours=2.0, tail_episode_hours=0.5,
                slot_length=config.slot_length,
            )
        )
        starts.append(int(rng.integers(0, 288)))

    # The pinned sub-jobs are identical independent requests, so one
    # sweep lane stands in for all ``num_workers`` of them.
    report = run_sweep(
        futures, bid, surrogate,
        strategy=Strategy.PERSISTENT, start_slots=starts,
    )
    ok = report.completed[:, 0]
    pinned = {
        "costs": list(num_workers * report.cost[ok, 0]),
        "times": list(report.completion_time[ok, 0]),
        "completed": int(np.count_nonzero(ok)),
    }

    pooled = {"costs": [], "times": [], "completed": 0, "lost": []}
    for future, start in zip(futures, starts):
        pool = TaskPool(total_work=total_work, num_tasks=num_workers * 8)
        result = run_task_pool_on_trace(
            pool, future, num_workers=num_workers, bid=bid, start_slot=start
        )
        pooled["lost"].append(result.lost_work)
        if result.completed:
            pooled["completed"] += 1
            pooled["times"].append(result.completion_time)
            pooled["costs"].append(result.cost)

    rows = [
        SchedulingRow(
            policy="pinned-subjobs",
            completed=pinned["completed"],
            repetitions=config.repetitions,
            mean_completion=float(np.mean(pinned["times"])) if pinned["times"] else float("nan"),
            mean_cost=float(np.mean(pinned["costs"])) if pinned["costs"] else float("nan"),
            mean_lost_work=0.0,
        ),
        SchedulingRow(
            policy="task-pool",
            completed=pooled["completed"],
            repetitions=config.repetitions,
            mean_completion=float(np.mean(pooled["times"])) if pooled["times"] else float("nan"),
            mean_cost=float(np.mean(pooled["costs"])) if pooled["costs"] else float("nan"),
            mean_lost_work=float(np.mean(pooled["lost"])),
        ),
    ]
    return SchedulingResult(rows=rows)


@dataclass(frozen=True)
class HistoryLengthRow:
    history_days: float
    mean_bid: float
    bid_std: float
    mean_cost: float
    completed: int
    repetitions: int


@dataclass(frozen=True)
class HistoryLengthResult:
    rows: List[HistoryLengthRow]

    def table(self) -> str:
        return format_table(
            ("history (days)", "mean bid", "bid std", "mean $", "completed"),
            [
                (
                    f"{r.history_days:g}", f"{r.mean_bid:.4f}",
                    f"{r.bid_std:.5f}", f"{r.mean_cost:.4f}",
                    f"{r.completed}/{r.repetitions}",
                )
                for r in self.rows
            ],
        )

    @property
    def bid_noise_shrinks_with_history(self) -> bool:
        """More history → more stable bid estimates."""
        stds = [r.bid_std for r in self.rows]
        return stds[-1] <= stds[0] + 1e-12


def history_length_sensitivity(
    config: ExperimentConfig = FULL_CONFIG,
    *,
    instance_type: str = "r3.xlarge",
    day_grid: Tuple[float, ...] = (3.0, 7.0, 15.0, 30.0, 60.0),
) -> HistoryLengthResult:
    """How much price history does a bid actually need?

    The paper uses the full two-month window Amazon exposed.  This
    ablation refits the persistent bid from shorter histories and
    backtests each on common futures: short windows estimate the tail
    quantiles noisily (bid variance up), but even a week captures the
    floor-plus-tail shape well enough to keep realized costs flat —
    quantifying how much of the 60-day window is actually load-bearing.
    """
    from ..core.client import BiddingClient
    from ..traces.generator import generate_equilibrium_history
    from .common import calm_start_slot, history_and_future

    itype = get_instance_type(instance_type)
    job = JobSpec(1.0, seconds(30), slot_length=config.slot_length)
    rows = []
    for days in day_grid:
        rng = config.rng(17, int(days * 10))
        bids, futures, starts = [], [], []
        for rep in range(config.repetitions):
            hist_rng = config.rng(17, 1, rep, int(days * 10))
            history = generate_equilibrium_history(
                itype, days=days, rng=hist_rng, slot_length=config.slot_length
            )
            client = BiddingClient(
                history, ondemand_price=itype.on_demand_price
            )
            decision = client.respond(
                DecisionRequest(job=job, strategy=Strategy.PERSISTENT)
            ).decision
            bids.append(decision.price)
            _, future = history_and_future(itype, config, 99, rep)
            futures.append(future)
            starts.append(calm_start_slot(rng, future))
        # Each repetition's refit bid runs only on its own future trace:
        # a paired (zipped) sweep rather than the full grid.
        report = run_sweep(
            futures, bids, job,
            strategy=Strategy.PERSISTENT, start_slots=starts, pair_bids=True,
        )
        ok = report.completed[:, 0]
        costs_ = report.cost[ok, 0]
        rows.append(
            HistoryLengthRow(
                history_days=days,
                mean_bid=float(np.mean(bids)),
                bid_std=float(np.std(bids, ddof=1)) if len(bids) > 1 else 0.0,
                mean_cost=float(np.mean(costs_)) if costs_.size else float("nan"),
                completed=int(np.count_nonzero(ok)),
                repetitions=config.repetitions,
            )
        )
    return HistoryLengthResult(rows=rows)
