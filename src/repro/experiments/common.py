"""Shared infrastructure for the Section 7 experiment reproductions.

Every experiment module exposes ``run(config) -> <Result>`` where the
result object renders the paper's table/figure rows via ``table()``.
Benchmarks call ``run`` with :data:`FAST_CONFIG` (seconds per experiment)
and assert the paper's qualitative shapes; EXPERIMENTS.md records a
:data:`FULL_CONFIG` run.

The backtest protocol (fixed across experiments):

* *history* — a 60-day i.i.d. trace from the instance type's equilibrium
  model (what Amazon's API exposed); the client fits its ECDF to this.
* *future* — a sticky renewal trace (the realistic temporal texture;
  see :func:`repro.traces.generator.generate_renewal_history`) on which
  bids are executed, starting at a random slot ("random times of the
  day", §7.1).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..constants import DEFAULT_SLOT_HOURS, SLOTS_PER_DAY
from ..traces.catalog import InstanceType, get_instance_type
from ..traces.generator import generate_equilibrium_history, generate_renewal_history
from ..traces.history import SpotPriceHistory

__all__ = [
    "ExperimentConfig",
    "FAST_CONFIG",
    "FULL_CONFIG",
    "history_and_future",
    "random_start_slot",
    "calm_start_slot",
    "format_table",
    "TABLE4_SETTINGS",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    #: Length of the fitted price history (Amazon exposed two months).
    history_days: float = 60.0
    #: Length of the held-out execution trace.
    future_days: float = 8.0
    #: Runs per data point ("we repeat each experiment ten times", §7).
    repetitions: int = 10
    #: Root RNG seed; every experiment derives substreams from it.
    seed: int = 20140814  # the first day of the paper's trace window
    #: Mean floor/tail episode lengths of the renewal future traces.
    floor_episode_hours: float = 36.0
    tail_episode_hours: float = 2.5
    slot_length: float = DEFAULT_SLOT_HOURS
    #: Trace-level fan-out for repetition loops routed through
    #: :func:`repro.sweep.map_traces`; ``None`` runs serially.
    max_workers: Optional[int] = None

    def rng(self, *stream: int) -> np.random.Generator:
        """A reproducible substream for one experiment component."""
        return np.random.default_rng((self.seed, *stream))


#: Small config for CI/benchmarks: fewer repetitions, shorter traces.
FAST_CONFIG = ExperimentConfig(history_days=30.0, future_days=6.0, repetitions=6)

#: The configuration used for the numbers recorded in EXPERIMENTS.md.
FULL_CONFIG = ExperimentConfig(repetitions=20)


def history_and_future(
    instance_type: Union[str, InstanceType],
    config: ExperimentConfig,
    *stream: int,
) -> Tuple[SpotPriceHistory, SpotPriceHistory]:
    """The standard (history, future) trace pair for one instance type."""
    itype = (
        instance_type
        if isinstance(instance_type, InstanceType)
        else get_instance_type(instance_type)
    )
    # A per-type substream keyed by a *stable* hash (str hash() is
    # randomized per process and would break reproducibility).
    rng = config.rng(zlib.crc32(itype.name.encode()), *stream)
    history = generate_equilibrium_history(
        itype, days=config.history_days, rng=rng, slot_length=config.slot_length
    )
    future = generate_renewal_history(
        itype,
        days=config.future_days,
        rng=rng,
        floor_episode_hours=config.floor_episode_hours,
        tail_episode_hours=config.tail_episode_hours,
        slot_length=config.slot_length,
    )
    return history, future


def random_start_slot(rng: np.random.Generator) -> int:
    """A uniformly random start within the first day of a future trace."""
    return int(rng.integers(0, SLOTS_PER_DAY))


def calm_start_slot(rng: np.random.Generator, future: SpotPriceHistory) -> int:
    """A random first-day start slot where the market is calm.

    Figure 1's client watches the current spot price, so a user submits
    when the price sits at its floor rather than mid-spike — the paper's
    "random times of the day" runs saw zero interruptions precisely
    because 2014 prices were at the floor almost whenever anyone looked.
    Falls back to a uniformly random slot if the first day has no
    floor-priced slot (rare for the catalog's floor masses).
    """
    horizon = min(SLOTS_PER_DAY, future.n_slots)
    window = future.prices[:horizon]
    floor = float(future.prices.min())
    candidates = np.flatnonzero(window <= floor + 1e-12)
    if candidates.size == 0:
        return int(rng.integers(0, horizon))
    return int(rng.choice(candidates))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (the benches print these)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([str(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


#: The five Table 4 client settings: (master type, slave type).  The
#: paper pairs general-purpose masters with compute/memory-optimized
#: slaves ("we therefore bid on instances with better CPU performance
#: for the slave nodes").
TABLE4_SETTINGS: Tuple[Tuple[str, str], ...] = (
    ("m3.xlarge", "c3.2xlarge"),
    ("m3.xlarge", "c3.4xlarge"),
    ("m3.xlarge", "c3.8xlarge"),
    ("m3.2xlarge", "r3.2xlarge"),
    ("m3.2xlarge", "r3.4xlarge"),
)
