"""Figure 3: fitting the spot-price PDF for four instance types.

For each panel the paper fits Pareto and exponential arrival models to a
two-month price history via Prop. 3 and reports the fitted
``(β, θ, α, η)`` with mean-squared error below 1e-6.  Two fits are run
per panel:

* the **paper convention** (eq. 7 without the change-of-variables
  Jacobian) — this is the published procedure and supplies the headline
  MSE numbers;
* the **exact convention** (with the Jacobian) — since our histories are
  generated from a known equilibrium model, this fit doubles as a
  parameter-recovery test: β̂, α̂ and the floor mass should land near the
  generating values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..provider.fitting import FitResult, fit_both_families
from ..traces.catalog import FIG3_TYPES, get_instance_type
from ..traces.generator import market_model_for
from .common import ExperimentConfig, FULL_CONFIG, format_table, history_and_future


def _generating_model(instance_type: str):
    return market_model_for(get_instance_type(instance_type))

__all__ = ["Fig3Panel", "Fig3Result", "run"]


@dataclass(frozen=True)
class Fig3Panel:
    """One panel: the instance type plus the fits in both conventions."""

    instance_type: str
    #: Paper-convention fits (eq. 7, no Jacobian) — the published curves.
    pareto: FitResult
    exponential: FitResult
    #: Exact-convention Pareto fit — the parameter-recovery check.
    pareto_exact: FitResult
    #: The catalog parameters that generated the trace (ground truth).
    true_beta: float
    true_alpha: float
    true_floor_mass: float

    @property
    def alpha_recovery_error(self) -> float:
        """Relative error of the exact fit's α̂ against the generator.

        Note that (β, α) are only jointly weakly identified — both govern
        the tail decay, so fits wander along a ridge.  The *distribution*
        is what matters downstream; see :attr:`cdf_distance`.
        """
        return abs(self.pareto_exact.alpha - self.true_alpha) / self.true_alpha

    @property
    def floor_mass_recovery_error(self) -> float:
        return abs(self.pareto_exact.floor_mass - self.true_floor_mass)

    @property
    def cdf_distance(self) -> float:
        """sup |F_fitted − F_true| over the price band — the functional
        recovery metric (parameters may trade off; the CDF must not)."""
        import numpy as np

        fitted = self.pareto_exact.model()
        true_model = _generating_model(self.instance_type)
        grid = np.linspace(true_model.lower, true_model.upper * 0.999, 400)
        return float(
            max(abs(fitted.cdf(float(p)) - true_model.cdf(float(p))) for p in grid)
        )


@dataclass(frozen=True)
class Fig3Result:
    panels: List[Fig3Panel]

    def table(self) -> str:
        headers = (
            "panel", "type", "mse(pareto)", "mse(exp)",
            "alpha^ exact", "q^ exact", "true(alpha,q)", "sup|dF|",
        )
        rows = []
        for label, p in zip("abcd", self.panels):
            rows.append(
                (
                    f"({label})",
                    p.instance_type,
                    f"{p.pareto.mse_mass:.2e}",
                    f"{p.exponential.mse_mass:.2e}",
                    f"{p.pareto_exact.alpha:.2f}",
                    f"{p.pareto_exact.floor_mass:.3f}",
                    f"({p.true_alpha:.1f}, {p.true_floor_mass:.2f})",
                    f"{p.cdf_distance:.3f}",
                )
            )
        return format_table(headers, rows)

    @property
    def worst_pareto_mse(self) -> float:
        return max(p.pareto.mse_mass for p in self.panels)

    @property
    def worst_exponential_mse(self) -> float:
        return max(p.exponential.mse_mass for p in self.panels)

    @property
    def worst_floor_mass_error(self) -> float:
        return max(p.floor_mass_recovery_error for p in self.panels)


def run(config: ExperimentConfig = FULL_CONFIG) -> Fig3Result:
    """Fit both families to a synthetic two-month history per panel."""
    panels = []
    for name in FIG3_TYPES:
        itype = get_instance_type(name)
        history, _future = history_and_future(itype, config, 3)
        pareto, exponential = fit_both_families(
            history.prices, itype.on_demand_price, theta=itype.market.theta
        )
        pareto_exact, _ = fit_both_families(
            history.prices,
            itype.on_demand_price,
            theta=itype.market.theta,
            jacobian=True,
        )
        panels.append(
            Fig3Panel(
                instance_type=name,
                pareto=pareto,
                exponential=exponential,
                pareto_exact=pareto_exact,
                true_beta=itype.market.beta,
                true_alpha=itype.market.alpha,
                true_floor_mass=itype.market.floor_mass,
            )
        )
    return Fig3Result(panels=panels)
