"""Figure 4: an example persistent job's running timeline.

The paper illustrates a day of r3.xlarge prices with a persistent bid at
p = 0.0323: the job runs while the price is at or below the bid, idles
during excursions above it, and pays one recovery time per interruption,
so ``T·F(p) = 2·t_r + t_s`` for the pictured two-interruption run.  This
experiment reproduces the figure as data: the price series, the bid, the
run/idle segments, and the eq. 13 accounting identity checked against
the simulated run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..constants import seconds
from ..core.client import BiddingClient
from ..core.types import DecisionRequest, JobSpec, Strategy
from ..market.events import EventKind
from ..market.price_sources import TracePriceSource
from ..market.simulator import JobOutcome, SpotMarket
from ..core.types import BidKind
from ..traces.catalog import get_instance_type
from ..traces.generator import generate_renewal_history
from .common import ExperimentConfig, FULL_CONFIG, history_and_future

__all__ = ["Fig4Result", "run"]


@dataclass(frozen=True)
class Fig4Result:
    instance_type: str
    bid_price: float
    prices: Tuple[float, ...]
    slot_length: float
    #: (start_hour, end_hour, state) segments, state in {"run", "idle"}.
    segments: Tuple[Tuple[float, float, str], ...]
    outcome: JobOutcome
    job: JobSpec

    @property
    def accounting_residual(self) -> float:
        """Eq. 13's identity on the realized run:
        running time − (interruptions·t_r + t_s), ideally ~0."""
        expected_running = (
            self.outcome.interruptions * self.job.recovery_time
            + self.job.execution_time
        )
        return self.outcome.running_time - expected_running

    def ascii_timeline(self, width: int = 72) -> str:
        """A coarse one-line rendering: '#' running, '.' idle, ' ' done."""
        if not self.segments:
            return ""
        horizon = max(end for _s, end, _k in self.segments)
        chars = [" "] * width
        for start, end, state in self.segments:
            a = int(start / horizon * (width - 1))
            b = max(a + 1, int(end / horizon * (width - 1)))
            for i in range(a, min(b, width)):
                chars[i] = "#" if state == "run" else "."
        return "".join(chars)


def run(config: ExperimentConfig = FULL_CONFIG) -> Fig4Result:
    """Replay a persistent job over one day of sticky r3.xlarge prices."""
    itype = get_instance_type("r3.xlarge")
    history, _ = history_and_future(itype, config, 4)
    client = BiddingClient(history, ondemand_price=itype.on_demand_price)
    job = JobSpec(
        execution_time=1.0, recovery_time=seconds(30), slot_length=config.slot_length
    )
    decision = client.respond(
        DecisionRequest(job=job, strategy=Strategy.PERSISTENT)
    ).decision

    # The paper picked an illustrative day whose run shows interruptions
    # (two, in their Figure 4).  Search a handful of candidate spiky days
    # deterministically and keep the first whose run is interrupted at
    # least twice, falling back to the last candidate.
    day = None
    market = None
    rid = None
    outcome = None
    for attempt in range(48):
        rng = config.rng(4, attempt)
        candidate = generate_renewal_history(
            itype,
            days=3.0,
            rng=rng,
            floor_episode_hours=0.4,
            tail_episode_hours=0.5,
            slot_length=config.slot_length,
        )
        market = SpotMarket(TracePriceSource(candidate), slot_length=config.slot_length)
        rid = market.submit(
            bid_price=decision.price,
            work=job.execution_time,
            kind=BidKind.PERSISTENT,
            recovery_time=job.recovery_time,
        )
        market.run_until_done(max_slots=candidate.n_slots)
        outcome = market.outcome(rid)
        day = candidate
        if outcome.completed and outcome.interruptions >= 2:
            break

    # Rebuild run/idle segments from the event log.
    segments: List[Tuple[float, float, str]] = []
    state = "idle"
    seg_start = 0.0
    for event in market.log.for_request(rid):
        if event.kind in (EventKind.INSTANCE_LAUNCHED, EventKind.INSTANCE_RESUMED):
            if event.time_hours > seg_start:
                segments.append((seg_start, event.time_hours, "idle"))
            state, seg_start = "run", event.time_hours
        elif event.kind in (EventKind.INSTANCE_OUTBID, EventKind.JOB_COMPLETED):
            segments.append((seg_start, event.time_hours, "run"))
            state, seg_start = "idle", event.time_hours
    prices_shown = tuple(
        float(p) for p in day.prices[: int(outcome.submitted_slot + (outcome.completion_time or 0) / config.slot_length) + 2]
    )
    return Fig4Result(
        instance_type=itype.name,
        bid_price=decision.price,
        prices=prices_shown,
        slot_length=config.slot_length,
        segments=tuple(segments),
        outcome=outcome,
        job=job,
    )
