"""Figure 5: one-time spot requests vs on-demand instances.

The paper runs the Table 3 one-time bids "at random times of the day",
observes zero interruptions, and reports up to 91% cost reduction, with
the analytical cost predictions closely matching the bills.  Here each
repetition executes the bid on a fresh sticky future trace from a random
start slot; failed runs (rare) fall back to an on-demand rerun, exactly
the remedy the paper describes for one-time requests.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.stats import savings_fraction
from ..core.client import BiddingClient
from ..core.types import DecisionRequest, JobSpec, Strategy
from ..sweep import run_sweep
from ..traces.catalog import TABLE3_TYPES, get_instance_type
from .common import (
    ExperimentConfig,
    FULL_CONFIG,
    format_table,
    calm_start_slot,
    history_and_future,
)

__all__ = ["Fig5Bar", "Fig5Result", "run"]


@dataclass(frozen=True)
class Fig5Bar:
    """One instance type's group of bars."""

    instance_type: str
    ondemand_cost: float
    expected_cost: float  #: the analytical model's prediction
    actual_cost_mean: float  #: mean simulated ("billed") cost
    actual_cost_std: float
    interruptions: int  #: count of runs that were out-bid
    repetitions: int

    @property
    def savings(self) -> float:
        return savings_fraction(self.actual_cost_mean, self.ondemand_cost)

    @property
    def prediction_gap(self) -> float:
        """|actual − expected| / expected — the paper's "closely match"."""
        return abs(self.actual_cost_mean - self.expected_cost) / self.expected_cost


@dataclass(frozen=True)
class Fig5Result:
    bars: List[Fig5Bar]
    execution_time: float

    def table(self) -> str:
        headers = (
            "instance", "on-demand $", "expected $", "actual $",
            "savings", "interrupted", "pred.gap",
        )
        rows = [
            (
                b.instance_type,
                f"{b.ondemand_cost:.4f}",
                f"{b.expected_cost:.4f}",
                f"{b.actual_cost_mean:.4f} ± {b.actual_cost_std:.4f}",
                f"{b.savings:.1%}",
                f"{b.interruptions}/{b.repetitions}",
                f"{b.prediction_gap:.1%}",
            )
            for b in self.bars
        ]
        return format_table(headers, rows)

    @property
    def best_savings(self) -> float:
        return max(b.savings for b in self.bars)

    @property
    def worst_savings(self) -> float:
        return min(b.savings for b in self.bars)


def run(config: ExperimentConfig = FULL_CONFIG) -> Fig5Result:
    """Backtest the Table 3 one-time bids on fresh future traces.

    All repetitions for one instance type run as a single batched sweep
    (one trace stack × one bid) instead of per-repetition market runs.
    """
    job = JobSpec(execution_time=1.0, slot_length=config.slot_length)
    bars = []
    for name in TABLE3_TYPES:
        itype = get_instance_type(name)
        history, _ = history_and_future(itype, config, 50)
        client = BiddingClient(history, ondemand_price=itype.on_demand_price)
        decision = client.respond(
            DecisionRequest(job=job, strategy=Strategy.ONE_TIME)
        ).decision
        rng = config.rng(5, zlib.crc32(name.encode()))
        futures = []
        starts = []
        for rep in range(config.repetitions):
            _, future = history_and_future(itype, config, 51, rep)
            futures.append(future)
            starts.append(calm_start_slot(rng, future))
        report = run_sweep(
            futures,
            decision.price,
            job,
            strategy=Strategy.ONE_TIME,
            start_slots=starts,
        )
        completed = report.completed[:, 0]
        interrupted = int(np.count_nonzero(~completed))
        # The paper's remedy for failed one-time runs: rerun on demand.
        fallback = client.ondemand_price * job.execution_time
        costs_arr = report.cost[:, 0] + np.where(completed, 0.0, fallback)
        bars.append(
            Fig5Bar(
                instance_type=name,
                ondemand_cost=client.ondemand_cost(job),
                expected_cost=decision.expected_cost,
                actual_cost_mean=float(costs_arr.mean()),
                actual_cost_std=float(costs_arr.std(ddof=1)) if costs_arr.size > 1 else 0.0,
                interruptions=interrupted,
                repetitions=config.repetitions,
            )
        )
    return Fig5Result(bars=bars, execution_time=job.execution_time)
