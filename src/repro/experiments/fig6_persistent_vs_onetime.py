"""Figure 6: persistent vs one-time requests, percentage differences.

Three panels, each the percentage difference of a persistent strategy
(t_r = 10 s, t_r = 30 s, and the 90th-percentile heuristic) relative to
the one-time baseline on the same instance type:

* (a) price charged per running hour — negative (persistent bids lower);
* (b) job completion time — positive (persistent jobs idle when out-bid);
* (c) total job cost — negative for the optimal persistent bids, with
  the 90th-percentile heuristic saving less than the optimum.

Each repetition executes all four strategies on the *same* future trace
and start slot, so the comparisons are paired.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.stats import percent_difference
from ..constants import seconds
from ..core.client import BiddingClient
from ..core.types import DecisionRequest, JobSpec, Strategy
from ..sweep import run_sweep
from ..traces.catalog import TABLE3_TYPES, get_instance_type
from .common import (
    ExperimentConfig,
    FULL_CONFIG,
    format_table,
    calm_start_slot,
    history_and_future,
)

__all__ = ["STRATEGIES", "Fig6Cell", "Fig6Result", "run"]

#: The compared strategies, keyed by the labels used in Figure 6.
STRATEGIES = ("persistent-10s", "persistent-30s", "percentile-90")


@dataclass(frozen=True)
class Fig6Cell:
    """One (instance type, strategy) bar across the three panels."""

    instance_type: str
    strategy: str
    price_diff_pct: float  #: panel (a)
    completion_diff_pct: float  #: panel (b)
    cost_diff_pct: float  #: panel (c)
    completed: int
    repetitions: int


@dataclass(frozen=True)
class Fig6Result:
    cells: List[Fig6Cell]

    def table(self) -> str:
        headers = (
            "instance", "strategy", "(a) price/hr %", "(b) completion %",
            "(c) cost %", "completed",
        )
        rows = [
            (
                c.instance_type,
                c.strategy,
                f"{c.price_diff_pct:+.1f}",
                f"{c.completion_diff_pct:+.1f}",
                f"{c.cost_diff_pct:+.1f}",
                f"{c.completed}/{c.repetitions}",
            )
            for c in self.cells
        ]
        return format_table(headers, rows)

    def cell(self, instance_type: str, strategy: str) -> Fig6Cell:
        for c in self.cells:
            if c.instance_type == instance_type and c.strategy == strategy:
                return c
        raise KeyError((instance_type, strategy))

    def mean_cost_diff(self, strategy: str) -> float:
        vals = [c.cost_diff_pct for c in self.cells if c.strategy == strategy]
        return float(np.mean(vals))

    def mean_completion_diff(self, strategy: str) -> float:
        vals = [c.completion_diff_pct for c in self.cells if c.strategy == strategy]
        return float(np.mean(vals))

    def mean_price_diff(self, strategy: str) -> float:
        vals = [c.price_diff_pct for c in self.cells if c.strategy == strategy]
        return float(np.mean(vals))


def _strategy_decision(client: BiddingClient, strategy: str, base_ts: float):
    if strategy == "persistent-10s":
        job = JobSpec(base_ts, seconds(10))
        request = DecisionRequest(job=job, strategy=Strategy.PERSISTENT)
    elif strategy == "persistent-30s":
        job = JobSpec(base_ts, seconds(30))
        request = DecisionRequest(job=job, strategy=Strategy.PERSISTENT)
    elif strategy == "percentile-90":
        job = JobSpec(base_ts, seconds(30))
        request = DecisionRequest(
            job=job, strategy=Strategy.PERCENTILE, percentile=90.0
        )
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return job, client.respond(request).decision


def run(config: ExperimentConfig = FULL_CONFIG) -> Fig6Result:
    """Paired backtests of persistent strategies against one-time bids.

    One-hour runs on sticky traces often see no price excursion at all
    (every strategy then behaves identically), so the strategy means only
    separate with enough samples; since each run is cheap, four paired
    runs are taken per configured repetition.
    """
    base_ts = 1.0
    repetitions = config.repetitions * 4
    cells: List[Fig6Cell] = []
    for name in TABLE3_TYPES:
        itype = get_instance_type(name)
        history, _ = history_and_future(itype, config, 60)
        client = BiddingClient(history, ondemand_price=itype.on_demand_price)
        onetime_job = JobSpec(base_ts, slot_length=config.slot_length)
        onetime = client.respond(
            DecisionRequest(job=onetime_job, strategy=Strategy.ONE_TIME)
        ).decision
        # Bid decisions depend only on the history, not the repetition,
        # so they are computed once per instance type.
        plans = {s: _strategy_decision(client, s, base_ts) for s in STRATEGIES}
        rng = config.rng(6, zlib.crc32(name.encode()))

        # All repetitions share one trace stack with paired start slots;
        # each strategy is then a single-bid sweep over that stack.
        futures = []
        starts = []
        for rep in range(repetitions):
            _, future = history_and_future(itype, config, 61, rep)
            futures.append(future)
            starts.append(calm_start_slot(rng, future))

        base_report = run_sweep(
            futures, onetime.price, onetime_job,
            strategy=Strategy.ONE_TIME, start_slots=starts,
        )
        # Figure 6 compares *completed* runs (none of the paper's
        # baseline runs were interrupted); the rare failed baseline
        # runs are excluded from every panel and the completion
        # counters expose them.
        base_ok = base_report.completed[:, 0]
        base_cost_arr = base_report.cost[base_ok, 0]
        base_run_arr = base_report.running_time[base_ok, 0]
        base_price = float(np.mean(base_cost_arr / base_run_arr))
        base_time = float(np.mean(base_report.completion_time[base_ok, 0]))
        base_cost = float(np.mean(base_cost_arr))

        for strat in STRATEGIES:
            job, decision = plans[strat]
            report = run_sweep(
                futures, decision.price, job,
                strategy=Strategy.PERSISTENT, start_slots=starts,
            )
            ok = report.completed[:, 0]
            cost_arr = report.cost[ok, 0]
            run_arr = report.running_time[ok, 0]
            cells.append(
                Fig6Cell(
                    instance_type=name,
                    strategy=strat,
                    price_diff_pct=percent_difference(
                        float(np.mean(cost_arr / run_arr)), base_price
                    ),
                    completion_diff_pct=percent_difference(
                        float(np.mean(report.completion_time[ok, 0])), base_time
                    ),
                    cost_diff_pct=percent_difference(
                        float(np.mean(cost_arr)), base_cost
                    ),
                    completed=int(np.count_nonzero(ok)),
                    repetitions=repetitions,
                )
            )
    return Fig6Result(cells=cells)
