"""Figure 7: MapReduce on spot vs on-demand instances.

For each Table 4 client setting, the word-count job runs once on spot
instances (the eq. 20 plan) and once on on-demand instances (the
analytic baseline with guaranteed availability).  The paper's headline:
up to 92.6% cost reduction with a 14.9% increase in completion time —
spot is much cheaper (panel b) and somewhat slower (panel a).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.stats import percent_difference, savings_fraction
from ..mapreduce.grid import run_plan_grid
from ..mapreduce.runner import ondemand_baseline
from ..traces.catalog import get_instance_type
from .common import (
    ExperimentConfig,
    FULL_CONFIG,
    TABLE4_SETTINGS,
    format_table,
    calm_start_slot,
    history_and_future,
)
from .table4_mapreduce_plans import build_plan

__all__ = ["Fig7Bar", "Fig7Result", "run"]


@dataclass(frozen=True)
class Fig7Bar:
    setting: str
    master_type: str
    slave_type: str
    spot_completion_mean: float
    spot_completion_median: float
    spot_cost_mean: float
    ondemand_completion: float
    ondemand_cost: float
    completed: int
    repetitions: int

    @property
    def savings(self) -> float:
        """Cost reduction vs on demand (the paper: up to 92.6%)."""
        return savings_fraction(self.spot_cost_mean, self.ondemand_cost)

    @property
    def slowdown_pct(self) -> float:
        """Completion-time increase vs on demand (the paper: +14.9%)."""
        return percent_difference(self.spot_completion_mean, self.ondemand_completion)

    @property
    def median_slowdown_pct(self) -> float:
        return percent_difference(
            self.spot_completion_median, self.ondemand_completion
        )


@dataclass(frozen=True)
class Fig7Result:
    bars: List[Fig7Bar]

    def table(self) -> str:
        headers = (
            "setting", "master/slaves", "T spot (h)", "T od (h)", "slowdown",
            "med.slowdown", "$ spot", "$ od", "savings", "completed",
        )
        rows = [
            (
                b.setting,
                f"{b.master_type}/{b.slave_type}",
                f"{b.spot_completion_mean:.2f}",
                f"{b.ondemand_completion:.2f}",
                f"{b.slowdown_pct:+.1f}%",
                f"{b.median_slowdown_pct:+.1f}%",
                f"{b.spot_cost_mean:.3f}",
                f"{b.ondemand_cost:.3f}",
                f"{b.savings:.1%}",
                f"{b.completed}/{b.repetitions}",
            )
            for b in self.bars
        ]
        return format_table(headers, rows)

    @property
    def best_savings(self) -> float:
        return max(b.savings for b in self.bars)

    @property
    def worst_savings(self) -> float:
        return min(b.savings for b in self.bars)


def run(config: ExperimentConfig = FULL_CONFIG) -> Fig7Result:
    """Simulate each client setting on spot and compare with on demand."""
    bars = []
    for idx, (master_name, slave_name) in enumerate(TABLE4_SETTINGS, start=1):
        plan = build_plan(master_name, slave_name, config)
        master_t = get_instance_type(master_name)
        slave_t = get_instance_type(slave_name)
        baseline = ondemand_baseline(
            plan.job, master_t.on_demand_price, slave_t.on_demand_price
        )
        rng = config.rng(7, zlib.crc32(f"{master_name}/{slave_name}".encode()))
        master_futs, slave_futs, starts = [], [], []
        for rep in range(config.repetitions):
            _, master_fut = history_and_future(master_t, config, 71, rep)
            _, slave_fut = history_and_future(slave_t, config, 72, rep)
            master_futs.append(master_fut)
            slave_futs.append(slave_fut)
            starts.append(calm_start_slot(rng, slave_fut))
        # All repetitions go through the batched plan-grid kernel in one
        # call; results are bitwise identical to the per-rep scalar runs.
        grid = run_plan_grid(
            plan,
            master_futs,
            slave_futs,
            start_slots=starts,
            max_workers=config.max_workers,
        )
        results = grid.results(0)
        times = [r.completion_time for r in results if r.completed]
        costs = [r.total_cost for r in results if r.completed]
        completed = sum(1 for r in results if r.completed)
        bars.append(
            Fig7Bar(
                setting=f"C{idx}",
                master_type=master_name,
                slave_type=slave_name,
                spot_completion_mean=float(np.mean(times)),
                spot_completion_median=float(np.median(times)),
                spot_cost_mean=float(np.mean(costs)),
                ondemand_completion=baseline.completion_time,
                ondemand_cost=baseline.total_cost,
                completed=completed,
                repetitions=config.repetitions,
            )
        )
    return Fig7Result(bars=bars)
