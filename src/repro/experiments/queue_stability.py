"""Propositions 1–3 validation: queue stability and equilibrium prices.

Not a numbered figure in the paper, but the analytical backbone of
Section 4.  Four checks per Figure 3 instance type:

1. **Prop. 2 (equilibrium).**  With constant arrivals ``Λ̄`` the closed
   loop converges: ``L(t+1) = L(t)`` at the fixed point and the price
   settles at ``h(Λ̄)`` (eq. 6), starting from a perturbed queue.
2. **Prop. 1 (stability).**  Starting the queue far above the Lyapunov
   level ``B/ε``, the realized drift is negative and the queue falls
   back; the long-run mean stays below ``B/ε``.
3. **Prop. 3 (push-forward).**  Prices sampled from the equilibrium
   model match ``h(Λ)`` applied to arrival samples (two-sample K-S) —
   the distributional identity behind every bidding formula.
4. **Day/night invariance (§4.3).**  An i.i.d. equilibrium history
   passes the paper's K-S similarity criterion (p > 0.01).

A deliberate non-check, documented here: the *closed-loop* price series
with random arrivals is **not** distributed as the Prop. 3 push-forward,
because with the tiny fitted θ (0.02) the queue integrates arrivals over
many slots instead of tracking them.  The paper's "i.i.d. prices at
equilibrium" is the Λ-tracking idealization that Prop. 2 describes; the
bidding strategies consume the price distribution directly, so nothing
downstream depends on the discrepancy.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.distributions import KSResult, ks_two_sample
from ..provider.lyapunov import drift_bound, empirical_drift
from ..provider.arrivals import DeterministicArrivals
from ..provider.queue import ProviderSimulation
from ..traces.catalog import FIG3_TYPES, get_instance_type
from ..traces.generator import generate_equilibrium_history, market_model_for
from .common import ExperimentConfig, FULL_CONFIG, format_table

__all__ = ["StabilityRow", "QueueStabilityResult", "run"]


@dataclass(frozen=True)
class StabilityRow:
    instance_type: str
    #: |L(t+1) − L(t)| after convergence under constant arrivals.
    equilibrium_queue_residual: float
    #: |price − h(Λ̄)| after convergence under constant arrivals.
    equilibrium_price_residual: float
    #: Prop. 1 Lyapunov level B/ε.
    lyapunov_level: float
    #: Mean realized drift while the queue sat above B/ε (negative = stable).
    drift_above_level: float
    #: Long-run mean queue under random arrivals.
    mean_queue: float
    pushforward_ks: KSResult
    day_night_ks: KSResult

    @property
    def prop1_holds(self) -> bool:
        return (
            self.drift_above_level < 0.0
            and self.mean_queue <= self.lyapunov_level
        )

    @property
    def prop2_holds(self) -> bool:
        return (
            self.equilibrium_queue_residual < 1e-6
            and self.equilibrium_price_residual < 1e-9
        )


@dataclass(frozen=True)
class QueueStabilityResult:
    rows: List[StabilityRow]

    def table(self) -> str:
        headers = (
            "instance", "|dL| eq", "|dpi| eq", "B/eps", "drift>lvl",
            "mean L", "KS(h) p", "KS(day/night) p",
        )
        body = [
            (
                r.instance_type,
                f"{r.equilibrium_queue_residual:.2e}",
                f"{r.equilibrium_price_residual:.2e}",
                f"{r.lyapunov_level:.2f}",
                f"{r.drift_above_level:.3f}",
                f"{r.mean_queue:.3f}",
                f"{r.pushforward_ks.p_value:.3f}",
                f"{r.day_night_ks.p_value:.3f}",
            )
            for r in self.rows
        ]
        return format_table(headers, body)

    @property
    def all_stable(self) -> bool:
        return all(r.prop1_holds and r.prop2_holds for r in self.rows)


def run(config: ExperimentConfig = FULL_CONFIG) -> QueueStabilityResult:
    """Run the Prop. 1–3 checks for each Figure 3 instance type."""
    rows = []
    for name in FIG3_TYPES:
        itype = get_instance_type(name)
        model = market_model_for(itype)
        rng = config.rng(9, zlib.crc32(name.encode()))

        # --- Prop. 2: constant arrivals → fixed point ------------------
        lam_bar = float(model.arrivals.mean())
        det = ProviderSimulation(
            arrivals=DeterministicArrivals(lam_bar),
            beta=model.beta,
            theta=model.theta,
            pi_bar=model.pi_bar,
            pi_min=model.lower,
        )
        det.reset(det.initial_demand * 3.0)  # start well off equilibrium
        det_trace = det.run(4000, rng)
        tail = det_trace.demand[-10:]
        eq_queue_resid = float(np.abs(np.diff(tail)).max())
        eq_price_resid = abs(det_trace.price[-1] - model.h(lam_bar))

        # --- Prop. 1: drift from far above the Lyapunov level ----------
        bound = drift_bound(model.arrivals, model.theta, model.pi_bar, model.lower)
        stressed = ProviderSimulation(
            arrivals=model.arrivals,
            beta=model.beta,
            theta=model.theta,
            pi_bar=model.pi_bar,
            pi_min=model.lower,
            initial_demand=3.0 * bound.stable_queue_level,
        )
        stress_trace = stressed.run(4000, rng)
        above = stress_trace.demand[:-1] > bound.stable_queue_level
        drifts = empirical_drift(stress_trace.demand)
        drift_above = float(drifts[above].mean()) if above.any() else float("nan")
        mean_queue = float(stress_trace.demand[-1000:].mean())

        # --- Prop. 3: the push-forward identity ------------------------
        n = 4000
        from_model = model.sample(n, rng)
        mapped = np.asarray(
            [model.h(float(lam)) for lam in model.arrivals.sample(n, rng)]
        )
        push_ks = ks_two_sample(from_model, mapped)

        # --- §4.3 day/night similarity on an i.i.d. history ------------
        history = generate_equilibrium_history(
            itype, days=config.history_days, rng=rng,
            slot_length=config.slot_length,
        )
        day, night = history.day_night_split()
        dn_ks = ks_two_sample(day, night)

        rows.append(
            StabilityRow(
                instance_type=name,
                equilibrium_queue_residual=eq_queue_resid,
                equilibrium_price_residual=eq_price_resid,
                lyapunov_level=bound.stable_queue_level,
                drift_above_level=drift_above,
                mean_queue=mean_queue,
                pushforward_ks=push_ks,
                day_night_ks=dn_ks,
            )
        )
    return QueueStabilityResult(rows=rows)
