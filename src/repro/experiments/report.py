"""One-shot regeneration of every paper artifact as a markdown report.

``repro-bid experiment all --out report.md`` (or
:func:`generate_report`) runs the full evaluation suite and renders a
single document mirroring EXPERIMENTS.md's structure — useful for
re-validating the reproduction after any change to the substrates.
"""

from __future__ import annotations

import io
import time
from typing import Optional, TextIO

from . import (
    ablations,
    fig3_price_pdf,
    fig4_job_timeline,
    fig5_onetime_costs,
    fig6_persistent_vs_onetime,
    fig7_mapreduce_costs,
    queue_stability,
    table3_bid_prices,
    table4_mapreduce_plans,
)
from .common import ExperimentConfig, FULL_CONFIG

__all__ = ["generate_report"]

_SECTIONS = (
    ("Figure 3 — spot-price PDF fits", fig3_price_pdf),
    ("Figure 4 — example job timeline", fig4_job_timeline),
    ("Table 3 — optimal bid prices", table3_bid_prices),
    ("Figure 5 — one-time vs on-demand", fig5_onetime_costs),
    ("Figure 6 — persistent vs one-time", fig6_persistent_vs_onetime),
    ("Table 4 — MapReduce plans", table4_mapreduce_plans),
    ("Figure 7 — MapReduce vs on-demand", fig7_mapreduce_costs),
    ("Propositions 1–3 — queue stability", queue_stability),
)


def _write_section(out: TextIO, title: str, body: str, elapsed: float) -> None:
    out.write(f"## {title}\n\n")
    out.write("```\n")
    out.write(body.rstrip("\n"))
    out.write("\n```\n\n")
    out.write(f"_regenerated in {elapsed:.1f}s_\n\n")


def generate_report(
    config: ExperimentConfig = FULL_CONFIG,
    *,
    include_ablations: bool = True,
    stream: Optional[TextIO] = None,
) -> str:
    """Run every experiment and return (and optionally stream) markdown."""
    out = stream if stream is not None else io.StringIO()
    out.write("# Reproduction report — 'How to Bid the Cloud'\n\n")
    out.write(
        f"Configuration: {config.history_days:g}-day histories, "
        f"{config.repetitions} repetitions, seed {config.seed}.\n\n"
    )
    for title, module in _SECTIONS:
        start = time.perf_counter()
        result = module.run(config)
        elapsed = time.perf_counter() - start
        body = result.table() if hasattr(result, "table") else ""
        if module is fig4_job_timeline:
            body = (
                f"bid ${result.bid_price:.4f}/h  "
                f"interruptions {result.outcome.interruptions}\n"
                + result.ascii_timeline()
            )
        _write_section(out, title, body, elapsed)

    if include_ablations:
        studies = (
            ("Ablation — provider weight β", lambda: ablations.beta_sweep()),
            ("Ablation — recovery time t_r", lambda: ablations.recovery_sweep(config)),
            ("Ablation — slave count M", lambda: ablations.slave_count_sweep(config)),
            ("Ablation — temporal texture", lambda: ablations.temporal_texture(config)),
            ("Ablation — billing policy", lambda: ablations.billing_comparison(config)),
            ("Ablation — forecasting", lambda: ablations.forecasting_comparison(config)),
            ("Ablation — checkpoint interval", lambda: ablations.checkpoint_sweep(config)),
            ("Ablation — adaptive re-bidding", lambda: ablations.adaptive_rebidding(config)),
            ("Ablation — fleet allocation", lambda: ablations.fleet_allocation(config)),
            ("Ablation — scheduling policy", lambda: ablations.scheduling_policy(config)),
            ("Ablation — history length", lambda: ablations.history_length_sensitivity(config)),
        )
        for title, runner in studies:
            start = time.perf_counter()
            result = runner()
            elapsed = time.perf_counter() - start
            _write_section(out, title, result.table(), elapsed)

    if stream is None:
        return out.getvalue()
    return ""
