"""Table 3: optimal bid prices for a one-hour job on five instance types.

Columns mirror the paper: the one-time bid (Prop. 4), persistent bids for
recovery times of 10 s and 30 s (Prop. 5), and the "best offline price in
retrospect" p̃ computed from the last 10 hours of history.  The paper's
qualitative findings, asserted by the benchmark:

* persistent bids sit below the one-time bid;
* a longer recovery time raises the persistent bid (t_r=30s > t_r=10s);
* the retrospective p̃ can fall below the one-time bid — bidding it would
  risk termination, showing 10 hours of history is insufficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..constants import seconds
from ..core.client import BiddingClient
from ..core.heuristics import retrospective_best_price
from ..core.types import DecisionRequest, JobSpec, Strategy
from ..traces.catalog import TABLE3_TYPES, get_instance_type
from .common import ExperimentConfig, FULL_CONFIG, format_table, history_and_future

__all__ = ["Table3Row", "Table3Result", "run"]


@dataclass(frozen=True)
class Table3Row:
    instance_type: str
    ondemand: float
    onetime_bid: float
    persistent_bid_10s: float
    persistent_bid_30s: float
    retrospective: float

    @property
    def ordering_holds(self) -> bool:
        """p*(10s) < p*(30s) < one-time bid (Fig. 6(a)'s shape)."""
        return (
            self.persistent_bid_10s
            < self.persistent_bid_30s
            < self.onetime_bid
        )


@dataclass(frozen=True)
class Table3Result:
    rows: List[Table3Row]
    execution_time: float

    def table(self) -> str:
        headers = (
            "instance", "on-demand", "one-time p*",
            "persistent p* (10s)", "persistent p* (30s)", "retrospective p~",
        )
        body = [
            (
                r.instance_type,
                f"{r.ondemand:.4f}",
                f"{r.onetime_bid:.4f}",
                f"{r.persistent_bid_10s:.4f}",
                f"{r.persistent_bid_30s:.4f}",
                f"{r.retrospective:.4f}",
            )
            for r in self.rows
        ]
        return format_table(headers, body)

    @property
    def all_orderings_hold(self) -> bool:
        return all(r.ordering_holds for r in self.rows)


def run(config: ExperimentConfig = FULL_CONFIG) -> Table3Result:
    """Compute Table 3's bids from each type's two-month history."""
    execution_time = 1.0  # the paper's one-hour job
    rows = []
    for name in TABLE3_TYPES:
        itype = get_instance_type(name)
        history, future = history_and_future(itype, config, 30)
        client = BiddingClient(history, ondemand_price=itype.on_demand_price)
        onetime = client.respond(
            DecisionRequest(job=JobSpec(execution_time), strategy=Strategy.ONE_TIME)
        ).decision
        p10 = client.respond(
            DecisionRequest(
                job=JobSpec(execution_time, seconds(10)),
                strategy=Strategy.PERSISTENT,
            )
        ).decision
        p30 = client.respond(
            DecisionRequest(
                job=JobSpec(execution_time, seconds(30)),
                strategy=Strategy.PERSISTENT,
            )
        ).decision
        # p̃ looks back over the most recent 10h of (sticky) prices — the
        # renewal future's first day stands in for "just before bidding".
        recent = future.slice_slots(0, int(round(10.0 / future.slot_length)))
        retro = retrospective_best_price(
            recent.prices,
            lookback_slots=recent.n_slots,
            run_slots=int(round(execution_time / future.slot_length)),
        )
        rows.append(
            Table3Row(
                instance_type=name,
                ondemand=itype.on_demand_price,
                onetime_bid=onetime.price,
                persistent_bid_10s=p10.price,
                persistent_bid_30s=p30.price,
                retrospective=retro,
            )
        )
    return Table3Result(rows=rows, execution_time=execution_time)
