"""Table 4: MapReduce bidding plans for five client settings.

Each setting pairs a master instance type with a (compute- or memory-
optimized) slave type, computes the joint bids of eq. 20 for the word-
count workload (t_r = 30 s, t_o = 60 s), and breaks the simulated cost
into master and slave components.  The paper reports the master costing
10–25% of the slave cost, and minimum viable slave counts as low as 3–4.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..constants import seconds
from ..core.mapreduce import plan_master_slave
from ..core.types import MapReducePlan
from ..mapreduce.grid import run_plan_grid
from ..mapreduce.job import MapReduceWorkload
from ..traces.catalog import get_instance_type
from .common import (
    ExperimentConfig,
    FULL_CONFIG,
    TABLE4_SETTINGS,
    format_table,
    calm_start_slot,
    history_and_future,
)

__all__ = ["WORDCOUNT", "Table4Row", "Table4Result", "run", "build_plan"]

#: The word-count workload used by every Table 4 / Figure 7 setting:
#: 16 instance-hours of map+reduce work with the paper's t_r/t_o.
WORDCOUNT = MapReduceWorkload(
    map_hours=15.0,
    reduce_hours=1.0,
    split_overhead=seconds(60),
    recovery_time=seconds(30),
)


@dataclass(frozen=True)
class Table4Row:
    setting: str
    master_type: str
    slave_type: str
    master_bid: float
    slave_bid: float
    num_slaves: int
    min_slaves: int
    master_cost: float
    slave_cost: float
    #: Runs per termination reason, e.g. ``{"completed": 10}``.
    termination_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def master_cost_fraction(self) -> float:
        """Master over slave cost — the paper reports 10–25%."""
        return self.master_cost / self.slave_cost if self.slave_cost > 0 else float("inf")


def _completed_cell(counts: Dict[str, int]) -> str:
    """``"10/10"`` plus the dominant failure reason, if any."""
    if not counts:
        return "-"
    total = sum(counts.values())
    done = counts.get("completed", 0)
    cell = f"{done}/{total}"
    failures = {k: v for k, v in counts.items() if k != "completed" and v}
    if failures:
        worst = max(failures, key=failures.get)
        cell += f" ({worst})"
    return cell


@dataclass(frozen=True)
class Table4Result:
    rows: List[Table4Row]

    def table(self) -> str:
        headers = (
            "setting", "master", "slaves", "p_m*", "p_v*", "M", "M_min",
            "master $", "slave $", "master/slave", "completed",
        )
        body = [
            (
                r.setting,
                r.master_type,
                r.slave_type,
                f"{r.master_bid:.4f}",
                f"{r.slave_bid:.4f}",
                r.num_slaves,
                r.min_slaves,
                f"{r.master_cost:.4f}",
                f"{r.slave_cost:.4f}",
                f"{r.master_cost_fraction:.1%}",
                _completed_cell(r.termination_counts),
            )
            for r in self.rows
        ]
        return format_table(headers, body)

    @property
    def fractions(self) -> List[float]:
        return [r.master_cost_fraction for r in self.rows]


def build_plan(
    master_name: str, slave_name: str, config: ExperimentConfig
) -> MapReducePlan:
    """The standard Table 4 plan for one client setting.

    Following §6.2, the slave count is anchored at the minimum M̲ that
    makes eq. 20 feasible ("this minimum number of nodes ... can be as
    low as 3 or 4") plus a small margin of two nodes, matching the small
    clusters of the paper's Table 4 runs.
    """
    master_t = get_instance_type(master_name)
    slave_t = get_instance_type(slave_name)
    master_hist, _ = history_and_future(master_t, config, 40)
    slave_hist, _ = history_and_future(slave_t, config, 41)
    md, sd = master_hist.to_distribution(), slave_hist.to_distribution()
    job = WORDCOUNT.to_job_spec(num_slaves=6, slot_length=config.slot_length)
    seed_plan = plan_master_slave(
        md, sd, job,
        master_ondemand=master_t.on_demand_price,
        slave_ondemand=slave_t.on_demand_price,
    )
    chosen = max(seed_plan.min_slaves + 2, 4)
    if chosen == job.num_slaves:
        return seed_plan
    return plan_master_slave(
        md, sd, job.with_slaves(chosen),
        master_ondemand=master_t.on_demand_price,
        slave_ondemand=slave_t.on_demand_price,
    )


def run(config: ExperimentConfig = FULL_CONFIG) -> Table4Result:
    """Plan and simulate each client setting, splitting the costs."""
    rows = []
    for idx, (master_name, slave_name) in enumerate(TABLE4_SETTINGS, start=1):
        plan = build_plan(master_name, slave_name, config)
        master_t = get_instance_type(master_name)
        slave_t = get_instance_type(slave_name)
        rng = config.rng(42, zlib.crc32(f"{master_name}/{slave_name}".encode()))
        master_futs, slave_futs, starts = [], [], []
        for rep in range(config.repetitions):
            _, master_fut = history_and_future(master_t, config, 43, rep)
            _, slave_fut = history_and_future(slave_t, config, 44, rep)
            master_futs.append(master_fut)
            slave_futs.append(slave_fut)
            starts.append(calm_start_slot(rng, slave_fut))
        # One batched-kernel call replaces the per-repetition scalar
        # loop; the outputs are bitwise identical.
        grid = run_plan_grid(
            plan,
            master_futs,
            slave_futs,
            start_slots=starts,
            max_workers=config.max_workers,
        )
        master_costs, slave_costs = [], []
        for result in grid.results(0):
            if result.completed:
                master_costs.append(result.master_cost)
                slave_costs.append(result.slave_cost)
        rows.append(
            Table4Row(
                setting=f"C{idx}",
                master_type=master_name,
                slave_type=slave_name,
                master_bid=plan.master_bid.price,
                slave_bid=plan.slave_bid.price,
                num_slaves=plan.job.num_slaves,
                min_slaves=plan.min_slaves,
                master_cost=float(np.mean(master_costs)),
                slave_cost=float(np.mean(slave_costs)),
                termination_counts=grid.termination_counts(0),
            )
        )
    return Table4Result(rows=rows)
