"""Section 8 extensions, implemented: risk-averse bidding, temporally
correlated prices, collective (multi-user) bidding, dependent-task (DAG)
bidding, and the portfolio / CVaR workloads built on top.

Every extension's grid evaluation routes through the batched kernels in
:mod:`repro.extensions.kernels` (``REPRO_SWEEP_KERNEL`` selects the
vectorized fast path or the retained scalar oracles).
"""

from .collective import (
    CollectiveOutcome,
    CollectiveRound,
    StrategicClass,
    iterate_collective_bidding,
)
from .correlated import (
    autocorrelation,
    expected_interruptions_markov,
    interruption_reduction_factor,
    lag1_persistence_grid,
    lag1_price_persistence,
)
from .checkpointing import (
    CheckpointPlan,
    CheckpointPolicy,
    effective_job,
    optimize_checkpoint_interval,
)
from .dag import (
    DagPlan,
    DagRunResult,
    DagSweepReport,
    TaskGraph,
    plan_dag,
    run_dag_on_trace,
    sweep_dag_plan,
)
from .forecasting import (
    Ar1Forecaster,
    EwmaForecaster,
    PriceForecaster,
    forecast_bid,
    forecast_sweep,
)
from .kernels import extension_kernel_pair, select_ext_kernel
from .portfolio import (
    cvar_bid,
    cvar_from_costs,
    optimal_portfolio_bid,
    portfolio_frontier,
)
from .spot_blocks import (
    PurchasingOption,
    block_cost_grid,
    block_price,
    compare_purchasing_options,
)
from .risk import (
    conditional_price_variance,
    deadline_chance_bid,
    deadline_miss_probability,
    variance_bounded_bid,
)

__all__ = [
    "CollectiveOutcome",
    "CollectiveRound",
    "StrategicClass",
    "iterate_collective_bidding",
    "autocorrelation",
    "expected_interruptions_markov",
    "interruption_reduction_factor",
    "lag1_persistence_grid",
    "lag1_price_persistence",
    "CheckpointPlan",
    "CheckpointPolicy",
    "effective_job",
    "optimize_checkpoint_interval",
    "DagPlan",
    "DagRunResult",
    "DagSweepReport",
    "TaskGraph",
    "plan_dag",
    "run_dag_on_trace",
    "sweep_dag_plan",
    "Ar1Forecaster",
    "EwmaForecaster",
    "PriceForecaster",
    "forecast_bid",
    "forecast_sweep",
    "extension_kernel_pair",
    "select_ext_kernel",
    "cvar_bid",
    "cvar_from_costs",
    "optimal_portfolio_bid",
    "portfolio_frontier",
    "PurchasingOption",
    "block_cost_grid",
    "block_price",
    "compare_purchasing_options",
    "conditional_price_variance",
    "deadline_chance_bid",
    "deadline_miss_probability",
    "variance_bounded_bid",
]
