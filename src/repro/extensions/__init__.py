"""Section 8 extensions, implemented: risk-averse bidding, temporally
correlated prices, collective (multi-user) bidding, and dependent-task
(DAG) bidding."""

from .collective import (
    CollectiveOutcome,
    CollectiveRound,
    StrategicClass,
    iterate_collective_bidding,
)
from .correlated import (
    autocorrelation,
    expected_interruptions_markov,
    interruption_reduction_factor,
    lag1_price_persistence,
)
from .checkpointing import (
    CheckpointPlan,
    CheckpointPolicy,
    effective_job,
    optimize_checkpoint_interval,
)
from .dag import DagPlan, DagRunResult, TaskGraph, plan_dag, run_dag_on_trace
from .forecasting import Ar1Forecaster, EwmaForecaster, PriceForecaster, forecast_bid
from .spot_blocks import (
    PurchasingOption,
    block_price,
    compare_purchasing_options,
)
from .risk import (
    conditional_price_variance,
    deadline_chance_bid,
    deadline_miss_probability,
    variance_bounded_bid,
)

__all__ = [
    "CollectiveOutcome",
    "CollectiveRound",
    "StrategicClass",
    "iterate_collective_bidding",
    "autocorrelation",
    "expected_interruptions_markov",
    "interruption_reduction_factor",
    "lag1_price_persistence",
    "CheckpointPlan",
    "CheckpointPolicy",
    "effective_job",
    "optimize_checkpoint_interval",
    "DagPlan",
    "DagRunResult",
    "TaskGraph",
    "plan_dag",
    "run_dag_on_trace",
    "Ar1Forecaster",
    "EwmaForecaster",
    "PriceForecaster",
    "forecast_bid",
    "PurchasingOption",
    "block_price",
    "compare_purchasing_options",
    "conditional_price_variance",
    "deadline_chance_bid",
    "deadline_miss_probability",
    "variance_bounded_bid",
]
