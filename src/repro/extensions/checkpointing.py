"""Checkpoint-interval optimization for spot jobs.

The paper treats the per-interruption recovery time ``t_r`` as a given
job property ("configured to save their data to a separate volume once
interrupted").  In practice ``t_r`` is *engineered* by checkpointing
(cf. Yi et al., "Monetary cost-aware checkpointing and migration on
Amazon cloud spot instances", referenced as [37]): checkpoint every
``τ`` hours at a cost of ``t_c`` per checkpoint, and an interruption
loses on average half a checkpoint interval of work plus a constant
restore time:

    t_r(τ) = t_restore + τ/2
    overhead(τ) = (t_s/τ)·t_c                   (time spent checkpointing)

This module closes the loop between checkpoint engineering and bidding:
for each candidate interval the effective job spec (inflated execution
time, induced ``t_r``) is re-optimized with Prop. 5, and the interval
with the lowest total expected cost wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.types import BidDecision, BidKind, JobSpec
from ..core.distributions import PriceDistribution
from ..errors import InfeasibleBidError
from .kernels import select_ext_kernel

__all__ = [
    "CheckpointPolicy",
    "conservative_cost",
    "best_capped_bid",
    "effective_job",
    "CheckpointPlan",
    "optimize_checkpoint_interval",
]


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpoint every ``interval`` hours, paying ``checkpoint_cost``
    hours per checkpoint and ``restore_time`` hours per resume."""

    interval: float
    checkpoint_cost: float = 10.0 / 3600.0
    restore_time: float = 10.0 / 3600.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval!r}")
        if self.checkpoint_cost < 0 or self.restore_time < 0:
            raise ValueError("checkpoint_cost and restore_time must be >= 0")

    @property
    def recovery_time(self) -> float:
        """Expected per-interruption recovery: restore + half an interval
        of lost work."""
        return self.restore_time + self.interval / 2.0


def effective_job(job: JobSpec, policy: CheckpointPolicy) -> JobSpec:
    """The job as the market sees it under a checkpoint policy.

    Execution time inflates by the checkpointing overhead
    ``(t_s/τ)·t_c`` and the recovery time becomes ``t_restore + τ/2``.
    """
    n_checkpoints = job.execution_time / policy.interval
    inflated = job.execution_time + n_checkpoints * policy.checkpoint_cost
    return JobSpec(
        execution_time=inflated,
        recovery_time=policy.recovery_time,
        slot_length=job.slot_length,
    )


def conservative_cost(
    dist: PriceDistribution, price: float, job: JobSpec
) -> float:
    """Φ_sp with a non-negative recovery count.

    Eq. 13 credits the run one recovery it never pays (its numerator is
    ``t_s − t_r``; at ``F(p) = 1`` it predicts a running time *below*
    the execution time).  For ordinary jobs ``t_r ≪ t_s`` and the quirk
    is negligible, but checkpoint optimization sweeps ``t_r`` up to
    hours, where the phantom credit would dominate.  This variant solves
    the same fixed point with recovery per interruption and no credit:

        running = t_s / (1 − (t_r/t_k)(1 − F(p)))

    and shares eq. 15's minimizer (the numerator is constant in ``p``).
    """
    accept = dist.cdf(price)
    if accept <= 0.0:
        return math.inf
    r = job.recovery_time / job.slot_length
    denom = 1.0 - r * (1.0 - accept)
    if denom <= 0.0:
        return math.inf
    running = job.execution_time / denom
    return running * dist.partial_expectation(price) / accept


@dataclass(frozen=True)
class CheckpointPlan:
    """The chosen interval with its induced job and bid."""

    policy: CheckpointPolicy
    job: JobSpec
    decision: BidDecision
    #: Expected cost under the non-negative-recovery accounting.
    conservative_expected_cost: float

    @property
    def total_expected_cost(self) -> float:
        return self.conservative_expected_cost


def _capped_candidates(
    dist: PriceDistribution, max_bid: Optional[float]
) -> "tuple[np.ndarray, float]":
    """Candidate bids at or below the cap (the cap is bid-policy, not
    interval-dependent, so one array serves every effective job)."""
    from ..core.persistent import candidate_prices

    cap = dist.upper if max_bid is None else min(max_bid, dist.upper)
    candidates = np.asarray(
        [float(p) for p in candidate_prices(dist, dist.lower) if p <= cap + 1e-15]
    )
    if candidates.size == 0:
        raise InfeasibleBidError(f"no candidate bids at or below {max_bid!r}")
    return candidates, cap


def best_capped_bid(
    dist: PriceDistribution, job: JobSpec, max_bid: Optional[float] = None
) -> BidDecision:
    """Minimize the conservative cost over candidate bids at or below
    ``max_bid`` (no cap when ``None``).

    A bid cap is how checkpointing becomes interesting: when the market's
    price ceiling is reachable, bidding it guarantees zero interruptions
    at nearly the mean price, so "never checkpoint, bid the ceiling" wins
    trivially.  Risk policy (bounding exposure to price spikes — the
    Section 8 risk-averseness discussion) caps the admissible bid, which
    re-introduces interruptions and hence the recovery-vs-overhead trade.
    """
    from ..core import costs as cost_fns

    candidates, cap = _capped_candidates(dist, max_bid)
    cost = select_ext_kernel("checkpoint_grid")(dist, candidates, [job])["cost"][0]
    best = int(np.argmin(cost))
    best_value = float(cost[best])
    if math.isinf(best_value):
        raise InfeasibleBidError(
            f"no feasible bid at or below {cap!r} for t_r={job.recovery_time!r}"
        )
    best_price = float(candidates[best])
    accept = dist.cdf(best_price)
    running = job.execution_time / (
        1.0 - (job.recovery_time / job.slot_length) * (1.0 - accept)
    )
    completion = running / accept if accept > 0 else math.inf
    return BidDecision(
        price=best_price,
        kind=BidKind.PERSISTENT,
        expected_cost=best_value,
        expected_completion_time=completion,
        expected_running_time=running,
        expected_interruptions=cost_fns.expected_interruptions(
            dist, best_price, completion, job.slot_length
        ),
        acceptance_probability=accept,
    )


def optimize_checkpoint_interval(
    dist: PriceDistribution,
    job: JobSpec,
    *,
    checkpoint_cost: float = 10.0 / 3600.0,
    restore_time: float = 10.0 / 3600.0,
    candidate_intervals: Optional[Sequence[float]] = None,
    max_bid: Optional[float] = None,
) -> CheckpointPlan:
    """Jointly choose the checkpoint interval and the (capped) bid.

    Short intervals tame ``t_r`` (cheaper, lower bids — Prop. 5) but
    inflate the execution time; long intervals do the reverse.  The
    default candidate grid spans seconds-scale to the full job length on
    a log scale.  ``max_bid`` caps the admissible bid (see
    :func:`best_capped_bid`); without it the ceiling bid dominates and
    the optimizer correctly reports "don't checkpoint".

    Raises :class:`InfeasibleBidError` when no candidate yields a finite
    expected cost.
    """
    if candidate_intervals is None:
        lo = max(60.0 / 3600.0, 2.0 * checkpoint_cost)
        hi = max(job.execution_time, lo * 2.0)
        candidate_intervals = [
            lo * (hi / lo) ** (k / 11.0) for k in range(12)
        ]

    # One batched kernel call scores every (interval, candidate bid)
    # cell; per-row and cross-row argmin first-occurrence ties reproduce
    # the original strict-inequality scans (earliest interval wins).
    policies: List[CheckpointPolicy] = []
    jobs: List[JobSpec] = []
    for interval in candidate_intervals:
        policy = CheckpointPolicy(
            interval=float(interval),
            checkpoint_cost=checkpoint_cost,
            restore_time=restore_time,
        )
        candidate = effective_job(job, policy)
        if candidate.execution_time <= candidate.recovery_time:
            continue
        policies.append(policy)
        jobs.append(candidate)
    if not jobs:
        raise InfeasibleBidError(
            "no checkpoint interval admits a feasible persistent bid"
        )
    try:
        candidates, _cap = _capped_candidates(dist, max_bid)
    except InfeasibleBidError:
        raise InfeasibleBidError(
            "no checkpoint interval admits a feasible persistent bid"
        ) from None
    cost = select_ext_kernel("checkpoint_grid")(dist, candidates, jobs)["cost"]
    row_best = cost.min(axis=1)
    if not np.isfinite(row_best).any():
        raise InfeasibleBidError(
            "no checkpoint interval admits a feasible persistent bid"
        )
    winner = int(np.argmin(np.where(np.isfinite(row_best), row_best, np.inf)))
    decision = best_capped_bid(dist, jobs[winner], max_bid)
    return CheckpointPlan(
        policy=policies[winner],
        job=jobs[winner],
        decision=decision,
        conservative_expected_cost=decision.expected_cost,
    )
