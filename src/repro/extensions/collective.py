"""Collective user behavior (Section 8, "Collective user behavior").

The paper's strategies assume a single optimizing user cannot move the
spot price.  If *many* users optimize, the bid-price distribution the
provider sees is no longer the uniform ``f_p`` of Section 4.1, which
changes the revenue-maximizing spot prices, which changes the optimal
bids, and so on.  The paper suggests studying exactly this loop: "assume
that users with a distribution of jobs optimize their bids and use
Section 4's model to derive the effect on the provider's offered spot
price."

:func:`iterate_collective_bidding` implements that study as a best-
response iteration:

1. Start from the uniform bid distribution (the paper's baseline).
2. Simulate the provider's closed-loop market against the current bid
   distribution (a mixture of strategic bid atoms and residual uniform
   background), producing a price trace.
3. Let each strategic user class re-optimize its bid against the
   empirical distribution of that trace.
4. Repeat until bids stop moving (a fixed point) or a round limit hits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.distcache import cached_distribution
from ..core.persistent import optimal_persistent_bid
from ..core.types import JobSpec
from ..errors import DistributionError
from ..provider.arrivals import ArrivalProcess
from ..provider.pricing import validate_price_band
from .kernels import select_ext_kernel

__all__ = ["StrategicClass", "CollectiveRound", "CollectiveOutcome", "iterate_collective_bidding"]


@dataclass(frozen=True)
class StrategicClass:
    """A class of identical optimizing users."""

    job: JobSpec
    #: Fraction of the provider's total demand placed by this class.
    weight: float

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise DistributionError(f"weight must be in (0, 1], got {self.weight!r}")


@dataclass(frozen=True)
class CollectiveRound:
    """One best-response round's bids and resulting mean price."""

    bids: tuple
    mean_price: float
    price_std: float


@dataclass(frozen=True)
class CollectiveOutcome:
    """The whole iteration: per-round records plus convergence data."""

    rounds: List[CollectiveRound]
    converged: bool

    @property
    def final_bids(self) -> tuple:
        return self.rounds[-1].bids

    @property
    def price_drift(self) -> float:
        """Mean-price change from the uniform baseline to the fixed point."""
        return self.rounds[-1].mean_price - self.rounds[0].mean_price


def _accepted_fraction(
    price: float,
    strategic_bids: Sequence[float],
    weights: Sequence[float],
    background_weight: float,
    pi_bar: float,
    pi_min: float,
) -> float:
    """Fraction of submitted bids at or above ``price`` under the mixture
    of strategic atoms and a uniform background (Section 4.1's f_p)."""
    frac = background_weight * min(
        max((pi_bar - price) / (pi_bar - pi_min), 0.0), 1.0
    )
    for bid, w in zip(strategic_bids, weights):
        if bid >= price:
            frac += w
    return frac


def _simulate_prices(
    strategic_bids: Sequence[float],
    weights: Sequence[float],
    background_weight: float,
    arrivals: ArrivalProcess,
    *,
    beta: float,
    theta: float,
    pi_bar: float,
    pi_min: float,
    n_slots: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Closed-loop provider against the mixed bid distribution.

    The price is optimized per slot over the candidate set where the
    objective can change: the floor, each strategic atom (and just above
    it), and a grid over the uniform background.
    """
    candidates = {pi_min}
    for b in strategic_bids:
        clipped = min(max(b, pi_min), pi_bar)
        candidates.add(clipped)
        candidates.add(min(clipped + 1e-9, pi_bar))
    candidates.update(np.linspace(pi_min, pi_bar, 64))
    cand = np.asarray(sorted(candidates))

    demand = arrivals.mean() / theta if math.isfinite(arrivals.mean()) else 1.0
    arr_seq = arrivals.sample(n_slots, rng)
    prices = np.empty(n_slots)
    # The slot loop stays sequential (each slot's demand feeds the
    # next), but the per-slot candidate scan runs through the batched
    # ``collective_slot`` kernel; ``argmax`` first-occurrence ties
    # reproduce the scalar loop's strict-inequality scan.
    kernel = select_ext_kernel("collective_slot")
    for t in range(n_slots):
        scan = kernel(
            cand,
            strategic_bids,
            weights,
            background_weight,
            demand,
            beta=beta,
            pi_bar=pi_bar,
            pi_min=pi_min,
        )
        best = int(np.argmax(scan["objective"]))
        best_price = float(cand[best])
        n_accept = demand * float(scan["fraction"][best])
        prices[t] = best_price
        demand = max(0.0, demand - theta * n_accept + float(arr_seq[t]))
    return prices


def iterate_collective_bidding(
    classes: Sequence[StrategicClass],
    arrivals: ArrivalProcess,
    *,
    beta: float,
    theta: float,
    pi_bar: float,
    pi_min: float,
    n_slots: int = 2000,
    max_rounds: int = 10,
    tolerance: float = 1e-4,
    rng: np.random.Generator,
) -> CollectiveOutcome:
    """Run the best-response loop described in Section 8.

    Returns the per-round bid vectors and price statistics.  Convergence
    means every class's bid moved less than ``tolerance`` between the
    last two rounds.
    """
    validate_price_band(pi_bar, pi_min)
    total_weight = sum(c.weight for c in classes)
    if total_weight > 1.0 + 1e-9:
        raise DistributionError(
            f"strategic class weights sum to {total_weight!r} > 1"
        )
    background = 1.0 - total_weight

    # Round 0: the paper's baseline — nobody strategic yet.
    prices = _simulate_prices(
        [], [], 1.0, arrivals,
        beta=beta, theta=theta, pi_bar=pi_bar, pi_min=pi_min,
        n_slots=n_slots, rng=rng,
    )
    rounds: List[CollectiveRound] = [
        CollectiveRound(bids=(), mean_price=float(prices.mean()),
                        price_std=float(prices.std()))
    ]
    bids = []
    converged = False
    for _round in range(max_rounds):
        # Shared distribution cache: every class in the round (and any
        # repeat of the same trace) reuses one fitted ECDF.
        dist = cached_distribution(prices, upper=pi_bar)
        new_bids = tuple(
            optimal_persistent_bid(dist, c.job).price for c in classes
        )
        prices = _simulate_prices(
            new_bids, [c.weight for c in classes], background, arrivals,
            beta=beta, theta=theta, pi_bar=pi_bar, pi_min=pi_min,
            n_slots=n_slots, rng=rng,
        )
        rounds.append(
            CollectiveRound(
                bids=new_bids,
                mean_price=float(prices.mean()),
                price_std=float(prices.std()),
            )
        )
        if bids and max(
            abs(a - b) for a, b in zip(new_bids, bids)
        ) < tolerance:
            converged = True
            break
        bids = list(new_bids)
    return CollectiveOutcome(rounds=rounds, converged=converged)
