"""Temporal price correlation (Section 8, "Temporal correlations").

The paper assumes i.i.d. spot prices and predicts that positive temporal
correlation "would likely reduce the degree to which the spot price
changes in consecutive time slots.  Thus, the user's job would be
interrupted less often, leading to lower job running times and costs."

This module provides the tooling to test that prediction:

* :func:`autocorrelation` — sample ACF of a price trace.
* :func:`expected_interruptions_markov` — expected interruption count for
  a persistent bid under a two-state Markov availability model with
  slot-to-slot persistence ``rho`` (``rho = 0`` recovers eq. 12).
* :func:`interruption_reduction_factor` — the closed-form ratio of
  correlated to i.i.d. interruption rates, ``1 − rho``.

The ``generate_correlated_history`` / ``generate_renewal_history``
generators in :mod:`repro.traces` produce matching traces; the ablation
benchmark measures interruptions on both and compares against these
predictions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..core import costs
from ..core.distributions import PriceDistribution
from ..core.types import JobSpec
from ..errors import DistributionError
from .kernels import select_ext_kernel

__all__ = [
    "autocorrelation",
    "lag1_price_persistence",
    "lag1_persistence_grid",
    "expected_interruptions_markov",
    "interruption_reduction_factor",
]


def autocorrelation(prices: np.ndarray, max_lag: int = 24) -> np.ndarray:
    """Sample autocorrelation of a price series up to ``max_lag`` slots.

    Returns an array ``acf`` with ``acf[0] == 1``.  A constant series has
    undefined ACF; this returns all ones there (perfectly persistent),
    which is the behaviour the interruption analysis wants.
    """
    arr = np.asarray(prices, dtype=float)
    if arr.ndim != 1 or arr.size < 2:
        raise DistributionError("need a 1-D series with at least two prices")
    if max_lag < 1 or max_lag >= arr.size:
        raise DistributionError(
            f"max_lag must be in [1, {arr.size - 1}], got {max_lag!r}"
        )
    centered = arr - arr.mean()
    denom = float(np.dot(centered, centered))
    acf = np.empty(max_lag + 1)
    acf[0] = 1.0
    if denom == 0.0:
        acf[1:] = 1.0
        return acf
    for lag in range(1, max_lag + 1):
        acf[lag] = float(np.dot(centered[:-lag], centered[lag:])) / denom
    return acf


def lag1_price_persistence(prices: np.ndarray, bid: float) -> float:
    """Empirical P(accepted at t+1 | accepted at t) for a bid level.

    This is the availability-process persistence the Markov interruption
    model consumes — measured on the *indicator* of acceptance rather
    than the price itself, which is what interruptions actually depend
    on.
    """
    arr = np.asarray(prices, dtype=float)
    if arr.ndim != 1 or arr.size < 2:
        raise DistributionError("need a 1-D series with at least two prices")
    accepted = arr <= bid
    prior = accepted[:-1]
    if not prior.any():
        return 0.0
    return float(np.mean(accepted[1:][prior]))


def lag1_persistence_grid(
    traces: Union[np.ndarray, Sequence[np.ndarray]],
    bids: Sequence[float],
    *,
    n_valid: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """:func:`lag1_price_persistence` batched over a trace × bid grid.

    ``traces`` is either a sequence of 1-D price arrays (stacked into an
    ``inf``-padded matrix, so ragged lengths are fine — padding is never
    accepted by any bid) or an already-padded 2-D matrix with per-row
    valid counts in ``n_valid``.  Returns the ``(n_traces, n_bids)``
    persistence matrix the Markov interruption model consumes, evaluated
    through the ``persistence_grid`` kernel (vectorized by default,
    scalar oracle under ``REPRO_SWEEP_KERNEL=reference``).
    """
    if isinstance(traces, np.ndarray) and traces.ndim == 2:
        matrix = np.asarray(traces, dtype=float)
        counts = None if n_valid is None else np.asarray(n_valid, dtype=np.int64)
    else:
        rows = [np.asarray(t, dtype=float) for t in traces]
        if not rows:
            raise DistributionError("need at least one trace")
        for row in rows:
            if row.ndim != 1 or row.size < 2:
                raise DistributionError(
                    "need a 1-D series with at least two prices"
                )
        width = max(row.size for row in rows)
        matrix = np.full((len(rows), width), np.inf)
        counts = np.empty(len(rows), dtype=np.int64)
        for i, row in enumerate(rows):
            matrix[i, : row.size] = row
            counts[i] = row.size
    kernel = select_ext_kernel("persistence_grid")
    return kernel(matrix, np.asarray(bids, dtype=float), counts)["rho"]


def expected_interruptions_markov(
    dist: PriceDistribution,
    price: float,
    job: JobSpec,
    completion_time: float,
    *,
    rho: float = 0.0,
) -> float:
    """Expected interruptions under Markov-correlated availability.

    The acceptance indicator follows a two-state Markov chain with
    stationary probability ``F(p)`` and persistence parameter ``rho``
    (the lag-1 autocorrelation of the indicator): the run→idle transition
    probability becomes ``(1 − rho)·(1 − F(p))`` instead of the i.i.d.
    ``1 − F(p)``, so over ``T/t_k`` slots

        E[interruptions] = (T/t_k)·F(p)·(1 − F(p))·(1 − rho).

    ``rho = 0`` reduces exactly to eq. 12.
    """
    if not 0.0 <= rho < 1.0:
        raise DistributionError(f"rho must be in [0, 1), got {rho!r}")
    base = costs.expected_interruptions(dist, price, completion_time, job.slot_length)
    return base * (1.0 - rho)


def interruption_reduction_factor(rho: float) -> float:
    """The paper's Section 8 prediction, made quantitative: correlation
    ``rho`` cuts the interruption rate to ``(1 − rho)×`` the i.i.d. rate."""
    if not 0.0 <= rho < 1.0:
        raise DistributionError(f"rho must be in [0, 1), got {rho!r}")
    return 1.0 - rho
