"""Dependent-task bidding (Section 8, "Task dependence").

Some tasks in a job cannot start until others finish.  The paper's
prescription: "bid on these tasks only after the tasks that they depend
on have been completed.  Thus, we will not bid on idle tasks that are
waiting for other tasks to finish."  This module implements exactly that
staged protocol over a task DAG:

* :func:`plan_dag` — per-task optimal persistent bids plus a critical-
  path prediction of the job's expected completion time and cost.
* :func:`run_dag_on_trace` — execute the staged protocol on the market
  simulator: each task's spot request is submitted the moment its last
  dependency completes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from ..core import costs
from ..core.persistent import (
    _feasible_lower_bound,
    candidate_prices,
    optimal_persistent_bid,
)
from ..core.types import BidDecision, BidKind, JobSpec, Strategy
from ..core.distributions import PriceDistribution
from ..errors import InfeasibleBidError, PlanError
from ..market.price_sources import TracePriceSource
from ..market.requests import RequestState
from ..market.simulator import SpotMarket
from ..traces.history import SpotPriceHistory
from .kernels import select_ext_kernel

__all__ = [
    "TaskGraph",
    "DagPlan",
    "DagRunResult",
    "DagSweepReport",
    "plan_dag",
    "sweep_dag_plan",
    "run_dag_on_trace",
]


@dataclass(frozen=True)
class TaskGraph:
    """A DAG of named tasks with per-task job specs.

    ``edges`` are (upstream, downstream) pairs: the downstream task may
    only be bid on after the upstream task completes.
    """

    tasks: Mapping[str, JobSpec]
    edges: Sequence[Tuple[str, str]]

    def graph(self) -> "nx.DiGraph":
        g = nx.DiGraph()
        g.add_nodes_from(self.tasks)
        for u, v in self.edges:
            if u not in self.tasks or v not in self.tasks:
                raise PlanError(f"edge ({u!r}, {v!r}) references unknown task")
            g.add_edge(u, v)
        if not nx.is_directed_acyclic_graph(g):
            raise PlanError("task dependencies contain a cycle")
        return g


@dataclass(frozen=True)
class DagPlan:
    """Per-task bids plus model predictions for the whole DAG."""

    bids: Dict[str, BidDecision]
    #: Expected finish time of each task (critical-path accumulation).
    expected_finish: Dict[str, float]
    #: Expected total completion time (the latest expected finish).
    expected_completion_time: float
    #: Sum of per-task expected costs.
    expected_cost: float


def _decision_at_price(
    dist: PriceDistribution, spec: JobSpec, price: float
) -> BidDecision:
    """Assemble the :class:`BidDecision` ``optimal_persistent_bid``
    would return for an already-selected price — identical field math,
    including the unbounded-cost guard."""
    expected_cost = costs.persistent_cost(dist, price, spec)
    if math.isinf(expected_cost):
        raise InfeasibleBidError(
            f"persistent bid at {price:.6g} has unbounded expected cost "
            "(interruptibility condition eq. 14 violated)"
        )
    completion = costs.persistent_completion_time(dist, price, spec)
    running = costs.persistent_running_time(dist, price, spec)
    interruptions = (
        costs.expected_interruptions(dist, price, completion, spec.slot_length)
        if math.isfinite(completion)
        else math.inf
    )
    return BidDecision(
        price=price,
        kind=BidKind.PERSISTENT,
        expected_cost=expected_cost,
        expected_completion_time=completion,
        expected_running_time=running,
        expected_interruptions=interruptions,
        acceptance_probability=dist.cdf(price),
    )


def _batch_persistent_decisions(
    dist: PriceDistribution, specs: Sequence[JobSpec]
) -> Dict[JobSpec, BidDecision]:
    """Per-spec optimal persistent bids via one ``dag_grid`` kernel call.

    Unique scannable specs share a single eq. 15 cost matrix over the
    full candidate grid; per-spec feasibility masks and ``argmin``
    first-occurrence ties reproduce ``optimal_persistent_bid``'s scan
    exactly.  Degenerate specs (zero recovery, infeasible progress,
    empty feasible grid) take the scalar path directly so their error
    messages and special cases are untouched.
    """
    decisions: Dict[JobSpec, BidDecision] = {}
    scan_specs: List[JobSpec] = []
    for spec in specs:
        if spec in decisions or spec in scan_specs:
            continue
        if spec.recovery_time == 0.0 or spec.execution_time <= spec.recovery_time:
            decisions[spec] = optimal_persistent_bid(dist, spec)
        else:
            scan_specs.append(spec)
    if not scan_specs:
        return decisions
    full = candidate_prices(dist, dist.lower)
    cost = select_ext_kernel("dag_grid")(dist, full, scan_specs)["cost"]
    for i, spec in enumerate(scan_specs):
        low = _feasible_lower_bound(dist, spec)
        mask = full >= low - 1e-15
        if not mask.any():
            # candidate_prices would fall back to [upper]; let the
            # scalar optimizer handle that rare shape.
            decisions[spec] = optimal_persistent_bid(dist, spec)
            continue
        row = np.where(mask, cost[i], np.inf)
        if not np.isfinite(row).any():
            raise InfeasibleBidError(
                f"no feasible bid price: recovery time "
                f"t_r={spec.recovery_time:.6g}h violates eq. 14 at every "
                f"price in [{dist.lower:.6g}, {dist.upper:.6g}]"
            )
        price = float(full[int(np.argmin(row))])
        decisions[spec] = _decision_at_price(dist, spec, price)
    return decisions


def plan_dag(dist: PriceDistribution, task_graph: TaskGraph) -> DagPlan:
    """Compute staged bids and a critical-path completion estimate.

    Each task gets the Section 5.2 optimal persistent bid for its own
    spec; its expected finish time is its expected completion time added
    to the latest expected finish among its dependencies (tasks are bid
    only at that point, per Section 8).  All tasks' candidate scans run
    as one batched ``dag_grid`` kernel evaluation.
    """
    g = task_graph.graph()
    decisions = _batch_persistent_decisions(
        dist, [task_graph.tasks[name] for name in task_graph.tasks]
    )
    bids: Dict[str, BidDecision] = {}
    finish: Dict[str, float] = {}
    for name in nx.topological_sort(g):
        spec = task_graph.tasks[name]
        decision = decisions[spec]
        bids[name] = decision
        start = max((finish[dep] for dep in g.predecessors(name)), default=0.0)
        finish[name] = start + decision.expected_completion_time
    if not finish:
        raise PlanError("task graph has no tasks")
    return DagPlan(
        bids=bids,
        expected_finish=finish,
        expected_completion_time=max(finish.values()),
        expected_cost=sum(b.expected_cost for b in bids.values()),
    )


@dataclass(frozen=True)
class DagSweepReport:
    """Per-task sweep reports plus per-trace aggregates for a DAG plan
    evaluated over a stack of future traces."""

    #: Task name → :class:`~repro.sweep.report.SweepReport` of that
    #: task's planned bid swept across the futures.
    task_reports: Dict[str, object]
    #: Per-trace total cost summed over all tasks.
    total_cost: np.ndarray
    #: Per-trace flag: every task completed within its trace window.
    all_completed: np.ndarray


def sweep_dag_plan(
    plan: DagPlan,
    task_graph: TaskGraph,
    futures: object,
    *,
    start_slots: Union[int, Sequence[int]] = 0,
) -> DagSweepReport:
    """Score a DAG plan's bids against future traces on the sweep engine.

    Each task's planned bid is evaluated across the whole trace stack in
    one :func:`repro.sweep.engine.run_sweep` call (vectorized kernels,
    ``REPRO_SWEEP_KERNEL`` dispatch, shared distribution cache) — the
    batched counterpart of looping :func:`run_dag_on_trace` over traces.
    Sweeps treat tasks independently (each from its trace's start), so
    the totals bound the staged protocol's cost from below; use
    :func:`run_dag_on_trace` for the exact staged execution of a single
    trace.
    """
    from ..sweep.engine import run_sweep

    task_reports: Dict[str, object] = {}
    total_cost: Optional[np.ndarray] = None
    all_completed: Optional[np.ndarray] = None
    for name, spec in task_graph.tasks.items():
        report = run_sweep(
            futures,
            [plan.bids[name].price],
            spec,
            strategy=Strategy.PERSISTENT,
            start_slots=start_slots,
        )
        task_reports[name] = report
        cost = report.cost[:, 0]
        completed = report.completed[:, 0]
        total_cost = cost.copy() if total_cost is None else total_cost + cost
        all_completed = (
            completed.copy()
            if all_completed is None
            else all_completed & completed
        )
    if total_cost is None or all_completed is None:
        raise PlanError("task graph has no tasks")
    return DagSweepReport(
        task_reports=task_reports,
        total_cost=total_cost,
        all_completed=all_completed,
    )


@dataclass(frozen=True)
class DagRunResult:
    """Observed outcome of executing a DAG plan on the simulator."""

    completed: bool
    completion_time: float
    total_cost: float
    #: Observed finish time of each completed task.
    task_finish: Dict[str, float]
    interruptions: int


def run_dag_on_trace(
    plan: DagPlan,
    task_graph: TaskGraph,
    future: SpotPriceHistory,
    *,
    start_slot: int = 0,
) -> DagRunResult:
    """Execute the staged bidding protocol against a price trace.

    Tasks are submitted to the market the first slot after their last
    dependency completes — never before, so no money is spent keeping
    idle dependents pending.
    """
    g = task_graph.graph()
    market = SpotMarket(
        TracePriceSource(future, start_slot=start_slot),
        slot_length=future.slot_length,
    )
    pending = set(task_graph.tasks)
    request_ids: Dict[str, int] = {}
    finish: Dict[str, float] = {}

    def ready(name: str) -> bool:
        return all(dep in finish for dep in g.predecessors(name))

    budget = future.n_slots - start_slot
    for _step in range(budget):
        for name in sorted(pending):
            if ready(name):
                spec = task_graph.tasks[name]
                request_ids[name] = market.submit(
                    bid_price=plan.bids[name].price,
                    work=spec.execution_time,
                    kind=BidKind.PERSISTENT,
                    recovery_time=spec.recovery_time,
                    label=name,
                )
        pending -= set(request_ids)
        if not pending and not market.has_active_requests():
            break
        market.step()
        for name, rid in request_ids.items():
            if name not in finish and market.request_state(rid) is RequestState.COMPLETED:
                outcome = market.outcome(rid)
                finish[name] = (
                    outcome.completion_time
                    + outcome.submitted_slot * market.slot_length
                )
        if len(finish) == len(task_graph.tasks):
            break

    completed = len(finish) == len(task_graph.tasks)
    total_cost = sum(market.outcome(rid).cost for rid in request_ids.values())
    interruptions = sum(
        market.outcome(rid).interruptions for rid in request_ids.values()
    )
    return DagRunResult(
        completed=completed,
        completion_time=max(finish.values()) if finish else math.nan,
        total_cost=total_cost,
        task_finish=finish,
        interruptions=interruptions,
    )
