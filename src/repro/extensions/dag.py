"""Dependent-task bidding (Section 8, "Task dependence").

Some tasks in a job cannot start until others finish.  The paper's
prescription: "bid on these tasks only after the tasks that they depend
on have been completed.  Thus, we will not bid on idle tasks that are
waiting for other tasks to finish."  This module implements exactly that
staged protocol over a task DAG:

* :func:`plan_dag` — per-task optimal persistent bids plus a critical-
  path prediction of the job's expected completion time and cost.
* :func:`run_dag_on_trace` — execute the staged protocol on the market
  simulator: each task's spot request is submitted the moment its last
  dependency completes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import networkx as nx

from ..core.persistent import optimal_persistent_bid
from ..core.types import BidDecision, BidKind, JobSpec
from ..core.distributions import PriceDistribution
from ..errors import PlanError
from ..market.price_sources import TracePriceSource
from ..market.requests import RequestState
from ..market.simulator import SpotMarket
from ..traces.history import SpotPriceHistory

__all__ = ["TaskGraph", "DagPlan", "DagRunResult", "plan_dag", "run_dag_on_trace"]


@dataclass(frozen=True)
class TaskGraph:
    """A DAG of named tasks with per-task job specs.

    ``edges`` are (upstream, downstream) pairs: the downstream task may
    only be bid on after the upstream task completes.
    """

    tasks: Mapping[str, JobSpec]
    edges: Sequence[Tuple[str, str]]

    def graph(self) -> "nx.DiGraph":
        g = nx.DiGraph()
        g.add_nodes_from(self.tasks)
        for u, v in self.edges:
            if u not in self.tasks or v not in self.tasks:
                raise PlanError(f"edge ({u!r}, {v!r}) references unknown task")
            g.add_edge(u, v)
        if not nx.is_directed_acyclic_graph(g):
            raise PlanError("task dependencies contain a cycle")
        return g


@dataclass(frozen=True)
class DagPlan:
    """Per-task bids plus model predictions for the whole DAG."""

    bids: Dict[str, BidDecision]
    #: Expected finish time of each task (critical-path accumulation).
    expected_finish: Dict[str, float]
    #: Expected total completion time (the latest expected finish).
    expected_completion_time: float
    #: Sum of per-task expected costs.
    expected_cost: float


def plan_dag(dist: PriceDistribution, task_graph: TaskGraph) -> DagPlan:
    """Compute staged bids and a critical-path completion estimate.

    Each task gets the Section 5.2 optimal persistent bid for its own
    spec; its expected finish time is its expected completion time added
    to the latest expected finish among its dependencies (tasks are bid
    only at that point, per Section 8).
    """
    g = task_graph.graph()
    bids: Dict[str, BidDecision] = {}
    finish: Dict[str, float] = {}
    for name in nx.topological_sort(g):
        spec = task_graph.tasks[name]
        decision = optimal_persistent_bid(dist, spec)
        bids[name] = decision
        start = max((finish[dep] for dep in g.predecessors(name)), default=0.0)
        finish[name] = start + decision.expected_completion_time
    if not finish:
        raise PlanError("task graph has no tasks")
    return DagPlan(
        bids=bids,
        expected_finish=finish,
        expected_completion_time=max(finish.values()),
        expected_cost=sum(b.expected_cost for b in bids.values()),
    )


@dataclass(frozen=True)
class DagRunResult:
    """Observed outcome of executing a DAG plan on the simulator."""

    completed: bool
    completion_time: float
    total_cost: float
    #: Observed finish time of each completed task.
    task_finish: Dict[str, float]
    interruptions: int


def run_dag_on_trace(
    plan: DagPlan,
    task_graph: TaskGraph,
    future: SpotPriceHistory,
    *,
    start_slot: int = 0,
) -> DagRunResult:
    """Execute the staged bidding protocol against a price trace.

    Tasks are submitted to the market the first slot after their last
    dependency completes — never before, so no money is spent keeping
    idle dependents pending.
    """
    g = task_graph.graph()
    market = SpotMarket(
        TracePriceSource(future, start_slot=start_slot),
        slot_length=future.slot_length,
    )
    pending = set(task_graph.tasks)
    request_ids: Dict[str, int] = {}
    finish: Dict[str, float] = {}

    def ready(name: str) -> bool:
        return all(dep in finish for dep in g.predecessors(name))

    budget = future.n_slots - start_slot
    for _step in range(budget):
        for name in sorted(pending):
            if ready(name):
                spec = task_graph.tasks[name]
                request_ids[name] = market.submit(
                    bid_price=plan.bids[name].price,
                    work=spec.execution_time,
                    kind=BidKind.PERSISTENT,
                    recovery_time=spec.recovery_time,
                    label=name,
                )
        pending -= set(request_ids)
        if not pending and not market.has_active_requests():
            break
        market.step()
        for name, rid in request_ids.items():
            if name not in finish and market.request_state(rid) is RequestState.COMPLETED:
                outcome = market.outcome(rid)
                finish[name] = (
                    outcome.completion_time
                    + outcome.submitted_slot * market.slot_length
                )
        if len(finish) == len(task_graph.tasks):
            break

    completed = len(finish) == len(task_graph.tasks)
    total_cost = sum(market.outcome(rid).cost for rid in request_ids.values())
    interruptions = sum(
        market.outcome(rid).interruptions for rid in request_ids.values()
    )
    return DagRunResult(
        completed=completed,
        completion_time=max(finish.values()) if finish else math.nan,
        total_cost=total_cost,
        task_finish=finish,
        interruptions=interruptions,
    )
