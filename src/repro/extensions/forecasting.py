"""Forecast-based bidding (Section 5's alternative, implemented).

The paper notes: "Though time series forecasting may be used instead
[of the stationary distribution], ... users' job runtimes generally
exceed one time slot, requiring predictions far in advance.  Since the
spot prices' autocorrelation drops off rapidly with a longer lag time,
such predictions are likely to be difficult."

This module lets that argument be *tested* rather than assumed:

* :class:`EwmaForecaster` — exponentially weighted recent-window model:
  the predicted per-slot price distribution is the ECDF of a recent
  window, exponentially re-weighted toward the newest observations.
* :class:`Ar1Forecaster` — a fitted AR(1) on prices, unrolled ``h``
  slots ahead; the forecast distribution is the Gaussian predictive
  marginal mixed over the job's horizon, discretized onto the observed
  support.
* :func:`forecast_bid` — run any forecaster and feed its predicted
  distribution to the standard Prop. 4/5 optimizers.

The forecasting ablation (benchmarks) compares these against the
stationary-ECDF bids on both i.i.d. and sticky futures.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.distcache import cached_distribution
from ..core.distributions import EmpiricalPriceDistribution
from ..core.onetime import optimal_onetime_bid
from ..core.persistent import optimal_persistent_bid
from ..core.types import BidDecision, JobSpec, Strategy, normalize_strategy
from ..errors import DistributionError
from ..traces.history import SpotPriceHistory

__all__ = [
    "PriceForecaster",
    "EwmaForecaster",
    "Ar1Forecaster",
    "forecast_bid",
    "forecast_sweep",
]


class PriceForecaster(abc.ABC):
    """Predicts the distribution of prices over a job's horizon."""

    @abc.abstractmethod
    def predict(
        self, history: SpotPriceHistory, horizon_slots: int
    ) -> EmpiricalPriceDistribution:
        """Forecast the per-slot price distribution over the next
        ``horizon_slots`` slots, as a weighted empirical distribution."""


@dataclass(frozen=True)
class EwmaForecaster(PriceForecaster):
    """Exponentially weighted window: recent slots dominate the forecast.

    ``half_life_hours`` controls how quickly old observations fade; the
    forecast resamples the trailing window with exponential weights,
    which keeps the full :class:`EmpiricalPriceDistribution` machinery
    (quantiles, partial expectations) available downstream.
    """

    half_life_hours: float = 24.0
    window_hours: float = 240.0
    #: Number of weighted resamples forming the forecast ECDF.
    resolution: int = 4096

    def __post_init__(self) -> None:
        if self.half_life_hours <= 0 or self.window_hours <= 0:
            raise DistributionError("half_life and window must be positive")

    def predict(
        self, history: SpotPriceHistory, horizon_slots: int
    ) -> EmpiricalPriceDistribution:
        window_slots = min(
            history.n_slots, int(round(self.window_hours / history.slot_length))
        )
        window = history.prices[-window_slots:]
        ages = (window_slots - 1 - np.arange(window_slots)) * history.slot_length
        weights = np.power(0.5, ages / self.half_life_hours)
        weights /= weights.sum()
        # Deterministic weighted "resampling": replicate each observation
        # proportionally to its weight (at least one copy for the newest).
        counts = np.maximum(0, np.round(weights * self.resolution)).astype(int)
        if counts.sum() == 0:
            counts[-1] = 1
        samples = np.repeat(window, counts)
        # Forecasts are deterministic in (history, parameters), so
        # repeated predictions share one fitted ECDF via the cache.
        return cached_distribution(samples)


@dataclass(frozen=True)
class Ar1Forecaster(PriceForecaster):
    """AR(1) price model unrolled over the job horizon.

    Fits ``π(t+1) = μ + ρ(π(t) − μ) + ε`` by least squares, forecasts the
    Gaussian predictive marginal for each slot in the horizon, mixes them
    uniformly, and discretizes onto a clipped support (prices cannot go
    below the observed floor).  With the rapidly decaying autocorrelation
    the paper describes, the long-horizon forecast collapses to the
    stationary distribution — which is exactly the paper's point.
    """

    #: Number of samples drawn from the predictive mixture.
    resolution: int = 4096
    seed: int = 0

    def predict(
        self, history: SpotPriceHistory, horizon_slots: int
    ) -> EmpiricalPriceDistribution:
        if horizon_slots < 1:
            raise DistributionError(
                f"horizon_slots must be >= 1, got {horizon_slots!r}"
            )
        prices = history.prices
        if prices.size < 10:
            raise DistributionError("need at least 10 observations to fit AR(1)")
        x, y = prices[:-1], prices[1:]
        mu = float(prices.mean())
        xc, yc = x - mu, y - mu
        denom = float(np.dot(xc, xc))
        rho = float(np.dot(xc, yc) / denom) if denom > 0 else 0.0
        rho = min(max(rho, -0.999), 0.999)
        resid = yc - rho * xc
        sigma = float(resid.std())
        last = float(prices[-1])

        rng = np.random.default_rng(self.seed)
        per_slot = max(1, self.resolution // horizon_slots)
        samples = []
        mean_h, var_h = last - mu, 0.0
        for _h in range(horizon_slots):
            mean_h *= rho
            var_h = rho * rho * var_h + sigma * sigma
            draw = mu + mean_h + math.sqrt(max(var_h, 0.0)) * rng.standard_normal(
                per_slot
            )
            samples.append(draw)
        mixed = np.concatenate(samples)
        floor = float(prices.min())
        mixed = np.clip(mixed, floor, None)
        # The seeded generator makes the sample path a pure function of
        # (history, resolution, seed) — safe to share via the cache.
        return cached_distribution(mixed)


def forecast_bid(
    forecaster: PriceForecaster,
    history: SpotPriceHistory,
    job: JobSpec,
    *,
    strategy: "Strategy | str" = Strategy.PERSISTENT,
    ondemand_price: Optional[float] = None,
) -> BidDecision:
    """Bid using a forecaster's predicted distribution.

    The horizon is the job's expected slot count (``t_s/t_k``, rounded
    up) — the look-ahead the paper says the user actually needs.
    """
    strategy = normalize_strategy(strategy)
    horizon = max(1, math.ceil(job.execution_time / job.slot_length))
    dist = forecaster.predict(history, horizon)
    if strategy is Strategy.ONE_TIME:
        return optimal_onetime_bid(dist, job, ondemand_price=ondemand_price)
    if strategy is Strategy.PERSISTENT:
        return optimal_persistent_bid(dist, job, ondemand_price=ondemand_price)
    raise ValueError(f"unsupported strategy {strategy!r} for forecast bidding")


def forecast_sweep(
    forecaster: PriceForecaster,
    history: SpotPriceHistory,
    job: JobSpec,
    futures: "object",
    *,
    bids: Optional[Sequence[float]] = None,
    strategy: "Strategy | str" = Strategy.PERSISTENT,
    start_slots: "int | Sequence[int]" = 0,
    ondemand_price: Optional[float] = None,
):
    """Choose a bid from the forecast, then score it on future traces
    through the vectorized sweep engine.

    Returns ``(decision, report)``: the forecast-optimal
    :class:`~repro.core.types.BidDecision` and the
    :class:`~repro.sweep.report.SweepReport` of sweeping ``bids``
    (default: just the chosen price) across the ``futures`` trace stack
    with :func:`repro.sweep.engine.run_sweep` — the same batched kernels
    (and ``REPRO_SWEEP_KERNEL`` dispatch) every other engine uses, so
    the forecasting ablation inherits their bitwise-tested fast path.
    """
    from ..sweep.engine import run_sweep

    strategy = normalize_strategy(strategy)
    decision = forecast_bid(
        forecaster, history, job, strategy=strategy, ondemand_price=ondemand_price
    )
    grid = [decision.price] if bids is None else list(bids)
    report = run_sweep(
        futures, grid, job, strategy=strategy, start_slots=start_slots
    )
    return decision, report
