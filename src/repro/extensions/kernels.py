"""Batched evaluation kernels for the Section 8 extensions.

Every extension module used to evaluate its candidate grid with a scalar
Python loop.  This module batches those loops over bid-grid ×
job/trace stacks, mirroring the ``repro.sweep.kernels`` /
``repro.mapreduce.kernels`` pattern: each kernel has a retained scalar
``*_reference`` oracle that reproduces the original per-candidate
arithmetic operation for operation, and the randomized equivalence suite
(``tests/test_ext_kernels.py``) asserts bitwise equality between the two
on every output array.

Dispatch is shared with the sweep engine: ``REPRO_SWEEP_KERNEL=event``
(the default) selects the vectorized kernels, ``reference`` the scalar
oracles — one knob flips every engine in the repo onto its oracle path.
``compiled`` upgrades the hottest kernels (``persistence_grid``,
``dag_grid``) to numba-JIT scalar loops (bitwise-identical to the
vectorized lane, see :mod:`repro.sweep.compiled`); kernels without a
compiled counterpart keep their vectorized form, and when the compiled
tier is unavailable the mode degrades to ``event`` with a one-time
warning.

The vectorized kernels reach bitwise equality by evaluating the *same*
float64 operations in the *same* order as the scalar code, elementwise:
``cdf_array``/``partial_expectation_array``/``partial_second_moment_array``
are elementwise-identical to their scalar counterparts on the empirical
distribution, numpy's ``sqrt`` and scipy's ``norm.sf`` ufuncs match the
scalar calls, and tie-breaks use ``argmin``/``argmax`` first-occurrence
semantics which coincide with the scalar strict-inequality scans.
``log1p`` is the one exception — numpy's ufunc differs from
``math.log1p`` in the last ulp on some platforms — so the collective
kernel keeps the scalar transcendental in both lanes and vectorizes only
the mixture-fraction accumulation.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from ..constants import SWEEP_KERNEL, EnvVarError
from ..core.distributions import PriceDistribution
from ..core.types import JobSpec
from ..errors import DistributionError, MarketError, PlanError
from ..sweep import compiled as _compiled
from ..sweep.compiled import jit_kernel

__all__ = [
    "risk_scan_kernel",
    "risk_scan_kernel_reference",
    "deadline_scan_kernel",
    "deadline_scan_kernel_reference",
    "checkpoint_grid_kernel",
    "checkpoint_grid_kernel_reference",
    "persistence_grid_kernel",
    "persistence_grid_kernel_compiled",
    "persistence_grid_kernel_reference",
    "block_grid_kernel",
    "block_grid_kernel_reference",
    "collective_slot_kernel",
    "collective_slot_kernel_reference",
    "dag_grid_kernel",
    "dag_grid_kernel_compiled",
    "dag_grid_kernel_reference",
    "portfolio_grid_kernel",
    "portfolio_grid_kernel_reference",
    "extension_kernel_pair",
    "extension_kernel_compiled",
    "select_ext_kernel",
]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def _require_progress(job: JobSpec) -> None:
    """Same guard (and message) as :func:`repro.core.costs.
    persistent_running_time`: the job must outlast one recovery."""
    if job.execution_time <= job.recovery_time:
        raise ValueError(
            f"persistent model needs execution_time > recovery_time, got "
            f"t_s={job.execution_time} <= t_r={job.recovery_time}"
        )


def _accept_values(dist: PriceDistribution, prices: np.ndarray) -> np.ndarray:
    """``F(p)`` per candidate — vectorized when the distribution offers
    ``cdf_array`` (elementwise-identical to ``cdf``), scalar otherwise."""
    fn = getattr(dist, "cdf_array", None)
    if fn is not None:
        return np.asarray(fn(prices), dtype=np.float64)
    return np.array([dist.cdf(float(p)) for p in prices], dtype=np.float64)


def _below_values(dist: PriceDistribution, prices: np.ndarray) -> np.ndarray:
    """``S(p) = E[π·1(π≤p)]`` per candidate."""
    fn = getattr(dist, "partial_expectation_array", None)
    if fn is not None:
        return np.asarray(fn(prices), dtype=np.float64)
    return np.array(
        [dist.partial_expectation(float(p)) for p in prices], dtype=np.float64
    )


def _second_below(dist: PriceDistribution, price: float) -> float:
    """Scalar unconditioned second moment below ``price`` — the same
    computation :func:`repro.extensions.risk.conditional_price_variance`
    performs (numeric integration when the distribution lacks
    ``partial_second_moment``)."""
    fn = getattr(dist, "partial_second_moment", None)
    if fn is not None:
        return fn(price)
    from scipy import integrate

    hi = min(price, dist.upper)
    raw, _err = integrate.quad(
        lambda x: x * x * dist.pdf(x), dist.lower, hi, limit=200
    )
    return raw


def _second_values(dist: PriceDistribution, prices: np.ndarray) -> np.ndarray:
    """``E[π²·1(π≤p)]`` per candidate."""
    fn = getattr(dist, "partial_second_moment_array", None)
    if fn is not None:
        return np.asarray(fn(prices), dtype=np.float64)
    return np.array([_second_below(dist, float(p)) for p in prices], dtype=np.float64)


# ----------------------------------------------------------------------
# Risk: variance-bounded persistent scan (risk.variance_bounded_bid)
# ----------------------------------------------------------------------

def risk_scan_kernel_reference(
    dist: PriceDistribution, candidates: np.ndarray, job: JobSpec
) -> Dict[str, np.ndarray]:
    """Scalar oracle: per-candidate acceptance, eq. 15 cost, and
    conditional price variance, with ``inf`` marking infeasible cells
    (``F(p) = 0`` or eq. 14 violated)."""
    _require_progress(job)
    n = len(candidates)
    accept = np.empty(n)
    cost = np.empty(n)
    variance = np.empty(n)
    r = job.recovery_time / job.slot_length
    for i, p in enumerate(candidates):
        p = float(p)
        a = dist.cdf(p)
        accept[i] = a
        if a <= 0.0:
            cost[i] = math.inf
            variance[i] = math.inf
            continue
        below = dist.partial_expectation(p)
        mean = below / a
        second = _second_below(dist, p) / a
        variance[i] = max(0.0, second - mean * mean)
        denom = 1.0 - r * (1.0 - a)
        if denom <= 0.0:
            cost[i] = math.inf
        else:
            running = (job.execution_time - job.recovery_time) / denom
            cost[i] = running * below / a
    return {"accept": accept, "cost": cost, "variance": variance}


def risk_scan_kernel(
    dist: PriceDistribution, candidates: np.ndarray, job: JobSpec
) -> Dict[str, np.ndarray]:
    """Vectorized risk scan — one pass over the candidate grid."""
    _require_progress(job)
    prices = np.asarray(candidates, dtype=np.float64)
    accept = _accept_values(dist, prices)
    below = _below_values(dist, prices)
    second_raw = _second_values(dist, prices)
    r = job.recovery_time / job.slot_length
    with np.errstate(divide="ignore", invalid="ignore"):
        mean = below / accept
        second = second_raw / accept
        variance = np.maximum(0.0, second - mean * mean)
        denom = 1.0 - r * (1.0 - accept)
        running = (job.execution_time - job.recovery_time) / denom
        cost = running * below / accept
    infeasible = accept <= 0.0
    cost = np.where(infeasible | (denom <= 0.0), np.inf, cost)
    variance = np.where(infeasible, np.inf, variance)
    return {"accept": accept, "cost": cost, "variance": variance}


# ----------------------------------------------------------------------
# Risk: deadline chance constraint (risk.deadline_chance_bid)
# ----------------------------------------------------------------------

def deadline_scan_kernel_reference(
    dist: PriceDistribution,
    candidates: np.ndarray,
    job: JobSpec,
    deadline: float,
) -> Dict[str, np.ndarray]:
    """Scalar oracle: per-candidate miss probability under the normal
    approximation of :func:`repro.extensions.risk.
    deadline_miss_probability`."""
    if deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline!r}")
    _require_progress(job)
    n_cand = len(candidates)
    accept = np.empty(n_cand)
    miss = np.empty(n_cand)
    r = job.recovery_time / job.slot_length
    n = deadline / job.slot_length
    for i, p in enumerate(candidates):
        p = float(p)
        a = dist.cdf(p)
        accept[i] = a
        if a <= 0.0:
            miss[i] = 1.0
            continue
        denom = 1.0 - r * (1.0 - a)
        if denom <= 0.0:
            miss[i] = 1.0
            continue
        needed_running = (job.execution_time - job.recovery_time) / denom
        needed_slots = needed_running / job.slot_length
        mean = n * a
        var = n * a * (1.0 - a)
        if var <= 0.0:
            miss[i] = 0.0 if mean >= needed_slots else 1.0
        else:
            miss[i] = float(stats.norm.sf((mean - needed_slots) / math.sqrt(var)))
    return {"accept": accept, "miss": miss}


def deadline_scan_kernel(
    dist: PriceDistribution,
    candidates: np.ndarray,
    job: JobSpec,
    deadline: float,
) -> Dict[str, np.ndarray]:
    """Vectorized deadline-miss scan: one batched ``norm.sf`` call."""
    if deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline!r}")
    _require_progress(job)
    prices = np.asarray(candidates, dtype=np.float64)
    accept = _accept_values(dist, prices)
    r = job.recovery_time / job.slot_length
    n = deadline / job.slot_length
    denom = 1.0 - r * (1.0 - accept)
    mean = n * accept
    var = n * accept * (1.0 - accept)
    with np.errstate(divide="ignore", invalid="ignore"):
        running = (job.execution_time - job.recovery_time) / denom
        needed_slots = running / job.slot_length
        z = (mean - needed_slots) / np.sqrt(var)
        sf = stats.norm.sf(z)
    degenerate = np.where(mean >= needed_slots, 0.0, 1.0)
    miss = np.where(var <= 0.0, degenerate, sf)
    miss = np.where((accept <= 0.0) | (denom <= 0.0), 1.0, miss)
    return {"accept": accept, "miss": miss}


# ----------------------------------------------------------------------
# Checkpointing: conservative-cost grid (checkpointing.best_capped_bid /
# optimize_checkpoint_interval)
# ----------------------------------------------------------------------

def checkpoint_grid_kernel_reference(
    dist: PriceDistribution,
    candidates: np.ndarray,
    jobs: Sequence[JobSpec],
) -> Dict[str, np.ndarray]:
    """Scalar oracle: the conservative cost (eq. 15 with a
    non-negative recovery count — numerator ``t_s``, see
    :func:`repro.extensions.checkpointing.conservative_cost`) for every
    (effective job, candidate bid) cell."""
    cost = np.empty((len(jobs), len(candidates)))
    for i, job in enumerate(jobs):
        r = job.recovery_time / job.slot_length
        for j, p in enumerate(candidates):
            p = float(p)
            a = dist.cdf(p)
            if a <= 0.0:
                cost[i, j] = math.inf
                continue
            denom = 1.0 - r * (1.0 - a)
            if denom <= 0.0:
                cost[i, j] = math.inf
                continue
            running = job.execution_time / denom
            cost[i, j] = running * dist.partial_expectation(p) / a
    return {"cost": cost}


def checkpoint_grid_kernel(
    dist: PriceDistribution,
    candidates: np.ndarray,
    jobs: Sequence[JobSpec],
) -> Dict[str, np.ndarray]:
    """Vectorized conservative-cost grid: the candidate moments are
    computed once and reused across every checkpoint interval's
    effective job."""
    prices = np.asarray(candidates, dtype=np.float64)
    accept = _accept_values(dist, prices)
    below = _below_values(dist, prices)
    cost = np.empty((len(jobs), prices.size))
    for i, job in enumerate(jobs):
        r = job.recovery_time / job.slot_length
        denom = 1.0 - r * (1.0 - accept)
        with np.errstate(divide="ignore", invalid="ignore"):
            running = job.execution_time / denom
            row = running * below / accept
        cost[i] = np.where((accept <= 0.0) | (denom <= 0.0), np.inf, row)
    return {"cost": cost}


# ----------------------------------------------------------------------
# Correlated prices: lag-1 acceptance persistence over trace stacks
# (correlated.lag1_price_persistence)
# ----------------------------------------------------------------------

def persistence_grid_kernel_reference(
    prices: np.ndarray,
    bids: np.ndarray,
    n_valid: Optional[np.ndarray] = None,
) -> Dict[str, np.ndarray]:
    """Scalar oracle: :func:`repro.extensions.correlated.
    lag1_price_persistence` applied per (trace, bid) on the valid slice
    of each (possibly ragged, ``inf``-padded) trace row."""
    matrix = np.asarray(prices, dtype=np.float64)
    counts = _valid_counts(matrix, n_valid)
    rho = np.empty((matrix.shape[0], len(bids)))
    for t in range(matrix.shape[0]):
        arr = matrix[t, : counts[t]]
        for j, bid in enumerate(bids):
            accepted = arr <= float(bid)
            prior = accepted[:-1]
            if not prior.any():
                rho[t, j] = 0.0
            else:
                rho[t, j] = float(np.mean(accepted[1:][prior]))
    return {"rho": rho}


def persistence_grid_kernel(
    prices: np.ndarray,
    bids: np.ndarray,
    n_valid: Optional[np.ndarray] = None,
) -> Dict[str, np.ndarray]:
    """Vectorized persistence grid: per bid level, one boolean matrix
    pass counts joint and prior acceptances across all traces at once.
    Exact-integer counts divide to the same float64 the per-slice
    ``np.mean`` produces."""
    matrix = np.asarray(prices, dtype=np.float64)
    counts = _valid_counts(matrix, n_valid)
    n_traces, n_slots = matrix.shape
    cols = np.arange(n_slots - 1)
    prior_mask = cols[None, :] < (counts[:, None] - 1)
    rho = np.empty((n_traces, len(bids)))
    for j, bid in enumerate(bids):
        acc = matrix <= float(bid)
        prior = acc[:, :-1] & prior_mask
        joint = (prior & acc[:, 1:]).sum(axis=1)
        prior_count = prior.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = joint / prior_count
        rho[:, j] = np.where(prior_count > 0, ratio, 0.0)
    return {"rho": rho}


def _valid_counts(
    matrix: np.ndarray, n_valid: Optional[np.ndarray]
) -> np.ndarray:
    if matrix.ndim != 2:
        raise DistributionError("need a 2-D (trace, slot) price matrix")
    if n_valid is None:
        counts = np.full(matrix.shape[0], matrix.shape[1], dtype=np.int64)
    else:
        counts = np.asarray(n_valid, dtype=np.int64)
    if counts.shape != (matrix.shape[0],) or (counts > matrix.shape[1]).any():
        raise DistributionError("n_valid must give one count <= n_slots per trace")
    if (counts < 2).any():
        raise DistributionError("need a 1-D series with at least two prices")
    return counts


# ----------------------------------------------------------------------
# Spot blocks: block pricing over a job grid (spot_blocks.block_price /
# compare_purchasing_options)
# ----------------------------------------------------------------------

def _validate_block_inputs(
    ondemand_price: float, durations: Sequence[float]
) -> None:
    if ondemand_price <= 0:
        raise PlanError(f"ondemand_price must be positive, got {ondemand_price!r}")
    if len(durations) == 0:
        raise PlanError("need at least one block duration")
    for d in durations:
        if d <= 0:
            raise PlanError(f"duration must be positive, got {d!r}")


def _block_price_scalar(
    mean_spot: float,
    ondemand_price: float,
    duration: float,
    base_premium: float,
    premium_per_hour: float,
) -> float:
    premium_fraction = min(1.0, base_premium + premium_per_hour * duration)
    return min(
        ondemand_price,
        mean_spot + premium_fraction * (ondemand_price - mean_spot),
    )


def block_grid_kernel_reference(
    mean_spot: float,
    ondemand_price: float,
    durations: Sequence[float],
    execution_times: np.ndarray,
    *,
    base_premium: float = 0.05,
    premium_per_hour: float = 0.02,
) -> Dict[str, np.ndarray]:
    """Scalar oracle: per execution time, the chained spot-block cost and
    effective hourly price — the covering/chaining rule of
    :func:`repro.extensions.spot_blocks.compare_purchasing_options`."""
    _validate_block_inputs(ondemand_price, durations)
    durations = [float(d) for d in durations]
    n = len(execution_times)
    cost = np.empty(n)
    price = np.empty(n)
    for k, t in enumerate(execution_times):
        t = float(t)
        covering = [d for d in durations if d >= t]
        if covering:
            duration = min(covering)
            pr = _block_price_scalar(
                mean_spot, ondemand_price, duration, base_premium, premium_per_hour
            )
            c = pr * t
        else:
            longest = max(durations)
            n_full, remainder = divmod(t, longest)
            c = n_full * longest * _block_price_scalar(
                mean_spot, ondemand_price, longest, base_premium, premium_per_hour
            )
            if remainder > 1e-12:
                covering = [d for d in durations if d >= remainder]
                tail = min(covering) if covering else longest
                c += remainder * _block_price_scalar(
                    mean_spot, ondemand_price, tail, base_premium, premium_per_hour
                )
            pr = c / t
        cost[k] = c
        price[k] = pr
    return {"cost": cost, "price": price}


def block_grid_kernel(
    mean_spot: float,
    ondemand_price: float,
    durations: Sequence[float],
    execution_times: np.ndarray,
    *,
    base_premium: float = 0.05,
    premium_per_hour: float = 0.02,
) -> Dict[str, np.ndarray]:
    """Vectorized block grid: all duration premiums priced in one pass,
    covering durations found by ``searchsorted``.  Only the (rare) rows
    requiring block chaining keep the scalar ``divmod``, whose numpy
    counterpart is not guaranteed bit-identical."""
    _validate_block_inputs(ondemand_price, durations)
    d = np.sort(np.asarray(durations, dtype=np.float64))
    t = np.asarray(execution_times, dtype=np.float64)
    bp = np.minimum(
        ondemand_price,
        mean_spot
        + np.minimum(1.0, base_premium + premium_per_hour * d)
        * (ondemand_price - mean_spot),
    )
    idx = np.searchsorted(d, t, side="left")
    covered = idx < d.size
    cost = np.empty_like(t)
    price = np.empty_like(t)
    safe_idx = np.where(covered, idx, 0)
    covering_price = bp[safe_idx]
    price[covered] = covering_price[covered]
    cost[covered] = (covering_price * t)[covered]
    longest = float(d[-1])
    longest_price = float(bp[-1])
    for k in np.nonzero(~covered)[0]:
        tv = float(t[k])
        n_full, remainder = divmod(tv, longest)
        c = n_full * longest * longest_price
        if remainder > 1e-12:
            j = int(np.searchsorted(d, remainder, side="left"))
            tail_price = float(bp[j]) if j < d.size else longest_price
            c += remainder * tail_price
        cost[k] = c
        price[k] = c / tv
    return {"cost": cost, "price": price}


# ----------------------------------------------------------------------
# Collective bidding: per-slot provider price optimization
# (collective._simulate_prices)
# ----------------------------------------------------------------------

def collective_slot_kernel_reference(
    candidates: np.ndarray,
    strategic_bids: Sequence[float],
    weights: Sequence[float],
    background_weight: float,
    demand: float,
    *,
    beta: float,
    pi_bar: float,
    pi_min: float,
) -> Dict[str, np.ndarray]:
    """Scalar oracle: the provider's per-slot objective and accepted
    fraction at every candidate price, exactly as the original
    ``_accepted_fraction`` inner loop computed them."""
    n = len(candidates)
    objective = np.empty(n)
    fraction = np.empty(n)
    for i, p in enumerate(candidates):
        p = float(p)
        frac = background_weight * min(
            max((pi_bar - p) / (pi_bar - pi_min), 0.0), 1.0
        )
        for bid, w in zip(strategic_bids, weights):
            if bid >= p:
                frac += w
        count = demand * frac
        objective[i] = beta * math.log1p(count) + p * count
        fraction[i] = frac
    return {"objective": objective, "fraction": fraction}


def collective_slot_kernel(
    candidates: np.ndarray,
    strategic_bids: Sequence[float],
    weights: Sequence[float],
    background_weight: float,
    demand: float,
    *,
    beta: float,
    pi_bar: float,
    pi_min: float,
) -> Dict[str, np.ndarray]:
    """Vectorized slot objective: the background clip and each strategic
    atom accumulate elementwise in the same left-to-right order as the
    scalar loop.  ``log1p`` stays scalar in both lanes (numpy's ufunc is
    not bit-identical to ``math.log1p`` everywhere)."""
    cand = np.asarray(candidates, dtype=np.float64)
    frac = background_weight * np.minimum(
        np.maximum((pi_bar - cand) / (pi_bar - pi_min), 0.0), 1.0
    )
    for bid, w in zip(strategic_bids, weights):
        frac = frac + np.where(bid >= cand, w, 0.0)
    count = demand * frac
    log_term = np.array([math.log1p(float(v)) for v in count])
    objective = beta * log_term + cand * count
    return {"objective": objective, "fraction": frac}


# ----------------------------------------------------------------------
# DAG bidding: eq. 15 cost grid over (task spec, candidate) cells
# (dag.plan_dag)
# ----------------------------------------------------------------------

def dag_grid_kernel_reference(
    dist: PriceDistribution,
    candidates: np.ndarray,
    jobs: Sequence[JobSpec],
) -> Dict[str, np.ndarray]:
    """Scalar oracle: :func:`repro.core.costs.persistent_cost` per
    (task spec, candidate bid) cell."""
    cost = np.empty((len(jobs), len(candidates)))
    for i, job in enumerate(jobs):
        _require_progress(job)
        r = job.recovery_time / job.slot_length
        for j, p in enumerate(candidates):
            p = float(p)
            a = dist.cdf(p)
            if a <= 0.0:
                cost[i, j] = math.inf
                continue
            denom = 1.0 - r * (1.0 - a)
            if denom <= 0.0:
                cost[i, j] = math.inf
                continue
            running = (job.execution_time - job.recovery_time) / denom
            cost[i, j] = running * dist.partial_expectation(p) / a
    return {"cost": cost}


def dag_grid_kernel(
    dist: PriceDistribution,
    candidates: np.ndarray,
    jobs: Sequence[JobSpec],
) -> Dict[str, np.ndarray]:
    """Vectorized eq. 15 grid: candidate moments computed once, shared
    by every task's row — the per-task scan of ``plan_dag`` becomes one
    matrix evaluation."""
    prices = np.asarray(candidates, dtype=np.float64)
    accept = _accept_values(dist, prices)
    below = _below_values(dist, prices)
    cost = np.empty((len(jobs), prices.size))
    for i, job in enumerate(jobs):
        _require_progress(job)
        r = job.recovery_time / job.slot_length
        denom = 1.0 - r * (1.0 - accept)
        with np.errstate(divide="ignore", invalid="ignore"):
            running = (job.execution_time - job.recovery_time) / denom
            row = running * below / accept
        cost[i] = np.where((accept <= 0.0) | (denom <= 0.0), np.inf, row)
    return {"cost": cost}


# ----------------------------------------------------------------------
# Portfolio contracts: on-demand + spot mixture grid
# (portfolio.optimal_portfolio_bid)
# ----------------------------------------------------------------------

def portfolio_grid_kernel_reference(
    dist: PriceDistribution,
    candidates: np.ndarray,
    job: JobSpec,
    *,
    ondemand_price: float,
    ondemand_fractions: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Scalar oracle for the portfolio mixture grid.

    Cell ``(w, p)`` runs fraction ``w`` of the execution time on an
    on-demand instance at ``π̄`` and bids ``p`` persistently for the
    rest.  Cost is ``w·t_s·π̄ + Φ_sp(p)`` of the spot leg; the variance
    is the per-paid-hour price variance of the mixture, weighting the
    deterministic on-demand price by its share of expected running
    hours.  Spot legs that cannot outlast one recovery are ``inf``;
    ``w = 1`` (pure on-demand) is always feasible with zero variance.
    """
    if ondemand_price <= 0:
        raise PlanError(f"ondemand_price must be positive, got {ondemand_price!r}")
    n_w = len(ondemand_fractions)
    n_p = len(candidates)
    cost = np.empty((n_w, n_p))
    variance = np.empty((n_w, n_p))
    t_s = job.execution_time
    t_r = job.recovery_time
    r = t_r / job.slot_length
    for wi, w in enumerate(ondemand_fractions):
        w = float(w)
        if w >= 1.0:
            for pj in range(n_p):
                cost[wi, pj] = w * t_s * ondemand_price
                variance[wi, pj] = 0.0
            continue
        spot_work = (1.0 - w) * t_s
        if spot_work <= t_r:
            cost[wi, :] = math.inf
            variance[wi, :] = math.inf
            continue
        for pj, p in enumerate(candidates):
            p = float(p)
            a = dist.cdf(p)
            if a <= 0.0:
                cost[wi, pj] = math.inf
                variance[wi, pj] = math.inf
                continue
            denom = 1.0 - r * (1.0 - a)
            if denom <= 0.0:
                cost[wi, pj] = math.inf
                variance[wi, pj] = math.inf
                continue
            running = (spot_work - t_r) / denom
            below = dist.partial_expectation(p)
            spot_cost = running * below / a
            cost[wi, pj] = w * t_s * ondemand_price + spot_cost
            od_hours = w * t_s
            lam = od_hours / (od_hours + running)
            m1 = below / a
            m2 = _second_below(dist, p) / a
            ex = lam * ondemand_price + (1.0 - lam) * m1
            ex2 = lam * (ondemand_price * ondemand_price) + (1.0 - lam) * m2
            variance[wi, pj] = max(0.0, ex2 - ex * ex)
    return {"cost": cost, "variance": variance}


def portfolio_grid_kernel(
    dist: PriceDistribution,
    candidates: np.ndarray,
    job: JobSpec,
    *,
    ondemand_price: float,
    ondemand_fractions: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Vectorized portfolio grid: candidate moments once, each mixture
    fraction a vector row."""
    if ondemand_price <= 0:
        raise PlanError(f"ondemand_price must be positive, got {ondemand_price!r}")
    prices = np.asarray(candidates, dtype=np.float64)
    accept = _accept_values(dist, prices)
    below = _below_values(dist, prices)
    second_raw = _second_values(dist, prices)
    fractions = np.asarray(ondemand_fractions, dtype=np.float64)
    t_s = job.execution_time
    t_r = job.recovery_time
    r = t_r / job.slot_length
    cost = np.empty((fractions.size, prices.size))
    variance = np.empty((fractions.size, prices.size))
    bad = accept <= 0.0
    denom = 1.0 - r * (1.0 - accept)
    infeasible = bad | (denom <= 0.0)
    for wi, w in enumerate(fractions):
        w = float(w)
        if w >= 1.0:
            cost[wi, :] = w * t_s * ondemand_price
            variance[wi, :] = 0.0
            continue
        spot_work = (1.0 - w) * t_s
        if spot_work <= t_r:
            cost[wi, :] = math.inf
            variance[wi, :] = math.inf
            continue
        with np.errstate(divide="ignore", invalid="ignore"):
            running = (spot_work - t_r) / denom
            spot_cost = running * below / accept
            row_cost = w * t_s * ondemand_price + spot_cost
            od_hours = w * t_s
            lam = od_hours / (od_hours + running)
            m1 = below / accept
            m2 = second_raw / accept
            ex = lam * ondemand_price + (1.0 - lam) * m1
            ex2 = lam * (ondemand_price * ondemand_price) + (1.0 - lam) * m2
            row_var = np.maximum(0.0, ex2 - ex * ex)
        cost[wi] = np.where(infeasible, np.inf, row_cost)
        variance[wi] = np.where(infeasible, np.inf, row_var)
    return {"cost": cost, "variance": variance}


# ----------------------------------------------------------------------
# Compiled tier: numba-JIT loops for the hottest extension kernels
# ----------------------------------------------------------------------

@jit_kernel
def _persistence_core(
    matrix: np.ndarray, counts: np.ndarray, bids: np.ndarray
) -> np.ndarray:
    """Count-based lag-1 persistence per (trace, bid) cell.

    ``joint / prior`` divides two exact int64 counts, producing the same
    float64 the vectorized kernel's ``joint / prior_count`` does.
    """
    n_traces = matrix.shape[0]
    n_bids = bids.shape[0]
    rho = np.empty((n_traces, n_bids))
    for t in range(n_traces):
        n = counts[t]
        for j in range(n_bids):
            bid = bids[j]
            prior = 0
            joint = 0
            for s in range(n - 1):
                if matrix[t, s] <= bid:
                    prior += 1
                    if matrix[t, s + 1] <= bid:
                        joint += 1
            if prior > 0:
                rho[t, j] = joint / prior
            else:
                rho[t, j] = 0.0
    return rho


def persistence_grid_kernel_compiled(
    prices: np.ndarray,
    bids: np.ndarray,
    n_valid: Optional[np.ndarray] = None,
) -> Dict[str, np.ndarray]:
    """Compiled persistence grid: a JIT triple loop over (trace, bid,
    slot) cells, bitwise-identical to :func:`persistence_grid_kernel` —
    exact integer acceptance counts divide to the same float64."""
    matrix = np.asarray(prices, dtype=np.float64)
    counts = _valid_counts(matrix, n_valid)
    candidates = np.asarray(bids, dtype=np.float64)
    return {"rho": _persistence_core(matrix, counts, candidates)}


@jit_kernel
def _dag_core(
    accept: np.ndarray,
    below: np.ndarray,
    r_vals: np.ndarray,
    work_vals: np.ndarray,
) -> np.ndarray:
    """Eq. 15 cost per (task, candidate) cell from precomputed candidate
    moments — the same scalar float chain the vectorized kernel applies
    elementwise."""
    n_jobs = r_vals.shape[0]
    n_cand = accept.shape[0]
    cost = np.empty((n_jobs, n_cand))
    for i in range(n_jobs):
        r = r_vals[i]
        work = work_vals[i]
        for j in range(n_cand):
            a = accept[j]
            if a <= 0.0:
                cost[i, j] = np.inf
                continue
            denom = 1.0 - r * (1.0 - a)
            if denom <= 0.0:
                cost[i, j] = np.inf
                continue
            running = work / denom
            cost[i, j] = running * below[j] / a
    return cost


def dag_grid_kernel_compiled(
    dist: PriceDistribution,
    candidates: np.ndarray,
    jobs: Sequence[JobSpec],
) -> Dict[str, np.ndarray]:
    """Compiled eq. 15 grid: the candidate moments stay on the (non-JIT)
    distribution methods, the per-cell cost chain runs as a JIT loop —
    bitwise-identical to :func:`dag_grid_kernel`."""
    prices = np.asarray(candidates, dtype=np.float64)
    accept = _accept_values(dist, prices)
    below = _below_values(dist, prices)
    r_vals = np.empty(len(jobs))
    work_vals = np.empty(len(jobs))
    for i, job in enumerate(jobs):
        _require_progress(job)
        r_vals[i] = job.recovery_time / job.slot_length
        work_vals[i] = job.execution_time - job.recovery_time
    return {"cost": _dag_core(accept, below, r_vals, work_vals)}


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

#: Kernel dispatch table: key → (vectorized kernel, scalar oracle).
#: Parsed statically by the RB201 kernel-parity rule — every entry must
#: keep its ``*_reference`` oracle, a randomized equivalence test, and
#: bench coverage.
_EXT_KERNELS: Dict[str, Tuple[Callable[..., dict], Callable[..., dict]]] = {
    "risk_scan": (risk_scan_kernel, risk_scan_kernel_reference),
    "deadline_scan": (deadline_scan_kernel, deadline_scan_kernel_reference),
    "checkpoint_grid": (checkpoint_grid_kernel, checkpoint_grid_kernel_reference),
    "persistence_grid": (persistence_grid_kernel, persistence_grid_kernel_reference),
    "block_grid": (block_grid_kernel, block_grid_kernel_reference),
    "collective_slot": (collective_slot_kernel, collective_slot_kernel_reference),
    "dag_grid": (dag_grid_kernel, dag_grid_kernel_reference),
    "portfolio_grid": (portfolio_grid_kernel, portfolio_grid_kernel_reference),
}


#: Compiled counterparts for the hottest dispatch keys: key →
#: ``{event_kernel}_compiled``.  Parsed statically by the RB201
#: kernel-parity rule — every entry must name an ``_EXT_KERNELS`` key,
#: keep a randomized equivalence test against the vectorized kernel,
#: and carry compiled bench coverage.
_EXT_KERNELS_COMPILED: Dict[str, Callable[..., dict]] = {
    "persistence_grid": persistence_grid_kernel_compiled,
    "dag_grid": dag_grid_kernel_compiled,
}


def extension_kernel_pair(
    name: str,
) -> Tuple[Callable[..., dict], Callable[..., dict]]:
    """The (vectorized, oracle) pair for a dispatch key — used by the
    bench runner to time both lanes on identical inputs."""
    return _EXT_KERNELS[name]


def extension_kernel_compiled(name: str) -> Callable[..., dict]:
    """The compiled counterpart for a dispatch key — ``KeyError`` when
    the kernel has no compiled tier.  Used by the bench runner to pit
    the compiled lane against the vectorized kernel."""
    return _EXT_KERNELS_COMPILED[name]


def select_ext_kernel(name: str) -> Callable[..., dict]:
    """The kernel the ``REPRO_SWEEP_KERNEL`` knob selects for ``name``:
    the vectorized kernel under ``event`` (default), the scalar oracle
    under ``reference``, the numba tier under ``compiled`` — the same
    switch the sweep and MapReduce engines honor, so one env var flips
    the whole repo.  Under ``compiled``, kernels without a compiled
    counterpart keep their vectorized form, and an unavailable compiled
    tier degrades to the vectorized kernel with a one-time warning."""
    try:
        mode = SWEEP_KERNEL.get()
    except EnvVarError as exc:
        raise MarketError(str(exc)) from None
    fast, reference = _EXT_KERNELS[name]
    if mode == "reference":
        return reference
    if mode == "compiled":
        compiled = _EXT_KERNELS_COMPILED.get(name)
        if compiled is not None:
            if _compiled.COMPILED_AVAILABLE:
                return compiled
            _compiled.warn_compiled_fallback()
    return fast
