"""Portfolio and risk-averse bid selection on the batched kernels.

Two first-class workloads the paper's cost model supports but never
spells out:

* :func:`optimal_portfolio_bid` — split one job between on-demand and
  persistent spot capacity.  A fraction ``w`` of the execution time is
  bought at the on-demand price (interruption-free, zero price
  variance); the rest runs under the Prop. 5 persistent model at a bid
  chosen jointly with ``w``.  The optimizer scans the full
  (fraction × bid) grid in one ``portfolio_grid`` kernel call and
  minimizes expected cost subject to an optional cap on the variance of
  the blended payment stream — the classic mean–variance trade-off, with
  on-demand playing the risk-free asset.
* :func:`cvar_bid` — risk-averse bid selection over *realized* sweep
  outcomes: each candidate bid is scored on rolling windows of the
  observed history through :func:`repro.sweep.engine.run_sweep`, and the
  bid minimizing the conditional value-at-risk (the mean of the worst
  ``1 − alpha`` tail of window costs) wins.  Unlike the expectation
  optimizers this is robust to the heavy upper tail of spot prices the
  paper documents in Section 4.

Both are reachable end to end: ``Strategy.PORTFOLIO`` / ``Strategy.CVAR``
in a :class:`~repro.core.types.DecisionRequest` route here from
:meth:`~repro.core.client.BiddingClient.respond`, the ``repro.serve``
daemon, and ``repro-bid sweep``.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, Optional, Sequence

import numpy as np

from ..constants import CVAR_WINDOWS, PORTFOLIO_GRID
from ..core import costs
from ..core.distcache import cached_distribution
from ..core.distributions import PriceDistribution
from ..core.persistent import candidate_prices
from ..core.types import (
    BidKind,
    CvarDecision,
    JobSpec,
    PortfolioDecision,
    Strategy,
)
from ..errors import InfeasibleBidError, PlanError
from ..traces.history import SpotPriceHistory
from .kernels import select_ext_kernel

__all__ = [
    "portfolio_frontier",
    "optimal_portfolio_bid",
    "cvar_from_costs",
    "cvar_bid",
]


def portfolio_frontier(
    dist: PriceDistribution,
    job: JobSpec,
    *,
    ondemand_price: float,
    ondemand_fractions: Optional[Sequence[float]] = None,
    candidates: Optional[Sequence[float]] = None,
) -> Dict[str, np.ndarray]:
    """The full mean–variance surface of on-demand/spot splits.

    Returns ``{"fractions", "candidates", "cost", "variance"}`` with
    ``cost`` and ``variance`` shaped ``(n_fractions, n_candidates)``,
    evaluated through the ``portfolio_grid`` kernel (vectorized by
    default, scalar oracle under ``REPRO_SWEEP_KERNEL=reference``).
    Infeasible cells (spot work not exceeding the recovery time, or a
    bid violating eq. 14) hold ``inf``.
    """
    if ondemand_fractions is None:
        fractions = np.linspace(0.0, 1.0, PORTFOLIO_GRID.get())
    else:
        fractions = np.asarray(ondemand_fractions, dtype=float)
        if fractions.ndim != 1 or fractions.size == 0:
            raise PlanError("ondemand_fractions must be a non-empty 1-D grid")
        if float(fractions.min()) < 0.0 or float(fractions.max()) > 1.0:
            raise PlanError("ondemand_fractions must lie within [0, 1]")
    cand = (
        candidate_prices(dist, dist.lower)
        if candidates is None
        else np.asarray(candidates, dtype=float)
    )
    grid = select_ext_kernel("portfolio_grid")(
        dist,
        cand,
        job,
        ondemand_price=ondemand_price,
        ondemand_fractions=fractions,
    )
    return {
        "fractions": fractions,
        "candidates": cand,
        "cost": grid["cost"],
        "variance": grid["variance"],
    }


def optimal_portfolio_bid(
    dist: PriceDistribution,
    job: JobSpec,
    *,
    ondemand_price: float,
    max_variance: Optional[float] = None,
    ondemand_fractions: Optional[Sequence[float]] = None,
) -> PortfolioDecision:
    """Jointly choose the on-demand fraction and the spot bid.

    Minimizes the blended expected cost over the (fraction × bid) grid,
    keeping only cells whose conditional price variance respects
    ``max_variance`` (``None`` disables the cap).  Ties prefer the
    smallest on-demand fraction, then the lowest bid.  The all-on-demand
    column is always feasible, so a cap of ``0`` degenerates to pure
    on-demand rather than raising.
    """
    if max_variance is not None and not (
        max_variance >= 0.0 and math.isfinite(max_variance)
    ):
        raise PlanError(
            f"max_variance must be non-negative and finite, got {max_variance!r}"
        )
    frontier = portfolio_frontier(
        dist,
        job,
        ondemand_price=ondemand_price,
        ondemand_fractions=ondemand_fractions,
    )
    fractions = frontier["fractions"]
    cand = frontier["candidates"]
    cost = frontier["cost"]
    variance = frontier["variance"]
    eligible = np.isfinite(cost)
    if max_variance is not None:
        eligible &= variance <= max_variance
    masked = np.where(eligible, cost, np.inf)
    flat = int(np.argmin(masked))
    i, j = divmod(flat, masked.shape[1])
    best_cost = float(masked[i, j])
    if math.isinf(best_cost):
        raise InfeasibleBidError(
            f"no on-demand/spot split satisfies "
            f"Var(paid price) <= {max_variance!r} with finite expected cost"
        )
    w = float(fractions[i])
    if w >= 1.0:
        return PortfolioDecision(
            price=float(ondemand_price),
            kind=BidKind.PERSISTENT,
            expected_cost=best_cost,
            expected_completion_time=job.execution_time,
            expected_running_time=job.execution_time,
            expected_interruptions=0.0,
            acceptance_probability=1.0,
            spot_fraction=0.0,
            price_variance=0.0,
        )
    price = float(cand[j])
    spot_job = replace(job, execution_time=(1.0 - w) * job.execution_time)
    od_hours = w * job.execution_time
    spot_completion = costs.persistent_completion_time(dist, price, spot_job)
    spot_running = costs.persistent_running_time(dist, price, spot_job)
    interruptions = (
        costs.expected_interruptions(
            dist, price, spot_completion, job.slot_length
        )
        if math.isfinite(spot_completion)
        else math.inf
    )
    # The legs run sequentially (one logical job), so expected times add.
    return PortfolioDecision(
        price=price,
        kind=BidKind.PERSISTENT,
        expected_cost=best_cost,
        expected_completion_time=od_hours + spot_completion,
        expected_running_time=od_hours + spot_running,
        expected_interruptions=interruptions,
        acceptance_probability=dist.cdf(price),
        spot_fraction=1.0 - w,
        price_variance=float(variance[i, j]),
    )


def cvar_from_costs(values: Sequence[float], alpha: float) -> float:
    """CVaR_alpha of a cost sample: the mean of the worst ``1 − alpha``
    fraction (at least one observation, so ``alpha → 1`` gives the max)."""
    if not 0.0 < alpha < 1.0:
        raise PlanError(f"alpha must be within (0, 1), got {alpha!r}")
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise PlanError("need a non-empty 1-D cost sample")
    k = max(1, int(math.ceil((1.0 - alpha) * arr.size)))
    tail = np.sort(arr)[-k:]
    return float(tail.mean())


def cvar_bid(
    history: SpotPriceHistory,
    job: JobSpec,
    *,
    alpha: float = 0.95,
    bids: Optional[Sequence[float]] = None,
    n_windows: Optional[int] = None,
    ondemand_price: Optional[float] = None,
) -> CvarDecision:
    """Pick the bid minimizing the CVaR of realized window costs.

    Each candidate bid is swept as a persistent request across
    ``n_windows`` rolling windows of the observed history (windows start
    at evenly spaced offsets over the first half of the trace, so every
    window keeps at least half the data ahead of it) in a single
    :func:`repro.sweep.engine.run_sweep` call.  A window the job does
    not finish is penalized with an on-demand rerun
    (``ondemand_price · t_s``) when ``ondemand_price`` is given, or an
    infinite cost otherwise — bids that strand any window are then
    ineligible.  Ties prefer the lowest bid.
    """
    from ..sweep.engine import run_sweep

    if not 0.0 < alpha < 1.0:
        raise PlanError(f"alpha must be within (0, 1), got {alpha!r}")
    windows = CVAR_WINDOWS.get() if n_windows is None else int(n_windows)
    if windows < 1:
        raise PlanError(f"n_windows must be >= 1, got {n_windows!r}")
    dist = cached_distribution(history)
    if bids is None:
        # A ~64-level quantile ladder of the observed prices: dense where
        # the mass is, sparse in the tail, always including the support top.
        levels = [dist.ppf(float(q)) for q in np.linspace(1.0 / 64.0, 1.0, 64)]
        bid_grid = np.unique(np.asarray(levels, dtype=float))
    else:
        bid_grid = np.unique(np.asarray(bids, dtype=float))
        if bid_grid.ndim != 1 or bid_grid.size == 0:
            raise PlanError("bids must be a non-empty 1-D grid")
    starts = [(j * (history.n_slots // 2)) // windows for j in range(windows)]
    report = run_sweep(
        [history] * windows,
        bid_grid,
        job,
        strategy=Strategy.PERSISTENT,
        start_slots=starts,
    )
    penalty = (
        math.inf if ondemand_price is None
        else float(ondemand_price) * job.execution_time
    )
    realized = np.where(report.completed, report.cost, report.cost + penalty)
    cvar = np.array(
        [cvar_from_costs(realized[:, b], alpha) for b in range(bid_grid.size)]
    )
    best = int(np.argmin(cvar))
    best_cvar = float(cvar[best])
    if math.isinf(best_cvar):
        raise InfeasibleBidError(
            f"every candidate bid leaves incomplete windows in the "
            f"{1.0 - alpha:.3g} tail; pass ondemand_price to price the "
            f"rerun fallback"
        )
    price = float(bid_grid[best])
    done = np.asarray(report.completed[:, best], dtype=bool)
    completion = (
        float(report.completion_time[:, best][done].mean()) if done.any() else None
    )
    return CvarDecision(
        price=price,
        kind=BidKind.PERSISTENT,
        expected_cost=float(realized[:, best].mean()),
        expected_completion_time=completion,
        expected_running_time=float(report.running_time[:, best].mean()),
        expected_interruptions=float(report.interruptions[:, best].mean()),
        acceptance_probability=dist.cdf(price),
        alpha=alpha,
        cvar=best_cvar,
        n_windows=windows,
    )
