"""Risk-averse bidding (Section 8, "Risk-averseness").

The paper's strategies minimize *expected* cost; Section 8 sketches two
risk-aware refinements, both implemented here:

* :func:`variance_bounded_bid` — minimize expected cost subject to an
  upper bound on the per-hour price variance the job is exposed to
  (``Var(π | π <= p)``).  Lower bids condition on a narrower price range
  and hence lower variance, so the constraint effectively caps the bid.
* :func:`deadline_chance_bid` — choose the cheapest bid such that the
  probability of missing a completion deadline is below a threshold,
  using a normal approximation for the number of accepted slots within
  the deadline (a persistent job completes once it accumulates enough
  running slots).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import stats

from ..core import costs
from ..core.distributions import PriceDistribution
from ..core.persistent import candidate_prices, minimize_cost_over_candidates
from ..core.types import BidDecision, BidKind, JobSpec
from ..errors import InfeasibleBidError
from .kernels import select_ext_kernel

__all__ = [
    "conditional_price_variance",
    "variance_bounded_bid",
    "deadline_miss_probability",
    "deadline_chance_bid",
]


def conditional_price_variance(dist: PriceDistribution, price: float) -> float:
    """``Var(π | π <= price)`` — the paid-price variance at a bid.

    Computed from the first two conditional moments; the second moment is
    integrated numerically unless the distribution provides
    ``partial_second_moment`` (the empirical class does, via its sorted
    arrays).
    """
    accept = dist.cdf(price)
    if accept <= 0.0:
        raise InfeasibleBidError(
            f"bid {price!r} is never accepted; conditional variance undefined"
        )
    mean = dist.partial_expectation(price) / accept

    second_moment_fn = getattr(dist, "partial_second_moment", None)
    if second_moment_fn is not None:
        second = second_moment_fn(price) / accept
    else:
        from scipy import integrate

        hi = min(price, dist.upper)
        raw, _err = integrate.quad(
            lambda x: x * x * dist.pdf(x), dist.lower, hi, limit=200
        )
        second = raw / accept
    return max(0.0, second - mean * mean)


def variance_bounded_bid(
    dist: PriceDistribution,
    job: JobSpec,
    *,
    max_variance: float,
    ondemand_price: Optional[float] = None,
) -> BidDecision:
    """Cheapest-expected-cost persistent bid with bounded price variance.

    Scans the candidate bids, keeps those with
    ``Var(π | π <= p) <= max_variance``, and minimizes Φ_sp over the
    survivors.  Raises :class:`InfeasibleBidError` when no bid satisfies
    both the variance bound and eq. 14.

    The scan runs through the batched ``risk_scan`` kernel (vectorized
    by default, scalar oracle under ``REPRO_SWEEP_KERNEL=reference``);
    ``argmin`` first-occurrence ties reproduce the original loop's
    strict-inequality scan exactly.
    """
    if max_variance < 0:
        raise ValueError(f"max_variance must be non-negative, got {max_variance!r}")
    candidates = candidate_prices(dist, dist.lower)
    scan = select_ext_kernel("risk_scan")(dist, candidates, job)
    eligible = (scan["accept"] > 0.0) & (scan["variance"] <= max_variance)
    masked_cost = np.where(eligible, scan["cost"], np.inf)
    best = int(np.argmin(masked_cost))
    best_cost = float(masked_cost[best])
    if math.isinf(best_cost):
        raise InfeasibleBidError(
            f"no bid satisfies Var(π|π<=p) <= {max_variance!r} with finite cost"
        )
    best_price = float(candidates[best])
    if ondemand_price is not None:
        ceiling = costs.ondemand_cost(ondemand_price, job.execution_time)
        if best_cost > ceiling * (1.0 + 1e-12):
            raise InfeasibleBidError(
                f"variance-bounded cost {best_cost:.6g} exceeds on-demand "
                f"cost {ceiling:.6g}"
            )
    completion = costs.persistent_completion_time(dist, best_price, job)
    return BidDecision(
        price=best_price,
        kind=BidKind.PERSISTENT,
        expected_cost=best_cost,
        expected_completion_time=completion,
        expected_running_time=costs.persistent_running_time(dist, best_price, job),
        expected_interruptions=costs.expected_interruptions(
            dist, best_price, completion, job.slot_length
        ),
        acceptance_probability=dist.cdf(best_price),
    )


def deadline_miss_probability(
    dist: PriceDistribution, price: float, job: JobSpec, deadline: float
) -> float:
    """P(completion time > deadline) for a persistent bid, approximately.

    Within ``deadline`` there are ``n = deadline/t_k`` i.i.d. slots, each
    accepted with probability ``F(p)``.  The job finishes if the accepted
    slots cover the execution time plus expected recovery overhead; the
    binomial count is approximated by a normal (fine for n in the
    hundreds, as with 5-minute slots and multi-hour deadlines).
    """
    if deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline!r}")
    accept = dist.cdf(price)
    if accept <= 0.0:
        return 1.0
    n = deadline / job.slot_length
    needed_running = costs.persistent_running_time(dist, price, job)
    if math.isinf(needed_running):
        return 1.0
    needed_slots = needed_running / job.slot_length
    mean = n * accept
    var = n * accept * (1.0 - accept)
    if var <= 0.0:
        return 0.0 if mean >= needed_slots else 1.0
    return float(stats.norm.sf((mean - needed_slots) / math.sqrt(var)))


def deadline_chance_bid(
    dist: PriceDistribution,
    job: JobSpec,
    *,
    deadline: float,
    miss_probability: float = 0.05,
    ondemand_price: Optional[float] = None,
) -> BidDecision:
    """Cheapest persistent bid meeting a completion-deadline chance
    constraint: ``P(T > deadline) <= miss_probability`` (Section 8).

    Since the miss probability decreases with the bid price while the
    expected cost increases (above the unconstrained optimum), the
    solution is the unconstrained optimum if it already meets the
    constraint, else the lowest bid that does.
    """
    if not 0.0 < miss_probability < 1.0:
        raise ValueError(
            f"miss_probability must be in (0, 1), got {miss_probability!r}"
        )
    candidates = candidate_prices(dist, dist.lower)
    scan = select_ext_kernel("deadline_scan")(dist, candidates, job, deadline)
    feasible = scan["miss"] <= miss_probability
    if not feasible.any():
        raise InfeasibleBidError(
            f"no bid meets P(T > {deadline!r}h) <= {miss_probability!r}; "
            "use an on-demand instance for hard deadlines (Section 8)"
        )
    # Candidates ascend, so the first feasible one is the price floor.
    floor_price = float(candidates[int(np.argmax(feasible))])
    unconstrained = minimize_cost_over_candidates(dist, job, costs.persistent_cost)
    price = max(floor_price, unconstrained)
    expected_cost = costs.persistent_cost(dist, price, job)
    if ondemand_price is not None:
        ceiling = costs.ondemand_cost(ondemand_price, job.execution_time)
        if expected_cost > ceiling * (1.0 + 1e-12):
            raise InfeasibleBidError(
                f"deadline-feasible cost {expected_cost:.6g} exceeds on-demand "
                f"cost {ceiling:.6g}"
            )
    completion = costs.persistent_completion_time(dist, price, job)
    return BidDecision(
        price=price,
        kind=BidKind.PERSISTENT,
        expected_cost=expected_cost,
        expected_completion_time=completion,
        expected_running_time=costs.persistent_running_time(dist, price, job),
        expected_interruptions=costs.expected_interruptions(
            dist, price, completion, job.slot_length
        ),
        acceptance_probability=dist.cdf(price),
    )
