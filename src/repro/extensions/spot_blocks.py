"""Spot Blocks: fixed-duration spot instances (the product Amazon
launched two months after this paper appeared).

A Spot Block runs for a user-chosen duration of 1–6 hours at a price
fixed up front, immune to out-bidding for that window.  Amazon priced
blocks at a premium over the open spot market that grew with the
reserved duration (historically ~30–45% of on-demand for 1–6 h, vs
~10–15% for open spot).

This module adds blocks as a fourth purchasing option next to the
paper's three (on-demand, one-time spot, persistent spot) and provides
the decision rule a cost-minimizing but completion-sensitive user needs:

* :func:`block_price` — a calibrated block price for a duration, as a
  premium over the market's expected spot price that scales with the
  fraction of on-demand being insured against.
* :func:`compare_purchasing_options` — expected cost and completion
  time of all four options for one job, with the non-completion risk of
  the one-time option priced explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import costs
from ..core.distributions import PriceDistribution
from ..core.onetime import optimal_onetime_bid
from ..core.persistent import optimal_persistent_bid
from ..core.types import JobSpec
from ..errors import InfeasibleBidError, PlanError
from .kernels import select_ext_kernel

__all__ = [
    "PurchasingOption",
    "block_price",
    "block_cost_grid",
    "compare_purchasing_options",
]

#: Block durations Amazon offered, hours.
BLOCK_DURATIONS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)


def block_price(
    dist: PriceDistribution,
    ondemand_price: float,
    duration: float,
    *,
    base_premium: float = 0.05,
    premium_per_hour: float = 0.02,
) -> float:
    """A calibrated fixed price for a ``duration``-hour block.

    The provider charges the open market's mean spot price plus an
    insurance premium — a fraction of the gap up to on-demand that grows
    with the guaranteed duration (longer guarantees forgo more upside
    from price spikes).  Defaults land blocks at roughly 25–45% of
    on-demand for the catalog markets, matching the historical product.
    """
    if duration <= 0:
        raise PlanError(f"duration must be positive, got {duration!r}")
    if ondemand_price <= 0:
        raise PlanError(f"ondemand_price must be positive, got {ondemand_price!r}")
    mean_spot = dist.mean()
    premium_fraction = min(1.0, base_premium + premium_per_hour * duration)
    return min(
        ondemand_price,
        mean_spot + premium_fraction * (ondemand_price - mean_spot),
    )


def block_cost_grid(
    dist: PriceDistribution,
    ondemand_price: float,
    execution_times: Sequence[float],
    *,
    block_durations: Optional[Sequence[float]] = None,
    base_premium: float = 0.05,
    premium_per_hour: float = 0.02,
) -> Dict[str, np.ndarray]:
    """Spot-block cost and effective hourly price for a grid of jobs.

    Batches the covering/chaining rule of
    :func:`compare_purchasing_options` over many execution times in one
    ``block_grid`` kernel call (vectorized by default, scalar oracle
    under ``REPRO_SWEEP_KERNEL=reference``).  Returns ``{"cost",
    "price"}`` arrays aligned with ``execution_times``.
    """
    durations = list(block_durations or BLOCK_DURATIONS)
    kernel = select_ext_kernel("block_grid")
    return kernel(
        dist.mean(),
        ondemand_price,
        durations,
        np.asarray(execution_times, dtype=float),
        base_premium=base_premium,
        premium_per_hour=premium_per_hour,
    )


@dataclass(frozen=True)
class PurchasingOption:
    """One row of the four-way comparison."""

    name: str
    expected_cost: float
    expected_completion_time: float
    #: Probability the job finishes without intervention.
    completion_probability: float
    #: Bid or fixed price, $/hour (on-demand price for on-demand).
    price: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name:12s} ${self.expected_cost:.4f}  "
            f"T={self.expected_completion_time:.2f}h  "
            f"P(done)={self.completion_probability:.2f}"
        )


def _onetime_completion_probability(
    dist: PriceDistribution, price: float, job: JobSpec
) -> float:
    """P(no out-bid for the whole execution) under i.i.d. slots."""
    accept = dist.cdf(price)
    slots = max(1, math.ceil(job.execution_time / job.slot_length))
    # Survive the slots after the launch slot.
    return accept ** max(0, slots - 1)


def compare_purchasing_options(
    dist: PriceDistribution,
    job: JobSpec,
    ondemand_price: float,
    *,
    block_durations: Optional[List[float]] = None,
) -> List[PurchasingOption]:
    """Expected cost/time/completion for all four purchasing options.

    Returns options sorted by expected cost.  The block option uses the
    shortest offered duration covering the execution time; jobs longer
    than the longest block fall back to chaining blocks end to end.
    """
    if ondemand_price <= 0:
        raise PlanError(f"ondemand_price must be positive, got {ondemand_price!r}")
    durations = list(block_durations or BLOCK_DURATIONS)
    options: List[PurchasingOption] = [
        PurchasingOption(
            name="on-demand",
            expected_cost=ondemand_price * job.execution_time,
            expected_completion_time=job.execution_time,
            completion_probability=1.0,
            price=ondemand_price,
        )
    ]

    try:
        onetime = optimal_onetime_bid(dist, job, ondemand_price=ondemand_price)
        options.append(
            PurchasingOption(
                name="one-time",
                expected_cost=onetime.expected_cost,
                expected_completion_time=onetime.expected_completion_time,
                completion_probability=_onetime_completion_probability(
                    dist, onetime.price, job
                ),
                price=onetime.price,
            )
        )
    except InfeasibleBidError:
        pass

    try:
        persistent = optimal_persistent_bid(
            dist, job, ondemand_price=ondemand_price
        )
        options.append(
            PurchasingOption(
                name="persistent",
                expected_cost=persistent.expected_cost,
                expected_completion_time=persistent.expected_completion_time,
                completion_probability=1.0,  # always finishes eventually
                price=persistent.price,
            )
        )
    except InfeasibleBidError:
        pass

    # Spot block: shortest single block covering t_s, else chained max
    # blocks (each chain link re-priced; still guaranteed end to end).
    # Priced through the batched block_grid kernel.
    grid = block_cost_grid(
        dist, ondemand_price, [job.execution_time], block_durations=durations
    )
    cost = float(grid["cost"][0])
    price = float(grid["price"][0])
    options.append(
        PurchasingOption(
            name="spot-block",
            expected_cost=cost,
            expected_completion_time=job.execution_time,
            completion_probability=1.0,
            price=price,
        )
    )
    return sorted(options, key=lambda o: o.expected_cost)
