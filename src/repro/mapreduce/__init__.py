"""MapReduce substrate: workloads, master-side scheduling, and the
dual-market runner used by the Section 7.2 experiments."""

from .job import MapReduceWorkload, WordCountWorkload
from .runner import MapReduceRunResult, ondemand_baseline, run_plan_on_traces
from .scheduler import MapReduceScheduler, SubJob
from .tasks import TaskPool, TaskPoolRunResult, run_task_pool_on_trace

__all__ = [
    "MapReduceWorkload",
    "WordCountWorkload",
    "MapReduceRunResult",
    "ondemand_baseline",
    "run_plan_on_traces",
    "MapReduceScheduler",
    "SubJob",
    "TaskPool",
    "TaskPoolRunResult",
    "run_task_pool_on_trace",
]
