"""MapReduce substrate: workloads, master-side scheduling, the
dual-market runner used by the Section 7.2 experiments, and the batched
plan-grid kernels that evaluate whole plan × run grids in one pass."""

from .grid import MapReduceGridResult, run_plan_grid
from .job import MapReduceWorkload, WordCountWorkload
from .kernels import (
    TERMINATION_CODES,
    mapreduce_grid_kernel,
    mapreduce_grid_kernel_event,
)
from .runner import (
    MapReduceRunResult,
    TerminationReason,
    ondemand_baseline,
    run_plan_on_traces,
)
from .scheduler import MapReduceScheduler, SubJob
from .tasks import TaskPool, TaskPoolRunResult, run_task_pool_on_trace

__all__ = [
    "MapReduceWorkload",
    "WordCountWorkload",
    "MapReduceRunResult",
    "TerminationReason",
    "TERMINATION_CODES",
    "MapReduceGridResult",
    "run_plan_grid",
    "mapreduce_grid_kernel",
    "mapreduce_grid_kernel_event",
    "ondemand_baseline",
    "run_plan_on_traces",
    "MapReduceScheduler",
    "SubJob",
    "TaskPool",
    "TaskPoolRunResult",
    "run_task_pool_on_trace",
]
