"""Plan-grid evaluation: batch many MapReduce runs through one kernel.

:func:`run_plan_grid` is the batched counterpart of
:func:`~repro.mapreduce.runner.run_plan_on_traces`: it evaluates a grid
of plans against a set of runs — each run a (master trace, slave trace,
start slot) triple — in one kernel call, returning a
:class:`MapReduceGridResult` whose per-cell fields are bitwise
identical to the scalar runner's.

Kernel selection honours the same ``REPRO_SWEEP_KERNEL`` switch as the
sweep engine: ``event`` (default) runs the event-driven kernel,
``reference`` falls back to the scalar runner lane-by-lane — the oracle
the batched kernels are verified against.  ``kernel=`` overrides the
environment and additionally accepts ``"dense"`` for the dense batched
kernel.

Process fan-out ships the stacked master/slave price matrices zero-copy
through two :class:`~repro.sweep.shm.SharedPriceStack` segments; the
per-chunk payload is just the two descriptors plus the chunk's small
lane arrays.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..constants import SWEEP_KERNEL, EnvVarError
from ..core.types import MapReducePlan
from ..errors import MarketError, PlanError
from ..traces.history import SpotPriceHistory
from ..sweep import compiled as _compiled
from .kernels import (
    TERMINATION_CODES,
    mapreduce_grid_kernel,
    mapreduce_grid_kernel_compiled,
    mapreduce_grid_kernel_event,
)
from .runner import MapReduceRunResult, TerminationReason, run_plan_on_traces

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.execution import SweepJournal
    from ..resilience.faults import WorkerFaults

__all__ = ["MapReduceGridResult", "run_plan_grid"]

_BATCH_KERNELS = {
    "dense": mapreduce_grid_kernel,
    "event": mapreduce_grid_kernel_event,
    "compiled": mapreduce_grid_kernel_compiled,
}

_CODE_OF = {reason: code for code, reason in enumerate(TERMINATION_CODES)}


@dataclass(frozen=True)
class MapReduceGridResult:
    """Batched outcomes for an ``(n_plans, n_runs)`` grid.

    Array fields mirror :class:`~repro.mapreduce.runner.MapReduceRunResult`
    cell-for-cell; ``termination`` holds
    :data:`~repro.mapreduce.kernels.TERMINATION_CODES` indices.
    """

    plans: Tuple[MapReducePlan, ...]
    completed: np.ndarray
    completion_time: np.ndarray
    master_cost: np.ndarray
    slave_cost: np.ndarray
    slave_interruptions: np.ndarray
    master_restarts: np.ndarray
    termination: np.ndarray
    #: Which kernel actually ran: "scalar", "dense", "event" or "compiled".
    kernel: str
    #: Dense lane-slots or executed lane-events, per the kernel family.
    slots_simulated: int

    @property
    def n_plans(self) -> int:
        return self.completed.shape[0]

    @property
    def n_runs(self) -> int:
        return self.completed.shape[1]

    @property
    def total_cost(self) -> np.ndarray:
        return self.master_cost + self.slave_cost

    def termination_reason(self, plan: int, run: int) -> TerminationReason:
        return TERMINATION_CODES[int(self.termination[plan, run])]

    def termination_counts(self, plan: int = 0) -> Dict[str, int]:
        """Per-reason run counts for one plan row (zero entries kept)."""
        codes = self.termination[plan]
        return {
            reason.value: int(np.count_nonzero(codes == code))
            for code, reason in enumerate(TERMINATION_CODES)
        }

    def result(self, plan: int, run: int) -> MapReduceRunResult:
        """The scalar-result view of one grid cell."""
        return MapReduceRunResult(
            completed=bool(self.completed[plan, run]),
            completion_time=float(self.completion_time[plan, run]),
            master_cost=float(self.master_cost[plan, run]),
            slave_cost=float(self.slave_cost[plan, run]),
            slave_interruptions=int(self.slave_interruptions[plan, run]),
            master_restarts=int(self.master_restarts[plan, run]),
            termination_reason=self.termination_reason(plan, run),
        )

    def results(self, plan: int = 0) -> List[MapReduceRunResult]:
        """All runs of one plan row as scalar results, in run order."""
        return [self.result(plan, run) for run in range(self.n_runs)]

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Array fields keyed like the kernel output (for comparisons)."""
        return {
            "completed": self.completed,
            "completion_time": self.completion_time,
            "master_cost": self.master_cost,
            "slave_cost": self.slave_cost,
            "slave_interruptions": self.slave_interruptions,
            "master_restarts": self.master_restarts,
            "termination": self.termination,
        }


def _resolve_kernel(kernel: Optional[str]) -> str:
    """Kernel key from the explicit argument or ``REPRO_SWEEP_KERNEL``.

    An explicit ``kernel="compiled"`` is honored literally (the compiled
    kernel runs interpreted without numba — same bits, no speedup);
    the env-var route degrades to ``event`` with a one-time warning when
    the compiled tier is unavailable, matching the sweep engine.
    """
    if kernel is not None:
        if kernel not in ("scalar", "dense", "event", "compiled"):
            raise MarketError(
                f"unknown MapReduce kernel {kernel!r}; "
                "choose 'scalar', 'dense', 'event' or 'compiled'"
            )
        return kernel
    try:
        mode = SWEEP_KERNEL.get()
    except EnvVarError as exc:
        raise MarketError(str(exc)) from None
    if mode == "reference":
        return "scalar"
    if mode == "compiled":
        if _compiled.COMPILED_AVAILABLE:
            return "compiled"
        _compiled.warn_compiled_fallback()
    return "event"


def _as_sequence(value: Any, n_runs: int, what: str) -> List:
    if isinstance(value, (SpotPriceHistory, int, np.integer)):
        return [value] * n_runs
    seq = list(value)
    if len(seq) == 1:
        return seq * n_runs
    if len(seq) != n_runs:
        raise PlanError(
            f"{what} has {len(seq)} entries but the grid has {n_runs} runs"
        )
    return seq


def _stack_traces(
    traces: Sequence[SpotPriceHistory],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stack unique trace objects into a +inf-padded matrix.

    Runs frequently share trace objects (multi-start evaluation reuses
    one future per start slot), so rows are deduplicated by identity.
    """
    row_of: Dict[int, int] = {}
    unique: List[SpotPriceHistory] = []
    index = np.empty(len(traces), dtype=np.int64)
    for j, trace in enumerate(traces):
        key = id(trace)
        if key not in row_of:
            row_of[key] = len(unique)
            unique.append(trace)
        index[j] = row_of[key]
    width = max(t.n_slots for t in unique)
    matrix = np.full((len(unique), width), np.inf)
    n_valid = np.empty(len(unique), dtype=np.int64)
    for row, trace in enumerate(unique):
        matrix[row, : trace.n_slots] = trace.prices
        n_valid[row] = trace.n_slots
    return matrix, n_valid, index


def _grid_worker(payload: Tuple[Any, ...]) -> Dict[str, Any]:
    """Process-pool entry: attach the shared stacks, run one lane chunk."""
    from ..sweep.shm import open_stack

    m_desc, s_desc, lanes, slot_length, cap, kernel = payload
    m_prices, _ = open_stack(m_desc)
    s_prices, _ = open_stack(s_desc)
    return _BATCH_KERNELS[kernel](
        m_prices,
        s_prices,
        slot_length=slot_length,
        max_master_restarts=cap,
        **lanes,
    )


def _merge_chunks(chunks: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    merged = {
        key: np.concatenate([c[key] for c in chunks])
        for key in chunks[0]
        if key != "slots_simulated"
    }
    merged["slots_simulated"] = sum(int(c["slots_simulated"]) for c in chunks)
    return merged


def run_plan_grid(
    plans: Union[MapReducePlan, Sequence[MapReducePlan]],
    master_traces: Union[SpotPriceHistory, Sequence[SpotPriceHistory]],
    slave_traces: Union[SpotPriceHistory, Sequence[SpotPriceHistory]],
    *,
    start_slots: Union[int, Sequence[int]] = 0,
    max_slots: Optional[int] = None,
    max_master_restarts: int = 50,
    kernel: Optional[str] = None,
    max_workers: Optional[int] = None,
    executor: Optional[str] = None,
    journal: "Union[None, str, os.PathLike, SweepJournal]" = None,
    worker_faults: "Optional[WorkerFaults]" = None,
) -> MapReduceGridResult:
    """Evaluate every (plan, run) pair of a MapReduce grid in one batch.

    ``plans`` (all sharing one slot length) crosses with ``n_runs`` runs
    described by ``master_traces`` / ``slave_traces`` / ``start_slots``
    (scalars broadcast).  Per-cell semantics, budgets and float results
    are exactly those of :func:`~repro.mapreduce.runner.run_plan_on_traces`
    with the same ``max_slots`` / ``max_master_restarts``.

    ``kernel`` picks "scalar" (the oracle), "dense", "event" or "compiled";
    ``None`` follows ``REPRO_SWEEP_KERNEL``.  With ``executor="process"``
    and a batched kernel, lane chunks fan out through the work-stealing
    scheduler (:func:`repro.scheduler.run_shards`) — dynamic dispatch,
    straggler speculation, crash respawn — and the two price stacks
    travel zero-copy via shared memory.  ``journal`` (a path or
    :class:`~repro.resilience.execution.SweepJournal`) makes the fan-out
    crash-consistent: finished chunks are fsync'd to disk and a re-run
    with the same grid resumes, recomputing only unfinished chunks.
    ``worker_faults`` injects seeded process-level chaos into the pool
    (results stay bitwise identical to the fault-free run).
    """
    plan_list: List[MapReducePlan] = (
        [plans] if isinstance(plans, MapReducePlan) else list(plans)
    )
    if not plan_list:
        raise PlanError("need at least one plan to evaluate")
    for plan in plan_list:
        if not isinstance(plan, MapReducePlan):
            raise PlanError(f"expected a MapReducePlan, got {type(plan).__name__}")
    slot_length = plan_list[0].job.slot_length
    if any(p.job.slot_length != slot_length for p in plan_list):
        raise PlanError("all plans in a grid must share one slot length")

    if isinstance(master_traces, SpotPriceHistory):
        n_runs = (
            len(list(slave_traces))
            if not isinstance(slave_traces, SpotPriceHistory)
            else (
                len(list(start_slots))
                if not isinstance(start_slots, (int, np.integer))
                else 1
            )
        )
    else:
        n_runs = len(list(master_traces))
    m_list = _as_sequence(master_traces, n_runs, "master_traces")
    s_list = _as_sequence(slave_traces, n_runs, "slave_traces")
    starts = [int(s) for s in _as_sequence(start_slots, n_runs, "start_slots")]

    budgets = np.empty(n_runs, dtype=np.int64)
    for j, (m_hist, s_hist, start) in enumerate(zip(m_list, s_list, starts)):
        if (
            m_hist.slot_length != slot_length
            or s_hist.slot_length != slot_length
        ):
            raise PlanError(
                "master/slave trace slot lengths must match the job's slot length"
            )
        available = min(m_hist.n_slots - start, s_hist.n_slots - start)
        if available < 1:
            raise PlanError("start_slot leaves no future slots to simulate")
        budgets[j] = available if max_slots is None else min(max_slots, available)

    n_plans = len(plan_list)
    chosen = _resolve_kernel(kernel)

    if chosen == "scalar":
        return _run_scalar(
            plan_list, m_list, s_list, starts, max_slots, max_master_restarts
        )

    m_matrix, m_valid, m_index = _stack_traces(m_list)
    s_matrix, s_valid, s_index = _stack_traces(s_list)
    lanes = {
        "lane_mrow": np.tile(m_index, n_plans),
        "lane_srow": np.tile(s_index, n_plans),
        "lane_start": np.tile(np.asarray(starts, dtype=np.int64), n_plans),
        "lane_budget": np.tile(budgets, n_plans),
        "lane_master_bid": np.repeat(
            [p.master_bid.price for p in plan_list], n_runs
        ),
        "lane_slave_bid": np.repeat(
            [p.slave_bid.price for p in plan_list], n_runs
        ),
        "lane_slaves": np.repeat(
            np.asarray([p.job.num_slaves for p in plan_list], dtype=np.int64),
            n_runs,
        ),
        "lane_work": np.repeat(
            [p.job.slaves_spec.per_instance_work for p in plan_list], n_runs
        ),
        "lane_recovery": np.repeat(
            [p.job.recovery_time for p in plan_list], n_runs
        ),
    }
    n_lanes = n_plans * n_runs

    # Process fan-out is explicit opt-in: the caller asked for it, so
    # honour it even on small grids (tests exercise tiny fan-outs).
    fan_out = executor == "process" and (
        (max_workers is not None and max_workers > 1)
        or worker_faults is not None
        or journal is not None
    )
    if worker_faults is not None and executor != "process":
        raise PlanError("worker_faults requires executor='process'")
    if fan_out:
        raw = _run_fanout(
            m_matrix, m_valid, s_matrix, s_valid, lanes,
            slot_length, max_master_restarts, chosen,
            max_workers if max_workers is not None else 1,
            journal, worker_faults,
        )
    else:
        raw = _BATCH_KERNELS[chosen](
            m_matrix,
            s_matrix,
            slot_length=slot_length,
            max_master_restarts=max_master_restarts,
            **lanes,
        )

    def grid(key: str) -> np.ndarray:
        return raw[key].reshape(n_plans, n_runs)

    return MapReduceGridResult(
        plans=tuple(plan_list),
        completed=grid("completed"),
        completion_time=grid("completion_time"),
        master_cost=grid("master_cost"),
        slave_cost=grid("slave_cost"),
        slave_interruptions=grid("slave_interruptions"),
        master_restarts=grid("master_restarts"),
        termination=grid("termination"),
        kernel=chosen,
        slots_simulated=int(raw["slots_simulated"]),
    )


def _run_scalar(
    plan_list: Sequence[MapReducePlan],
    m_list: Sequence[SpotPriceHistory],
    s_list: Sequence[SpotPriceHistory],
    starts: Sequence[int],
    max_slots: Optional[int],
    max_master_restarts: int,
) -> MapReduceGridResult:
    """The oracle path: the scalar runner, lane by lane."""
    n_plans, n_runs = len(plan_list), len(m_list)
    shape = (n_plans, n_runs)
    completed = np.zeros(shape, dtype=bool)
    completion_time = np.full(shape, np.nan)
    master_cost = np.zeros(shape)
    slave_cost = np.zeros(shape)
    interruptions = np.zeros(shape, dtype=np.int64)
    restarts = np.zeros(shape, dtype=np.int64)
    termination = np.zeros(shape, dtype=np.int8)
    slots = 0
    for i, plan in enumerate(plan_list):
        for j in range(n_runs):
            cell = run_plan_on_traces(
                plan,
                m_list[j],
                s_list[j],
                start_slot=starts[j],
                max_slots=max_slots,
                max_master_restarts=max_master_restarts,
            )
            completed[i, j] = cell.completed
            completion_time[i, j] = cell.completion_time
            master_cost[i, j] = cell.master_cost
            slave_cost[i, j] = cell.slave_cost
            interruptions[i, j] = cell.slave_interruptions
            restarts[i, j] = cell.master_restarts
            termination[i, j] = _CODE_OF[cell.termination_reason]
            avail = min(
                m_list[j].n_slots - starts[j], s_list[j].n_slots - starts[j]
            )
            slots += avail if max_slots is None else min(max_slots, avail)
    return MapReduceGridResult(
        plans=tuple(plan_list),
        completed=completed,
        completion_time=completion_time,
        master_cost=master_cost,
        slave_cost=slave_cost,
        slave_interruptions=interruptions,
        master_restarts=restarts,
        termination=termination,
        kernel="scalar",
        slots_simulated=slots,
    )


def _run_fanout(
    m_matrix: np.ndarray,
    m_valid: np.ndarray,
    s_matrix: np.ndarray,
    s_valid: np.ndarray,
    lanes: Dict[str, np.ndarray],
    slot_length: float,
    max_master_restarts: int,
    kernel: str,
    max_workers: int,
    journal: "Union[None, str, os.PathLike, SweepJournal]" = None,
    worker_faults: "Optional[WorkerFaults]" = None,
) -> Dict[str, Any]:
    """Chunk lanes over the scheduler pool; stacks travel via shm."""
    from ..scheduler import run_shards
    from ..sweep.engine import (
        _deserialize_kernel_result,
        _serialize_kernel_result,
    )
    from ..sweep.shm import SharedPriceStack

    n_lanes = lanes["lane_mrow"].size
    # More chunks than workers gives the work-stealing scheduler slack:
    # a straggling worker holds back one small chunk, not a statically
    # assigned slice; chunks stay big enough to keep the vectorized
    # inner loops wide.
    n_chunks = min(n_lanes, max(2, 4 * max_workers))
    bounds = np.linspace(0, n_lanes, n_chunks + 1).astype(np.int64)
    spans = [
        (int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]
    with SharedPriceStack(m_matrix, m_valid) as m_stack, SharedPriceStack(
        s_matrix, s_valid
    ) as s_stack:
        payloads = [
            (
                m_stack.descriptor,
                s_stack.descriptor,
                {key: arr[lo:hi] for key, arr in lanes.items()},
                slot_length,
                max_master_restarts,
                kernel,
            )
            for lo, hi in spans
        ]
        sched = run_shards(
            _grid_worker,
            payloads,
            max_workers=max_workers,
            keys=[f"lanes:{lo}:{hi}" for lo, hi in spans],
            labels=[f"lanes [{lo}, {hi})" for lo, hi in spans],
            journal=journal,
            signature={
                "kind": "mapreduce.grid",
                "kernel": kernel,
                "n_lanes": int(n_lanes),
                "n_chunks": len(spans),
                "slot_length": slot_length,
                "max_master_restarts": max_master_restarts,
            },
            serialize=_serialize_kernel_result,
            deserialize=_deserialize_kernel_result,
            worker_faults=worker_faults,
        )
    return _merge_chunks(sched.results)
