"""MapReduce workload models (Section 3.1, Section 7.2).

The paper's EMR experiment runs "Common Crawl Word Count" — an
embarrassingly parallel map phase over web-crawl splits plus a small
reduce.  For the simulator all that matters is how much instance time the
job consumes and how it splits across slaves, so a workload reduces to a
:class:`~repro.core.types.MapReduceJobSpec` via :meth:`to_job_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import DEFAULT_SLOT_HOURS
from ..core.types import MapReduceJobSpec
from ..errors import PlanError

__all__ = ["MapReduceWorkload", "WordCountWorkload"]


@dataclass(frozen=True)
class MapReduceWorkload:
    """A generic MapReduce workload measured in instance-hours.

    Parameters
    ----------
    map_hours:
        Total map-phase work on a single reference instance, hours.
    reduce_hours:
        Reduce-phase work (runs after all maps), hours.
    split_overhead:
        ``t_o`` — constant coordination overhead added when the job is
        split across slaves (message passing, shuffle setup), hours.
    recovery_time:
        ``t_r`` — per-interruption recovery, hours.
    """

    map_hours: float
    reduce_hours: float = 0.0
    split_overhead: float = 0.0
    recovery_time: float = 0.0

    def __post_init__(self) -> None:
        if self.map_hours <= 0:
            raise PlanError(f"map_hours must be positive, got {self.map_hours!r}")
        if self.reduce_hours < 0 or self.split_overhead < 0 or self.recovery_time < 0:
            raise PlanError(
                "reduce_hours, split_overhead and recovery_time must be "
                f"non-negative, got {self.reduce_hours!r}, "
                f"{self.split_overhead!r}, {self.recovery_time!r}"
            )

    @property
    def execution_time(self) -> float:
        """``t_s`` — total single-instance execution time, hours."""
        return self.map_hours + self.reduce_hours

    def to_job_spec(
        self, num_slaves: int, *, slot_length: float = DEFAULT_SLOT_HOURS
    ) -> MapReduceJobSpec:
        """Bind the workload to a cluster size ``M``."""
        return MapReduceJobSpec(
            execution_time=self.execution_time,
            num_slaves=num_slaves,
            overhead_time=self.split_overhead,
            recovery_time=self.recovery_time,
            slot_length=slot_length,
        )


@dataclass(frozen=True)
class WordCountWorkload:
    """The Common Crawl word-count workload, parameterized physically.

    ``corpus_gib / throughput_gib_per_hour`` gives the map time; word
    count's reduce is tiny (a merge of term counts), modeled as a fixed
    fraction of the map time.
    """

    corpus_gib: float
    throughput_gib_per_hour: float
    reduce_fraction: float = 0.05
    split_overhead: float = 60.0 / 3600.0
    recovery_time: float = 30.0 / 3600.0

    def __post_init__(self) -> None:
        if self.corpus_gib <= 0 or self.throughput_gib_per_hour <= 0:
            raise PlanError(
                "corpus_gib and throughput_gib_per_hour must be positive, got "
                f"{self.corpus_gib!r}, {self.throughput_gib_per_hour!r}"
            )
        if not 0.0 <= self.reduce_fraction < 1.0:
            raise PlanError(
                f"reduce_fraction must be in [0, 1), got {self.reduce_fraction!r}"
            )

    def to_workload(self) -> MapReduceWorkload:
        """Convert to instance-hour terms."""
        map_hours = self.corpus_gib / self.throughput_gib_per_hour
        return MapReduceWorkload(
            map_hours=map_hours,
            reduce_hours=map_hours * self.reduce_fraction,
            split_overhead=self.split_overhead,
            recovery_time=self.recovery_time,
        )

    def to_job_spec(
        self, num_slaves: int, *, slot_length: float = DEFAULT_SLOT_HOURS
    ) -> MapReduceJobSpec:
        """Bind the workload to a cluster size ``M``."""
        return self.to_workload().to_job_spec(num_slaves, slot_length=slot_length)
