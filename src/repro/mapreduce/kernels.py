"""Batched MapReduce plan-evaluation kernels (Section 6, vectorized).

:func:`~repro.mapreduce.runner.run_plan_on_traces` drives two
``SpotMarket`` objects slot-by-slot in pure Python — the right oracle,
but figure 7, table 4 and the chaos harness evaluate whole *grids* of
(master bid × slave bid × M × start slot) plans against stacks of trace
pairs, so the scalar inner loop dominates their wall time.  The kernels
here evaluate every lane of such a grid at once and are **bitwise
identical** to the scalar runner on every result field.

Two exact observations make the vectorization possible:

1. **Both markets are memoryless given acceptance.**  The master (a
   one-time request with infinite work) is RUNNING after slot ``t`` iff
   slot ``t`` was accepted — restarts resubmit immediately, so a
   rejected slot always means "pending", an accepted one "running".
   Down-edges (previous slot accepted, this one not) are exactly the
   master failures; the ``(K+1)``-th one exhausts the restart budget.
2. **All M slaves are interchangeable.**  The scheduler hands every
   slave the same work share at the same bid, so one persistent-lane
   simulation serves all M; the scalar runner's ``sum()`` over M equal
   costs is replayed as M sequential additions to keep the float fold
   order (and hence the bits) identical.

Float accumulators advance in exactly the scalar engine's per-slot
operation order; the master's per-attempt billing is folded at each
down-edge so ``sum(outcome(attempt).cost)``'s left-fold is reproduced
add-for-add.

Two kernels share one lane layout (see :func:`mapreduce_grid_kernel`
for the argument contract):

- :func:`mapreduce_grid_kernel` — dense: one vectorized pass over
  window slots, all live lanes in lockstep, early exit when every lane
  has terminated.
- :func:`mapreduce_grid_kernel_event` — event-driven: reuses the
  rank/count machinery of :mod:`repro.sweep.events` to walk only
  *accepted* slots per lane (with per-lane slot windows), in four
  stages: find each master's first up-slot, simulate the slave window,
  walk the master's billing/restart/completion events, then re-simulate
  the (rare) slave windows truncated by a master restart cap.

Grid-level orchestration (plan/trace normalization, the
``REPRO_SWEEP_KERNEL`` switch, shared-memory process fan-out) lives in
:mod:`repro.mapreduce.grid`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import MarketError
from ..sweep.compiled import jit_kernel
from .runner import TerminationReason

__all__ = [
    "TERMINATION_CODES",
    "mapreduce_grid_kernel",
    "mapreduce_grid_kernel_compiled",
    "mapreduce_grid_kernel_event",
]

#: ``termination`` array codes, index-aligned with this tuple.
TERMINATION_CODES: Tuple[TerminationReason, ...] = (
    TerminationReason.COMPLETED,
    TerminationReason.RESTARTS_EXHAUSTED,
    TerminationReason.BUDGET_EXHAUSTED,
    TerminationReason.SLAVES_NEVER_SUBMITTED,
)
_COMPLETED, _RESTARTS, _BUDGET, _NEVER = range(4)

_NO_SLOT = np.iinfo(np.int64).max


def _check_lanes(
    master_prices: np.ndarray,
    slave_prices: np.ndarray,
    lanes: Sequence[np.ndarray],
    slot_length: float,
    max_master_restarts: int,
) -> int:
    if master_prices.ndim != 2 or slave_prices.ndim != 2:
        raise MarketError("price stacks must be 2-D (rows, slots)")
    if slot_length <= 0:
        raise MarketError(f"slot_length must be positive, got {slot_length!r}")
    if max_master_restarts < 0:
        raise MarketError(
            f"max_master_restarts must be >= 0, got {max_master_restarts!r}"
        )
    n_lanes = lanes[0].size
    for arr in lanes:
        if arr.shape != (n_lanes,):
            raise MarketError("lane arrays must share one 1-D shape")
    return n_lanes


def _result(n_lanes: int) -> Dict[str, np.ndarray]:
    return {
        "completed": np.zeros(n_lanes, dtype=bool),
        "completion_time": np.full(n_lanes, np.nan),
        "master_cost": np.zeros(n_lanes),
        "slave_cost": np.zeros(n_lanes),
        "slave_interruptions": np.zeros(n_lanes, dtype=np.int64),
        "master_restarts": np.zeros(n_lanes, dtype=np.int64),
        "termination": np.full(n_lanes, _BUDGET, dtype=np.int8),
        "slots_simulated": 0,
    }


def _fold_slaves(
    single_cost: np.ndarray, single_intr: np.ndarray, n_slaves: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Total slave cost/interruptions over ``M`` identical slaves.

    The cost replays the scalar ``sum()``'s left fold — M sequential
    additions of the same float — because ``M * c`` rounds differently.
    """
    total = np.zeros_like(single_cost)
    max_m = int(n_slaves.max()) if n_slaves.size else 0
    for k in range(max_m):
        total = np.where(k < n_slaves, total + single_cost, total)
    return total, n_slaves * single_intr


def mapreduce_grid_kernel(
    master_prices: np.ndarray,
    slave_prices: np.ndarray,
    *,
    lane_mrow: np.ndarray,
    lane_srow: np.ndarray,
    lane_start: np.ndarray,
    lane_budget: np.ndarray,
    lane_master_bid: np.ndarray,
    lane_slave_bid: np.ndarray,
    lane_slaves: np.ndarray,
    lane_work: np.ndarray,
    lane_recovery: np.ndarray,
    slot_length: float,
    max_master_restarts: int = 50,
) -> Dict[str, np.ndarray]:
    """Dense batched evaluation of a MapReduce plan grid.

    One *lane* is one (plan, run) pair: ``lane_mrow``/``lane_srow``
    select the master/slave trace rows, ``lane_start`` the absolute
    start slot, ``lane_budget`` how many slots may be simulated
    (already clipped to trace length and ``max_slots``), and the
    remaining arrays carry the plan parameters (bids, slave count M,
    per-slave work share, slave recovery time).  Returns per-lane
    arrays bitwise identical to the scalar runner's
    ``MapReduceRunResult`` fields plus a ``termination`` code array
    (see :data:`TERMINATION_CODES`).
    """
    lanes = (
        lane_mrow, lane_srow, lane_start, lane_budget, lane_master_bid,
        lane_slave_bid, lane_slaves, lane_work, lane_recovery,
    )
    n_lanes = _check_lanes(
        master_prices, slave_prices, lanes, slot_length, max_master_restarts
    )
    out = _result(n_lanes)
    if n_lanes == 0:
        return out
    from ..sweep.kernels import _EPS

    slot_len = float(slot_length)
    cap_k = int(max_master_restarts)

    terminated = np.zeros(n_lanes, dtype=bool)
    term = out["termination"]
    completed = out["completed"]
    ct_out = out["completion_time"]
    restarts = out["master_restarts"]

    # Master: billing accumulator of the current attempt, folded total of
    # finished attempts, resubmit count, previous-slot running flag.
    m_acc = np.zeros(n_lanes)
    m_tot = np.zeros(n_lanes)
    m_downs = np.zeros(n_lanes, dtype=np.int64)
    m_run_prev = np.zeros(n_lanes, dtype=bool)
    submitted = np.zeros(n_lanes, dtype=bool)
    t_sub = np.full(n_lanes, _NO_SLOT, dtype=np.int64)

    # One representative slave per lane (all M are identical).
    s_run = np.zeros(n_lanes, dtype=bool)
    s_pend = np.zeros(n_lanes)
    s_w = lane_work.astype(float).copy()
    s_cost = np.zeros(n_lanes)
    s_intr = np.zeros(n_lanes, dtype=np.int64)
    s_done = np.zeros(n_lanes, dtype=bool)
    s_ct = np.zeros(n_lanes)

    events = 0
    max_t = int(lane_budget.max())
    for t in range(max_t):
        active = ~terminated & (t < lane_budget)
        n_act = int(np.count_nonzero(active))
        if n_act == 0:
            break
        events += n_act
        safe = np.where(active, lane_start + t, 0)
        mp = master_prices[lane_mrow, safe]
        sp = slave_prices[lane_srow, safe]

        acc_m = active & (mp <= lane_master_bid)
        down = m_run_prev & ~acc_m & active
        cap = down & (m_downs >= cap_k)
        m_acc = np.where(acc_m, m_acc + mp * slot_len, m_acc)
        m_tot = np.where(down, m_tot + m_acc, m_tot)
        m_acc = np.where(down, 0.0, m_acc)

        # Slave step, in the engine's exact operation order: knock-back,
        # recovery, work, per-slot billing, completion stamp.
        adv = active & (t >= t_sub) & ~s_done
        acc_s = adv & (sp <= lane_slave_bid)
        knock = adv & s_run & ~acc_s
        s_intr = s_intr + knock
        s_pend = np.where(knock, lane_recovery, s_pend)
        m1 = acc_s & (s_pend > 0.0)
        step1 = np.where(m1, np.minimum(s_pend, slot_len), 0.0)
        s_pend = s_pend - step1
        budget_h = slot_len - step1
        used = step1
        m2 = acc_s & (budget_h > 0.0) & (s_w > 0.0)
        step2 = np.where(m2, np.minimum(s_w, budget_h), 0.0)
        s_w = s_w - step2
        used = used + step2
        used = np.where(acc_s & (s_w > _EPS), slot_len, used)
        s_cost = np.where(acc_s, s_cost + sp * used, s_cost)
        fin_now = acc_s & (s_w <= _EPS)
        s_ct = np.where(fin_now, t * slot_len + used, s_ct)
        s_done = s_done | fin_now
        s_run = np.where(adv, acc_s, s_run)

        # The (K+1)-th master failure terminates those lanes; earlier
        # ones resubmit (counted) and skip the rest of the slot.
        if cap.any():
            terminated |= cap
            term[cap] = _RESTARTS
            restarts[cap] = m_downs[cap]
        m_downs = m_downs + (down & ~cap)

        # First master-up slot: slaves submitted, considered next slot.
        launch = active & ~submitted & acc_m
        submitted = submitted | launch
        t_sub = np.where(launch, t + 1, t_sub)

        # Completion gate: every slave done *and* the master up, checked
        # only after the submission slot (the scalar loop `continue`s
        # through submission and restart slots — both imply ~acc_m or
        # t < t_sub here, so no extra mask is needed).
        comp = active & (t >= t_sub) & s_done & acc_m
        if comp.any():
            terminated |= comp
            completed[comp] = True
            term[comp] = _COMPLETED
            restarts[comp] = m_downs[comp]
            t_sub_h = t_sub[comp] * slot_len
            ct_out[comp] = t_sub_h + (s_ct[comp] - t_sub_h)
        m_run_prev = acc_m

    # Lanes the loop never terminated ran out of budget — with slaves in
    # flight, or never even submitted when the master never came up.
    rest = ~terminated
    term[rest & ~submitted] = _NEVER
    restarts[rest] = m_downs[rest]
    # Final fold of the still-open master attempt (zero for capped and
    # never-launched lanes, preserving the scalar sum's exact order).
    m_tot = m_tot + m_acc

    out["master_cost"] = m_tot
    slave_total, intr_total = _fold_slaves(s_cost, s_intr, lane_slaves)
    out["slave_cost"] = slave_total
    out["slave_interruptions"] = intr_total
    out["slots_simulated"] = events
    return out


def _lane_accept_counts(
    sorted_prices: np.ndarray, lane_row: np.ndarray, lane_bid: np.ndarray
) -> np.ndarray:
    """Accepted-slot count per lane over its full (padded) trace row.

    ``rank[row, s] < count`` is then an O(1) membership test for slot
    ``s`` — ties at the bid are included, exactly the engine's
    ``bid >= price`` rule.  Rows are few (one per trace pair), so the
    per-row ``searchsorted`` loop is cheap.
    """
    cnt = np.empty(lane_row.size, dtype=np.int64)
    for row in np.unique(lane_row):
        sel = lane_row == row
        cnt[sel] = np.searchsorted(
            sorted_prices[row], lane_bid[sel], side="right"
        )
    return cnt


def _first_events(
    rank: np.ndarray,
    row: np.ndarray,
    cnt: np.ndarray,
    lo_arr: np.ndarray,
    hi_arr: np.ndarray,
    block: int,
) -> Tuple[np.ndarray, int]:
    """First accepted slot per lane within its window (-1 when none)."""
    from ..sweep.events import _block_events

    n = row.size
    first = np.full(n, -1, dtype=np.int64)
    idx = np.arange(n)
    r_row, r_cnt, r_lo, r_hi = row, cnt, lo_arr, hi_arr
    lo = int(lo_arr.min()) if n else 0
    max_hi = int(hi_arr.max()) if n else 0
    events = 0
    while idx.size and lo < max_hi:
        hi = min(lo + block, max_hi)
        slots, counts = _block_events(rank, r_row, r_cnt, lo, hi, r_lo, r_hi)
        hit = counts > 0
        if slots is not None and hit.any():
            events += int(np.count_nonzero(hit))
            first[idx[hit]] = slots[hit, 0]
        done = hit | (hi >= r_hi)
        keep = ~done
        idx, r_row, r_cnt, r_lo, r_hi = (
            idx[keep], r_row[keep], r_cnt[keep], r_lo[keep], r_hi[keep]
        )
        lo = hi
    return first, events


def _slave_walk(
    slave_prices: np.ndarray,
    rank: np.ndarray,
    row: np.ndarray,
    cnt: np.ndarray,
    lo_arr: np.ndarray,
    hi_arr: np.ndarray,
    work: np.ndarray,
    recovery: np.ndarray,
    slot_len: float,
    rel_base: np.ndarray,
    block: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Event-driven persistent-slave simulation over per-lane windows.

    Returns ``(cost, interruptions, done, completed_at_rel, t_c_abs,
    events)`` for one representative slave per lane.  Interruptions are
    inferred from gaps between consecutive accepted events (the engine
    knocks the instance back at the first rejected slot after a run)
    plus a trailing knock when the window continues past the last
    accepted slot.
    """
    from ..sweep.events import _block_events
    from ..sweep.kernels import _EPS

    n = row.size
    o_cost = np.zeros(n)
    o_intr = np.zeros(n, dtype=np.int64)
    o_done = np.zeros(n, dtype=bool)
    o_ct = np.zeros(n)
    o_tc = np.full(n, _NO_SLOT, dtype=np.int64)

    idx = np.arange(n)
    r_row, r_cnt, r_lo, r_hi = row, cnt, lo_arr, hi_arr
    r_base, r_rec = rel_base, recovery
    pend = np.zeros(n)
    w = work.astype(float).copy()
    cost = np.zeros(n)
    intr = np.zeros(n, dtype=np.int64)
    fin = np.zeros(n, dtype=bool)
    ct = np.zeros(n)
    tc = np.full(n, _NO_SLOT, dtype=np.int64)
    prev = np.full(n, -1, dtype=np.int64)

    events = 0
    lo = int(lo_arr.min()) if n else 0
    max_hi = int(hi_arr.max()) if n else 0
    while idx.size and lo < max_hi:
        hi = min(lo + block, max_hi)
        slots, counts = _block_events(rank, r_row, r_cnt, lo, hi, r_lo, r_hi)
        if slots is not None:
            for k in range(slots.shape[1]):
                act = (counts > k) & ~fin
                n_act = int(np.count_nonzero(act))
                if n_act == 0:
                    break
                events += n_act
                slot = slots[:, k]
                price = np.where(act, slave_prices[r_row, slot], 0.0)
                # A gap since the previous accepted event means the
                # instance was knocked back at ``prev + 1`` (full
                # recovery-timer reset) and resumes now.
                resume = act & (prev >= 0) & (slot > prev + 1)
                intr = intr + resume
                pend = np.where(resume, r_rec, pend)
                m1 = act & (pend > 0.0)
                step1 = np.where(m1, np.minimum(pend, slot_len), 0.0)
                pend = pend - step1
                budget_h = slot_len - step1
                used = step1
                m2 = act & (budget_h > 0.0) & (w > 0.0)
                step2 = np.where(m2, np.minimum(w, budget_h), 0.0)
                w = w - step2
                used = used + step2
                used = np.where(act & (w > _EPS), slot_len, used)
                cost = np.where(act, cost + price * used, cost)
                fin_now = act & (w <= _EPS)
                ct = np.where(fin_now, (slot - r_base) * slot_len + used, ct)
                tc = np.where(fin_now, slot, tc)
                fin = fin | fin_now
                prev = np.where(act, slot, prev)
        done = fin | (hi >= r_hi)
        if done.any():
            # Trailing knock: the window continues past the last
            # accepted slot of an unfinished lane.
            trail = done & ~fin & (prev >= 0) & (prev < r_hi - 1)
            intr = intr + trail
            ids = idx[done]
            o_cost[ids] = cost[done]
            o_intr[ids] = intr[done]
            o_done[ids] = fin[done]
            o_ct[ids] = ct[done]
            o_tc[ids] = tc[done]
            keep = ~done
            idx, r_row, r_cnt, r_lo, r_hi = (
                idx[keep], r_row[keep], r_cnt[keep], r_lo[keep], r_hi[keep]
            )
            r_base, r_rec = r_base[keep], r_rec[keep]
            pend, w, cost, intr = pend[keep], w[keep], cost[keep], intr[keep]
            fin, ct, tc, prev = fin[keep], ct[keep], tc[keep], prev[keep]
        lo = hi
    return o_cost, o_intr, o_done, o_ct, o_tc, events


def mapreduce_grid_kernel_event(
    master_prices: np.ndarray,
    slave_prices: np.ndarray,
    *,
    lane_mrow: np.ndarray,
    lane_srow: np.ndarray,
    lane_start: np.ndarray,
    lane_budget: np.ndarray,
    lane_master_bid: np.ndarray,
    lane_slave_bid: np.ndarray,
    lane_slaves: np.ndarray,
    lane_work: np.ndarray,
    lane_recovery: np.ndarray,
    slot_length: float,
    max_master_restarts: int = 50,
) -> Dict[str, np.ndarray]:
    """Event-driven batched evaluation of a MapReduce plan grid.

    Same contract and bitwise-identical outputs as
    :func:`mapreduce_grid_kernel`; ``slots_simulated`` counts executed
    lane-events (accepted slots actually walked) instead of dense
    lane-slots.  Rejected slots are skipped entirely: a pending master
    and an idle or knocked-back slave touch no accumulator, and run
    boundaries (master failures, slave knock-backs) fall out of gaps
    between consecutive accepted events.
    """
    lanes = (
        lane_mrow, lane_srow, lane_start, lane_budget, lane_master_bid,
        lane_slave_bid, lane_slaves, lane_work, lane_recovery,
    )
    n_lanes = _check_lanes(
        master_prices, slave_prices, lanes, slot_length, max_master_restarts
    )
    out = _result(n_lanes)
    if n_lanes == 0:
        return out
    from ..sweep.events import _BLOCK, _block_events, _price_ranks

    slot_len = float(slot_length)
    cap_k = int(max_master_restarts)
    win_lo = lane_start.astype(np.int64)
    win_hi = win_lo + lane_budget.astype(np.int64)

    rank_m = _price_ranks(master_prices)
    cnt_m = _lane_accept_counts(
        np.sort(master_prices, axis=1), lane_mrow, lane_master_bid
    )
    events = 0

    # Stage 1 — first master-up slot: fixes each lane's slave submission
    # slot (t_first + 1); lanes whose master never comes up are done.
    t_first, ev = _first_events(
        rank_m, lane_mrow, cnt_m, win_lo, win_hi, _BLOCK
    )
    events += ev
    never = t_first < 0
    out["termination"][never] = _NEVER

    # Stage 2 — one representative slave per launched lane, optimistic
    # window [t_first + 1, win_hi); master-cap truncation is rare and
    # fixed up in stage 4.
    launched = np.flatnonzero(~never)
    s_cost = np.zeros(n_lanes)
    s_intr = np.zeros(n_lanes, dtype=np.int64)
    s_done = np.zeros(n_lanes, dtype=bool)
    s_ct = np.zeros(n_lanes)
    t_c = np.full(n_lanes, _NO_SLOT, dtype=np.int64)
    t_sub = np.full(n_lanes, _NO_SLOT, dtype=np.int64)
    rank_s = None
    cnt_s = None
    if launched.size:
        rank_s = _price_ranks(slave_prices)
        cnt_s = _lane_accept_counts(
            np.sort(slave_prices, axis=1), lane_srow, lane_slave_bid
        )
        t_sub[launched] = t_first[launched] + 1
        cost, intr, done, ct, tc, ev = _slave_walk(
            slave_prices, rank_s, lane_srow[launched], cnt_s[launched],
            t_sub[launched], win_hi[launched], lane_work[launched],
            lane_recovery[launched], slot_len, win_lo[launched], _BLOCK,
        )
        events += ev
        s_cost[launched] = cost
        s_intr[launched] = intr
        s_done[launched] = done
        s_ct[launched] = ct
        t_c[launched] = tc

    # Stage 3 — master billing / restart / completion walk.  Lanes
    # retire at the restart cap, at completion (first up-slot at or
    # after the slaves' completion slot), or at window end.
    completed = out["completed"]
    term = out["termination"]
    restarts = out["master_restarts"]
    ct_out = out["completion_time"]
    m_tot = np.zeros(n_lanes)
    t_break = np.full(n_lanes, _NO_SLOT, dtype=np.int64)

    if launched.size:
        idx = launched.copy()
        r_row = lane_mrow[idx]
        r_cnt = cnt_m[idx]
        r_lo, r_hi = win_lo[idx], win_hi[idx]
        r_tc = t_c[idx]
        m_acc = np.zeros(idx.size)
        tot = np.zeros(idx.size)
        downs = np.zeros(idx.size, dtype=np.int64)
        prev = np.full(idx.size, -1, dtype=np.int64)
        capped = np.zeros(idx.size, dtype=bool)
        comp = np.zeros(idx.size, dtype=bool)
        brk = np.full(idx.size, _NO_SLOT, dtype=np.int64)

        lo = int(r_lo.min())
        max_hi = int(r_hi.max())
        while idx.size and lo < max_hi:
            hi = min(lo + _BLOCK, max_hi)
            slots, counts = _block_events(
                rank_m, r_row, r_cnt, lo, hi, r_lo, r_hi
            )
            if slots is not None:
                for k in range(slots.shape[1]):
                    act = (counts > k) & ~capped & ~comp
                    n_act = int(np.count_nonzero(act))
                    if n_act == 0:
                        break
                    events += n_act
                    slot = slots[:, k]
                    # A gap means the attempt failed at prev + 1: fold
                    # its bill; the (K+1)-th failure is the cap.
                    gap = act & (prev >= 0) & (slot > prev + 1)
                    tot = np.where(gap, tot + m_acc, tot)
                    m_acc = np.where(gap, 0.0, m_acc)
                    downs = downs + gap
                    cap_now = gap & (downs == cap_k + 1)
                    capped = capped | cap_now
                    brk = np.where(cap_now, prev + 1, brk)
                    live = act & ~cap_now
                    price = np.where(live, master_prices[r_row, slot], 0.0)
                    m_acc = np.where(live, m_acc + price * slot_len, m_acc)
                    comp_now = live & (slot >= r_tc)
                    if comp_now.any():
                        tot = np.where(comp_now, tot + m_acc, tot)
                        comp = comp | comp_now
                    prev = np.where(live, slot, prev)
            done = capped | comp | (hi >= r_hi)
            if done.any():
                # Budget-exhausted lanes: a trailing gap is one more
                # failure — possibly the capping one — and the open
                # attempt's bill folds in either way (zero after a
                # fold at the trailing failure's resubmission).
                ended = done & ~capped & ~comp
                trail = ended & (prev >= 0) & (prev < r_hi - 1)
                tot = np.where(trail, tot + m_acc, tot)
                m_acc = np.where(trail, 0.0, m_acc)
                downs = downs + trail
                late_cap = trail & (downs == cap_k + 1)
                capped = capped | late_cap
                brk = np.where(late_cap, prev + 1, brk)
                tot = np.where(ended & ~trail, tot + m_acc, tot)

                ids = idx[done]
                m_tot[ids] = tot[done]
                restarts[ids] = np.minimum(downs[done], cap_k)
                completed[ids] = comp[done]
                term[ids] = np.where(
                    comp[done], _COMPLETED,
                    np.where(capped[done], _RESTARTS, _BUDGET),
                ).astype(np.int8)
                t_break[ids] = brk[done]
                done_comp = done & comp
                if done_comp.any():
                    cids = idx[done_comp]
                    # t_sub is absolute here; the scalar rebases with the
                    # *relative* submission slot.
                    t_sub_h = (t_sub[cids] - win_lo[cids]) * slot_len
                    ct_out[cids] = t_sub_h + (s_ct[cids] - t_sub_h)
                keep = ~done
                idx, r_row, r_cnt, r_lo, r_hi, r_tc = (
                    idx[keep], r_row[keep], r_cnt[keep],
                    r_lo[keep], r_hi[keep], r_tc[keep],
                )
                m_acc, tot, downs, prev = (
                    m_acc[keep], tot[keep], downs[keep], prev[keep]
                )
                capped, comp, brk = capped[keep], comp[keep], brk[keep]
            lo = hi

    # Stage 4 — fix-up: lanes capped before window end simulated their
    # slave optimistically too far; redo them with the true horizon
    # min(win_hi, t_break + 1) (the break slot itself is still stepped).
    redo = np.flatnonzero((term == _RESTARTS) & (t_break + 1 < win_hi))
    if redo.size:
        cost, intr, done, ct, tc, ev = _slave_walk(
            slave_prices, rank_s, lane_srow[redo], cnt_s[redo],
            t_sub[redo], t_break[redo] + 1, lane_work[redo],
            lane_recovery[redo], slot_len, win_lo[redo], _BLOCK,
        )
        events += ev
        s_cost[redo] = cost
        s_intr[redo] = intr

    out["master_cost"] = m_tot
    slave_total, intr_total = _fold_slaves(s_cost, s_intr, lane_slaves)
    out["slave_cost"] = slave_total
    out["slave_interruptions"] = intr_total
    out["slots_simulated"] = events
    return out


@jit_kernel
def _mapreduce_lane_core(
    master_prices: np.ndarray,
    slave_prices: np.ndarray,
    lane_mrow: np.ndarray,
    lane_srow: np.ndarray,
    lane_start: np.ndarray,
    lane_budget: np.ndarray,
    lane_master_bid: np.ndarray,
    lane_slave_bid: np.ndarray,
    lane_work: np.ndarray,
    lane_recovery: np.ndarray,
    slot_len: float,
    cap_k: int,
    eps: float,
    no_slot: int,
) -> Tuple[
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    int,
]:
    """Per-lane scalar replay of :func:`mapreduce_grid_kernel`.

    One lane at a time, each slot executes the dense kernel's exact
    operation order (master billing/fold, slave knock → recovery → work
    → billing → completion stamp, restart cap, launch, completion gate),
    so every float accumulator sees the same IEEE-754 chain.
    """
    n_lanes = lane_mrow.shape[0]
    completed = np.zeros(n_lanes, dtype=np.bool_)
    ct_out = np.full(n_lanes, np.nan)
    m_cost = np.zeros(n_lanes)
    s_cost_out = np.zeros(n_lanes)
    s_intr_out = np.zeros(n_lanes, dtype=np.int64)
    restarts = np.zeros(n_lanes, dtype=np.int64)
    term = np.full(n_lanes, _BUDGET, dtype=np.int8)
    events = 0
    for i in range(n_lanes):
        mrow = lane_mrow[i]
        srow = lane_srow[i]
        start = lane_start[i]
        budget = lane_budget[i]
        mbid = lane_master_bid[i]
        sbid = lane_slave_bid[i]
        s_w = lane_work[i]
        recovery = lane_recovery[i]
        m_acc = 0.0
        m_tot = 0.0
        m_downs = 0
        m_run_prev = False
        submitted = False
        t_sub = no_slot
        s_run = False
        s_pend = 0.0
        s_cost = 0.0
        s_intr = 0
        s_done = False
        s_ct = 0.0
        terminated = False
        for t in range(budget):
            events += 1
            mp = master_prices[mrow, start + t]
            sp = slave_prices[srow, start + t]
            acc_m = mp <= mbid
            down = m_run_prev and not acc_m
            cap = down and m_downs >= cap_k
            if acc_m:
                m_acc = m_acc + mp * slot_len
            if down:
                m_tot = m_tot + m_acc
                m_acc = 0.0
            # Slave step, in the engine's exact operation order.
            adv = t >= t_sub and not s_done
            acc_s = adv and sp <= sbid
            if adv and s_run and not acc_s:
                s_intr += 1
                s_pend = recovery
            if acc_s and s_pend > 0.0:
                step1 = min(s_pend, slot_len)
            else:
                step1 = 0.0
            s_pend = s_pend - step1
            budget_h = slot_len - step1
            used = step1
            if acc_s and budget_h > 0.0 and s_w > 0.0:
                step2 = min(s_w, budget_h)
            else:
                step2 = 0.0
            s_w = s_w - step2
            used = used + step2
            if acc_s and s_w > eps:
                used = slot_len
            if acc_s:
                s_cost = s_cost + sp * used
            if acc_s and s_w <= eps:
                s_ct = t * slot_len + used
                s_done = True
            if adv:
                s_run = acc_s
            if cap:
                terminated = True
                term[i] = _RESTARTS
                restarts[i] = m_downs
                break
            if down:
                m_downs += 1
            if not submitted and acc_m:
                submitted = True
                t_sub = t + 1
            if t >= t_sub and s_done and acc_m:
                terminated = True
                completed[i] = True
                term[i] = _COMPLETED
                restarts[i] = m_downs
                t_sub_h = t_sub * slot_len
                ct_out[i] = t_sub_h + (s_ct - t_sub_h)
                break
            m_run_prev = acc_m
        if not terminated:
            if not submitted:
                term[i] = _NEVER
            restarts[i] = m_downs
        # Final fold of the still-open master attempt, for every lane —
        # zero for capped and never-launched lanes, exactly the dense
        # kernel's unconditional post-loop fold.
        m_tot = m_tot + m_acc
        m_cost[i] = m_tot
        s_cost_out[i] = s_cost
        s_intr_out[i] = s_intr
    return (
        completed, ct_out, m_cost, s_cost_out, s_intr_out, restarts, term,
        events,
    )


def mapreduce_grid_kernel_compiled(
    master_prices: np.ndarray,
    slave_prices: np.ndarray,
    *,
    lane_mrow: np.ndarray,
    lane_srow: np.ndarray,
    lane_start: np.ndarray,
    lane_budget: np.ndarray,
    lane_master_bid: np.ndarray,
    lane_slave_bid: np.ndarray,
    lane_slaves: np.ndarray,
    lane_work: np.ndarray,
    lane_recovery: np.ndarray,
    slot_length: float,
    max_master_restarts: int = 50,
) -> Dict[str, np.ndarray]:
    """Compiled batched evaluation of a MapReduce plan grid.

    Same contract and bitwise-identical outputs as
    :func:`mapreduce_grid_kernel` (``slots_simulated`` counts the same
    dense lane-slots: each lane walks every window slot until it
    terminates).  The per-lane walk is JIT-compiled when
    :data:`repro.sweep.compiled.COMPILED_AVAILABLE` is true and runs as
    interpreted Python (same bits) otherwise.
    """
    lanes = (
        lane_mrow, lane_srow, lane_start, lane_budget, lane_master_bid,
        lane_slave_bid, lane_slaves, lane_work, lane_recovery,
    )
    n_lanes = _check_lanes(
        master_prices, slave_prices, lanes, slot_length, max_master_restarts
    )
    out = _result(n_lanes)
    if n_lanes == 0:
        return out
    from ..sweep.kernels import _EPS

    completed, ct_out, m_cost, s_cost, s_intr, restarts, term, events = (
        _mapreduce_lane_core(
            master_prices,
            slave_prices,
            lane_mrow.astype(np.int64),
            lane_srow.astype(np.int64),
            lane_start.astype(np.int64),
            lane_budget.astype(np.int64),
            lane_master_bid.astype(np.float64),
            lane_slave_bid.astype(np.float64),
            lane_work.astype(np.float64),
            lane_recovery.astype(np.float64),
            float(slot_length),
            int(max_master_restarts),
            _EPS,
            int(_NO_SLOT),
        )
    )
    out["completed"] = completed.astype(bool)
    out["completion_time"] = ct_out
    out["master_cost"] = m_cost
    out["master_restarts"] = restarts
    out["termination"] = term
    slave_total, intr_total = _fold_slaves(s_cost, s_intr, lane_slaves)
    out["slave_cost"] = slave_total
    out["slave_interruptions"] = intr_total
    out["slots_simulated"] = int(events)
    return out
