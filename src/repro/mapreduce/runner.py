"""Run a MapReduce bidding plan against simulated spot markets.

The master and slaves generally use different instance types (Table 4),
so the runner drives **two** spot markets in lockstep — one per type,
each replaying its own price trace.  Per slot it:

1. steps both markets (new prices, instance launches/terminations),
2. submits the slave requests only once the master is actually running —
   the real EMR protocol: the cluster cannot start without its master,
3. restarts the master (a fresh one-time request at the same bid) if it
   is out-bid — rare by construction since Prop. 4 sizes the master bid,
   but modeled rather than assumed away; slave progress survives because
   persistent requests checkpoint to the save volume,
4. declares the job complete when every sub-job has finished *and* the
   master is up to collect results, then cancels the master.

Modeling simplification (documented): if the master is briefly down
mid-run, slaves continue executing their checkpointed sub-jobs; the
completion gate in step 4 still forces the wall-clock cost of the outage
onto the job.  This matches the paper's treatment, where the master bid
is chosen precisely so that such outages essentially never happen.

The on-demand baseline (Figure 7's comparison bar) is analytic: with
guaranteed availability there are no interruptions, so completion time
and cost follow directly from the workload.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.faults import FaultInjector

from ..core.types import BidKind, MapReduceJobSpec, MapReducePlan
from ..errors import PlanError
from ..market.price_sources import TracePriceSource
from ..market.requests import RequestState
from ..market.simulator import SpotMarket
from ..traces.history import SpotPriceHistory
from .scheduler import MapReduceScheduler

__all__ = [
    "MapReduceRunResult",
    "TerminationReason",
    "run_plan_on_traces",
    "ondemand_baseline",
]


class TerminationReason(enum.Enum):
    """Why a simulated MapReduce run ended.

    ``completed=False`` collapses three very different endings — the
    master burning through its restart budget, the trace running out
    before the job finished, and a master bid so low the cluster never
    even started — that matter for diagnosing a plan.
    """

    COMPLETED = "completed"
    #: The master's (max_master_restarts+1)-th attempt was out-bid.
    RESTARTS_EXHAUSTED = "restarts_exhausted"
    #: The simulated slot budget ran out with slaves still working.
    BUDGET_EXHAUSTED = "budget_exhausted"
    #: The master never reached RUNNING, so slaves were never submitted.
    SLAVES_NEVER_SUBMITTED = "slaves_never_submitted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class MapReduceRunResult:
    """Observed outcome of one simulated MapReduce run."""

    completed: bool
    #: Wall-clock time from submission to the last sub-job finishing, hours.
    completion_time: float
    master_cost: float
    slave_cost: float
    slave_interruptions: int
    master_restarts: int
    #: How the run ended (``None`` only for legacy constructions).
    termination_reason: Optional[TerminationReason] = None

    @property
    def total_cost(self) -> float:
        return self.master_cost + self.slave_cost

    @property
    def master_cost_fraction(self) -> float:
        """Master cost over slave cost — Table 4 reports 10–25%."""
        if self.slave_cost <= 0.0:
            return math.inf
        return self.master_cost / self.slave_cost


def run_plan_on_traces(
    plan: MapReducePlan,
    master_history: SpotPriceHistory,
    slave_history: SpotPriceHistory,
    *,
    start_slot: int = 0,
    max_slots: Optional[int] = None,
    max_master_restarts: int = 50,
    master_faults: "Optional[FaultInjector]" = None,
    slave_faults: "Optional[FaultInjector]" = None,
) -> MapReduceRunResult:
    """Execute ``plan`` against held-out master/slave price traces.

    ``master_faults`` / ``slave_faults`` optionally degrade the two
    markets *independently* (each a
    :class:`~repro.resilience.faults.FaultInjector`), e.g. a revocation
    storm on the slave market while the master's feed stays clean.
    """
    if master_faults is not None:
        master_history = master_faults.perturb_history(master_history)
    if slave_faults is not None:
        slave_history = slave_faults.perturb_history(slave_history)
    slot_length = plan.job.slot_length
    if master_history.slot_length != slot_length or slave_history.slot_length != slot_length:
        raise PlanError(
            "master/slave trace slot lengths must match the job's slot length"
        )
    available = min(
        master_history.n_slots - start_slot, slave_history.n_slots - start_slot
    )
    if available < 1:
        raise PlanError("start_slot leaves no future slots to simulate")
    budget = available if max_slots is None else min(max_slots, available)

    master_market = SpotMarket(
        TracePriceSource(master_history, start_slot=start_slot),
        slot_length=slot_length,
    )
    slave_market = SpotMarket(
        TracePriceSource(slave_history, start_slot=start_slot),
        slot_length=slot_length,
    )
    scheduler = MapReduceScheduler(job=plan.job)

    def submit_master() -> None:
        rid = master_market.submit(
            bid_price=plan.master_bid.price,
            work=math.inf,
            kind=BidKind.ONE_TIME,
            label=f"master#{len(scheduler.master_attempts)}",
        )
        scheduler.attach_master(rid)

    def submit_slaves() -> None:
        for sub in scheduler.sub_jobs:
            rid = slave_market.submit(
                bid_price=plan.slave_bid.price,
                work=sub.work,
                kind=BidKind.PERSISTENT,
                recovery_time=plan.job.recovery_time,
                label=f"slave-{sub.index}",
            )
            scheduler.attach_slave(sub.index, rid)

    submit_master()
    slaves_submit_slot: Optional[int] = None
    completed = False
    completion_time = math.nan
    reason = TerminationReason.BUDGET_EXHAUSTED
    for _step in range(budget):
        master_market.step()
        slave_market.step()

        if scheduler.master_failed(master_market):
            if scheduler.master_restarts >= max_master_restarts:
                reason = TerminationReason.RESTARTS_EXHAUSTED
                break
            submit_master()
            continue

        master_up = (
            scheduler.master_request_id is not None
            and master_market.request_state(scheduler.master_request_id)
            is RequestState.RUNNING
        )
        if slaves_submit_slot is None:
            if master_up:
                # The cluster starts only once its master is live.
                submit_slaves()
                slaves_submit_slot = slave_market.slot
            continue

        if scheduler.slaves_done(slave_market) and master_up:
            completed = True
            reason = TerminationReason.COMPLETED
            finish_times = [
                slave_market.outcome(sub.request_id).completion_time
                for sub in scheduler.sub_jobs
            ]
            # Sub-job completion times are relative to the slaves'
            # submission; rebase to the job's submission at slot 0.
            completion_time = slaves_submit_slot * slot_length + max(
                t for t in finish_times if t is not None
            )
            master_market.cancel(scheduler.master_request_id)
            break

    if slaves_submit_slot is None and not completed:
        reason = TerminationReason.SLAVES_NEVER_SUBMITTED
    master_cost = sum(
        master_market.outcome(rid).cost for rid in scheduler.master_attempts
    )
    # Sub-jobs are only attached to requests once the master comes up; a
    # master that never runs leaves them unsubmitted with zero cost.
    slave_cost = sum(
        slave_market.outcome(sub.request_id).cost
        for sub in scheduler.sub_jobs
        if sub.submitted
    )
    interruptions = sum(
        slave_market.outcome(sub.request_id).interruptions
        for sub in scheduler.sub_jobs
        if sub.submitted
    )
    return MapReduceRunResult(
        completed=completed,
        completion_time=completion_time,
        master_cost=master_cost,
        slave_cost=slave_cost,
        slave_interruptions=interruptions,
        master_restarts=scheduler.master_restarts,
        termination_reason=reason,
    )


def ondemand_baseline(
    plan_job: MapReduceJobSpec,
    master_ondemand: float,
    slave_ondemand: float,
) -> MapReduceRunResult:
    """The Figure 7 on-demand baseline for the same cluster shape.

    With guaranteed availability the wall-clock time is the per-slave
    share ``(t_s + t_o)/M`` and the bill is that time on ``M`` slave
    instances plus the master, all at on-demand rates.
    """
    if master_ondemand <= 0 or slave_ondemand <= 0:
        raise PlanError("on-demand prices must be positive")
    wall = plan_job.slaves_spec.per_instance_work
    master_cost = wall * master_ondemand
    slave_cost = wall * plan_job.num_slaves * slave_ondemand
    return MapReduceRunResult(
        completed=True,
        completion_time=wall,
        master_cost=master_cost,
        slave_cost=slave_cost,
        slave_interruptions=0,
        master_restarts=0,
        termination_reason=TerminationReason.COMPLETED,
    )
