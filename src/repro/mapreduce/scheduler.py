"""Master-side task tracking for a spot-backed MapReduce cluster.

The scheduler models what the paper's master node does (Section 3.1):
hand each slave an equal share of the work, watch slave progress, and
declare the job done when every sub-job completes.  Slave interruptions
are survivable (persistent requests checkpoint to a save volume); a
*master* interruption is the catastrophic case the one-time bid is chosen
to avoid — the scheduler records it so the runner can restart the master.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.types import MapReduceJobSpec
from ..errors import PlanError
from ..market.requests import RequestState
from ..market.simulator import SpotMarket

__all__ = ["SubJob", "MapReduceScheduler"]


@dataclass
class SubJob:
    """One slave's share of the job."""

    index: int
    work: float
    request_id: Optional[int] = None

    @property
    def submitted(self) -> bool:
        return self.request_id is not None


@dataclass
class MapReduceScheduler:
    """Tracks master and slave requests across one or more master attempts."""

    job: MapReduceJobSpec
    sub_jobs: List[SubJob] = field(init=False)
    master_request_id: Optional[int] = None
    #: Request ids of all master attempts, in order (restarts append).
    master_attempts: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        per_slave = self.job.slaves_spec.per_instance_work
        if per_slave <= 0:
            raise PlanError(f"per-slave work must be positive, got {per_slave!r}")
        self.sub_jobs = [
            SubJob(index=i, work=per_slave) for i in range(self.job.num_slaves)
        ]

    # -- wiring ----------------------------------------------------------
    def attach_master(self, request_id: int) -> None:
        """Register a (new) master request; restarts call this again."""
        self.master_request_id = request_id
        self.master_attempts.append(request_id)

    def attach_slave(self, index: int, request_id: int) -> None:
        """Register the persistent request serving sub-job ``index``."""
        if not 0 <= index < len(self.sub_jobs):
            raise PlanError(f"sub-job index {index} out of range")
        if self.sub_jobs[index].submitted:
            raise PlanError(f"sub-job {index} already has a request attached")
        self.sub_jobs[index].request_id = request_id

    # -- status ------------------------------------------------------------
    def slave_states(self, market: SpotMarket) -> Dict[int, RequestState]:
        """Current state of every attached slave request."""
        return {
            sj.index: market.request_state(sj.request_id)
            for sj in self.sub_jobs
            if sj.submitted
        }

    def slaves_done(self, market: SpotMarket) -> bool:
        """True when every sub-job's request has completed."""
        if not all(sj.submitted for sj in self.sub_jobs):
            return False
        return all(
            market.request_state(sj.request_id) is RequestState.COMPLETED
            for sj in self.sub_jobs
        )

    def master_failed(self, master_market: SpotMarket) -> bool:
        """True when the current master attempt has been out-bid."""
        if self.master_request_id is None:
            return False
        return (
            master_market.request_state(self.master_request_id)
            is RequestState.FAILED
        )

    def master_running_or_pending(self, master_market: SpotMarket) -> bool:
        """True while the current master attempt is still alive."""
        if self.master_request_id is None:
            return False
        return not master_market.request_state(self.master_request_id).is_terminal

    @property
    def master_restarts(self) -> int:
        """Number of times the master had to be resubmitted."""
        return max(0, len(self.master_attempts) - 1)
