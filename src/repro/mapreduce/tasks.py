"""Task-pool scheduling: Hadoop-style work stealing between slaves.

The paper's model (and :mod:`repro.mapreduce.scheduler`) pins one equal
sub-job to each slave — if a slave is out-bid, its work waits for that
slave to resume.  Real Hadoop instead splits the map phase into many
small tasks and reassigns the tasks of a failed worker to live ones, so
one stalled market need not stall the job.

:class:`TaskPool` implements that: the job is cut into ``num_tasks``
equal map tasks; each running slave pulls the next unfinished task,
works on it, and returns it to the pool when interrupted (losing only
the partially done task, bounded by one task's length, rather than
requiring a recovery replay).  :func:`run_task_pool_on_trace` drives the
pool against a single slave market and reports the same metrics as the
sub-job runner, so the two policies are directly comparable — the
`scheduling_policy` ablation does exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import PlanError
from ..traces.history import SpotPriceHistory

__all__ = ["TaskPool", "TaskPoolRunResult", "run_task_pool_on_trace"]


@dataclass
class TaskPool:
    """A pool of equal map tasks with pull-based assignment.

    Parameters
    ----------
    total_work:
        Total map work in instance-hours.
    num_tasks:
        How many tasks to cut it into.  More tasks → less work lost per
        interruption, more scheduling granularity.
    """

    total_work: float
    num_tasks: int
    #: Remaining work per unfinished task (index → hours).
    _remaining: Dict[int, float] = field(init=False)
    #: Tasks currently checked out (task → worker id).
    _checked_out: Dict[int, int] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_work <= 0:
            raise PlanError(f"total_work must be positive, got {self.total_work!r}")
        if self.num_tasks < 1:
            raise PlanError(f"num_tasks must be >= 1, got {self.num_tasks!r}")
        per_task = self.total_work / self.num_tasks
        self._remaining = {i: per_task for i in range(self.num_tasks)}

    @property
    def task_size(self) -> float:
        return self.total_work / self.num_tasks

    @property
    def unfinished_tasks(self) -> int:
        return len(self._remaining)

    @property
    def done(self) -> bool:
        return not self._remaining

    def checkout(self, worker: int) -> Optional[int]:
        """Assign the next available task to ``worker`` (None if empty)."""
        for task in self._remaining:
            if task not in self._checked_out:
                self._checked_out[task] = worker
                return task
        return None

    def work_on(self, task: int, hours: float) -> float:
        """Apply ``hours`` of progress; returns the unused surplus."""
        if task not in self._remaining:
            raise PlanError(f"task {task} is not outstanding")
        left = self._remaining[task]
        used = min(left, hours)
        left -= used
        if left <= 1e-12:
            del self._remaining[task]
            self._checked_out.pop(task, None)
        else:
            self._remaining[task] = left
        return hours - used

    def release(self, task: int, *, lose_progress: bool = True) -> None:
        """Return a checked-out task to the pool (worker interrupted).

        With ``lose_progress`` the task restarts from scratch — the
        in-memory partial map output dies with the instance.
        """
        if task in self._remaining:
            self._checked_out.pop(task, None)
            if lose_progress:
                self._remaining[task] = self.task_size

    def tasks_of(self, worker: int) -> List[int]:
        return [t for t, w in self._checked_out.items() if w == worker]


@dataclass(frozen=True)
class TaskPoolRunResult:
    completed: bool
    completion_time: float
    cost: float
    interruptions: int
    #: Work re-executed because interruptions lost in-flight tasks, hours.
    lost_work: float


def run_task_pool_on_trace(
    pool: TaskPool,
    future: SpotPriceHistory,
    *,
    num_workers: int,
    bid: float,
    start_slot: int = 0,
) -> TaskPoolRunResult:
    """Run the pool with ``num_workers`` slaves on one shared market.

    All workers bid the same price on the same instance type, so a slot
    either runs all of them or none (the paper's setting).  Within a
    running slot each worker advances its current task, pulling new ones
    as tasks finish; an out-bid slot returns in-flight tasks to the pool
    with their progress lost.
    """
    if num_workers < 1:
        raise PlanError(f"num_workers must be >= 1, got {num_workers!r}")
    if not 0 <= start_slot < future.n_slots:
        raise PlanError(f"start_slot {start_slot!r} outside the trace")
    tk = future.slot_length
    cost = 0.0
    interruptions = 0
    lost_work = 0.0
    was_running = False
    current: Dict[int, Optional[int]] = {w: None for w in range(num_workers)}
    completion_time = math.nan

    for slot in range(start_slot, future.n_slots):
        price = float(future.prices[slot])
        accepted = bid >= price
        if not accepted:
            if was_running:
                interruptions += 1
                for worker, task in current.items():
                    if task is not None:
                        done_before = pool.task_size - pool._remaining.get(
                            task, pool.task_size
                        )
                        lost_work += done_before
                        pool.release(task, lose_progress=True)
                        current[worker] = None
            was_running = False
            continue
        was_running = True
        slot_done = False
        for worker in range(num_workers):
            budget = tk
            used = 0.0
            while budget > 1e-12:
                task = current[worker]
                if task is None:
                    task = pool.checkout(worker)
                    current[worker] = task
                if task is None:
                    break  # pool drained for this worker
                surplus = pool.work_on(task, budget)
                used += budget - surplus
                budget = surplus
                if task not in pool._remaining:
                    current[worker] = None
            # Workers hold their instance for the full slot while the
            # job is unfinished; the final slot is billed pro rata.
            charged = tk if not pool.done else used
            if used > 0.0 or not pool.done:
                cost += price * charged
            if pool.done and not slot_done:
                completion_time = (
                    (slot - start_slot) * tk + used if used > 0 else
                    (slot - start_slot) * tk
                )
                slot_done = True
        if pool.done:
            return TaskPoolRunResult(
                completed=True,
                completion_time=completion_time,
                cost=cost,
                interruptions=interruptions,
                lost_work=lost_work,
            )
    return TaskPoolRunResult(
        completed=False,
        completion_time=math.nan,
        cost=cost,
        interruptions=interruptions,
        lost_work=lost_work,
    )
