"""The spot-market simulator substrate (the repo's EC2 stand-in)."""

import warnings

from .billing import BillingPolicy, HourlyBilling, PerSlotBilling
from .events import EventKind, EventLog, MarketEvent
from .fastpath import fast_onetime_outcome, fast_persistent_outcome
from .outcomes import OutcomeStats
from .price_sources import (
    EndogenousPriceSource,
    IIDPriceSource,
    PriceSource,
    ProviderPriceSource,
    TracePriceSource,
)
from .requests import RequestState, SpotRequest
from .simulator import JobOutcome, SpotMarket

__all__ = [
    "BillingPolicy",
    "HourlyBilling",
    "PerSlotBilling",
    "EventKind",
    "EventLog",
    "MarketEvent",
    "FastOutcome",
    "OutcomeStats",
    "fast_onetime_outcome",
    "fast_persistent_outcome",
    "EndogenousPriceSource",
    "IIDPriceSource",
    "PriceSource",
    "ProviderPriceSource",
    "TracePriceSource",
    "RequestState",
    "SpotRequest",
    "JobOutcome",
    "SpotMarket",
]


def __getattr__(name: str):
    if name == "FastOutcome":
        warnings.warn(
            "FastOutcome is deprecated; use repro.market.OutcomeStats "
            "(same fields, shared by all simulation backends)",
            DeprecationWarning,
            stacklevel=2,
        )
        return OutcomeStats
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
