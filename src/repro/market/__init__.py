"""The spot-market simulator substrate (the repo's EC2 stand-in)."""

from .billing import BillingPolicy, HourlyBilling, PerSlotBilling
from .events import EventKind, EventLog, MarketEvent
from .fastpath import FastOutcome, fast_onetime_outcome, fast_persistent_outcome
from .price_sources import (
    EndogenousPriceSource,
    IIDPriceSource,
    PriceSource,
    ProviderPriceSource,
    TracePriceSource,
)
from .requests import RequestState, SpotRequest
from .simulator import JobOutcome, SpotMarket

__all__ = [
    "BillingPolicy",
    "HourlyBilling",
    "PerSlotBilling",
    "EventKind",
    "EventLog",
    "MarketEvent",
    "FastOutcome",
    "fast_onetime_outcome",
    "fast_persistent_outcome",
    "EndogenousPriceSource",
    "IIDPriceSource",
    "PriceSource",
    "ProviderPriceSource",
    "TracePriceSource",
    "RequestState",
    "SpotRequest",
    "JobOutcome",
    "SpotMarket",
]
