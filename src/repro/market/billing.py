"""Billing policies for spot instances.

The paper's cost model charges each *running* slot at that slot's spot
price, with idle (out-bid) time free — :class:`PerSlotBilling`.  Real EC2
in 2014 billed by started instance-hour, waiving the final partial hour
when *Amazon* interrupted the instance but charging it in full when the
user terminated; :class:`HourlyBilling` implements that variant for the
billing ablation.

A policy instance accounts for **one** instance run: the simulator feeds
it each slot's usage and lifecycle endings, then reads ``total``.
"""

from __future__ import annotations

import abc
import math

__all__ = ["BillingPolicy", "PerSlotBilling", "HourlyBilling"]


class BillingPolicy(abc.ABC):
    """Accumulates the dollar cost of one spot-instance run."""

    @abc.abstractmethod
    def on_usage(self, price: float, hours: float) -> None:
        """Record ``hours`` of running time charged at ``price`` $/hour.

        Called once per slot in which the instance ran (``hours`` may be a
        fraction of the slot when the job finishes mid-slot).
        """

    def on_interrupt(self) -> None:
        """The provider out-bid and terminated the instance."""

    def on_user_stop(self) -> None:
        """The job completed (or the user cancelled the request)."""

    @property
    @abc.abstractmethod
    def total(self) -> float:
        """Dollar cost accumulated so far."""


class PerSlotBilling(BillingPolicy):
    """The paper's model: every running hour costs the prevailing spot price."""

    def __init__(self) -> None:
        self._total = 0.0

    def on_usage(self, price: float, hours: float) -> None:
        if price < 0 or hours < 0:
            raise ValueError(f"price and hours must be non-negative: {price}, {hours}")
        self._total += price * hours

    @property
    def total(self) -> float:
        return self._total


class HourlyBilling(BillingPolicy):
    """EC2's 2014 rules: bill whole instance-hours at the price in force
    when each hour starts; the trailing partial hour is free on provider
    interruption but charged on user termination."""

    def __init__(self) -> None:
        self._total = 0.0
        #: Hours consumed within the currently open billing hour.
        self._hour_used = 0.0
        #: Price locked in when the current billing hour opened.
        self._hour_price = 0.0
        self._hour_open = False

    def on_usage(self, price: float, hours: float) -> None:
        if price < 0 or hours < 0:
            raise ValueError(f"price and hours must be non-negative: {price}, {hours}")
        remaining = hours
        while remaining > 0.0:
            if not self._hour_open:
                self._hour_open = True
                self._hour_used = 0.0
                self._hour_price = price
            capacity = 1.0 - self._hour_used
            used = min(remaining, capacity)
            self._hour_used += used
            remaining -= used
            if self._hour_used >= 1.0 - 1e-12:
                # A completed instance-hour is charged at its opening price.
                self._total += self._hour_price
                self._hour_open = False

    def on_interrupt(self) -> None:
        # Provider interruption: the open partial hour is waived.
        self._hour_open = False
        self._hour_used = 0.0

    def on_user_stop(self) -> None:
        # User-side termination: the open partial hour is charged in full.
        if self._hour_open and self._hour_used > 0.0:
            self._total += self._hour_price
        self._hour_open = False
        self._hour_used = 0.0

    @property
    def total(self) -> float:
        return self._total

