"""Typed event log for the spot-market simulator.

Every state change in the market produces an event, giving tests and
experiments an audit trail equivalent to the DynamoDB run log the paper's
AMI wrote (Section 7.1's experiment setup).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

__all__ = ["EventKind", "MarketEvent", "EventLog"]


class EventKind(enum.Enum):
    """Everything that can happen to a request or the market."""

    PRICE_SET = "price-set"
    REQUEST_SUBMITTED = "request-submitted"
    INSTANCE_LAUNCHED = "instance-launched"
    INSTANCE_OUTBID = "instance-outbid"
    INSTANCE_RESUMED = "instance-resumed"
    RECOVERY_STARTED = "recovery-started"
    JOB_COMPLETED = "job-completed"
    REQUEST_FAILED = "request-failed"
    REQUEST_CANCELLED = "request-cancelled"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class MarketEvent:
    """One timestamped market event."""

    kind: EventKind
    slot: int
    time_hours: float
    #: Request the event concerns; None for market-wide events (price sets).
    request_id: Optional[int] = None
    #: Spot price in force when the event fired.
    price: Optional[float] = None
    detail: str = ""


@dataclass
class EventLog:
    """An append-only list of market events with filtered views."""

    events: List[MarketEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, event: MarketEvent) -> None:
        if self.enabled:
            self.events.append(event)

    def for_request(self, request_id: int) -> List[MarketEvent]:
        """All events concerning one request, in order."""
        return [e for e in self.events if e.request_id == request_id]

    def of_kind(self, kind: EventKind) -> List[MarketEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind is kind]

    def count(self, kind: EventKind, request_id: Optional[int] = None) -> int:
        """Number of events of ``kind`` (optionally for one request)."""
        return sum(
            1
            for e in self.events
            if e.kind is kind and (request_id is None or e.request_id == request_id)
        )

    def __iter__(self) -> Iterator[MarketEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
