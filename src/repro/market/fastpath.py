"""Fast path for single-request persistent simulations.

Parameter sweeps (Monte-Carlo validation, large ablations) simulate the
same shape over and over: one persistent request against one price
trace.  :func:`fast_persistent_outcome` computes that run directly from
the price array — no market object, no event log — touching only the
accepted slots.  Its semantics are defined to match
:func:`repro.market.instance.advance_request` exactly, and the test
suite holds the two implementations equal on random traces, which makes
this module double as an independent oracle for the market engine — and
for the batched :mod:`repro.sweep` kernels built on top of it.

Both functions return :class:`~repro.market.outcomes.OutcomeStats`; the
old ``FastOutcome`` name is a deprecated alias for it.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..errors import MarketError
from .outcomes import OutcomeStats

__all__ = ["FastOutcome", "fast_onetime_outcome", "fast_persistent_outcome"]


def __getattr__(name: str):
    if name == "FastOutcome":
        warnings.warn(
            "FastOutcome is deprecated; use repro.market.OutcomeStats "
            "(same fields, shared by all simulation backends)",
            DeprecationWarning,
            stacklevel=2,
        )
        return OutcomeStats
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def fast_persistent_outcome(
    prices: np.ndarray,
    bid: float,
    work: float,
    recovery_time: float,
    slot_length: float,
) -> OutcomeStats:
    """Simulate one persistent request over ``prices`` (one per slot).

    The request is submitted at slot 0; each slot it runs if
    ``bid >= price``, pays the spot price for time used, owes
    ``recovery_time`` of charged-but-useless running time after every
    resume from an interruption, and completes mid-slot when the work is
    done.  Idle slots are free.  If the trace ends first, the partial
    accounting is returned with ``completed=False``.
    """
    prices = np.asarray(prices, dtype=float)
    if prices.ndim != 1 or prices.size == 0:
        raise MarketError("prices must be a non-empty 1-D array")
    if bid < 0 or work <= 0 or recovery_time < 0 or slot_length <= 0:
        raise MarketError(
            f"invalid parameters: bid={bid!r} work={work!r} "
            f"recovery_time={recovery_time!r} slot_length={slot_length!r}"
        )

    accepted = prices <= bid
    accepted_idx = np.flatnonzero(accepted)
    if accepted_idx.size == 0:
        return OutcomeStats(
            completed=False,
            cost=0.0,
            completion_time=float("nan"),
            running_time=0.0,
            idle_time=prices.size * slot_length,
            recovery_time_used=0.0,
            interruptions=0,
        )

    # A slot is a "resume" when the previous slot was not accepted and
    # the request had already launched (interruptions happen only after
    # the first launch).
    gaps = np.diff(accepted_idx) > 1
    resume_positions = set((np.flatnonzero(gaps) + 1).tolist())

    work_remaining = float(work)
    pending_recovery = 0.0
    cost = 0.0
    running = 0.0
    recovery_used = 0.0
    interruptions_seen = 0
    completion_time = float("nan")
    completed = False
    last_slot_simulated = -1

    for position, slot in enumerate(accepted_idx):
        if position in resume_positions:
            pending_recovery = recovery_time
            interruptions_seen += 1
        budget = slot_length
        used = 0.0
        if pending_recovery > 0.0:
            step = min(pending_recovery, budget)
            pending_recovery -= step
            recovery_used += step
            budget -= step
            used += step
        if budget > 0.0 and work_remaining > 0.0:
            step = min(work_remaining, budget)
            work_remaining -= step
            used += step
        if work_remaining > 1e-12:
            used = slot_length  # occupies the whole slot
        price = float(prices[slot])
        cost += price * used
        running += used
        last_slot_simulated = int(slot)
        if work_remaining <= 1e-12:
            completed = True
            completion_time = slot * slot_length + used
            break

    if completed:
        slots_elapsed = last_slot_simulated + 1
        accepted_before_end = int(
            np.searchsorted(accepted_idx, last_slot_simulated, side="right")
        )
        idle = (slots_elapsed - accepted_before_end) * slot_length
        interruptions = interruptions_seen
    else:
        idle = (prices.size - accepted_idx.size) * slot_length
        # The engine counts an interruption at every out-bid of a running
        # request — including the trailing knock-back when the trace ends
        # on rejected slots — so an incomplete run carries one more
        # interruption than it has resumes unless the trace's final slot
        # was accepted.
        trailing = 1 if int(accepted_idx[-1]) < prices.size - 1 else 0
        interruptions = interruptions_seen + trailing
    return OutcomeStats(
        completed=completed,
        cost=cost,
        completion_time=completion_time,
        running_time=running,
        idle_time=idle,
        recovery_time_used=recovery_used,
        interruptions=interruptions,
    )


def fast_onetime_outcome(
    prices: np.ndarray,
    bid: float,
    work: float,
    slot_length: float,
) -> OutcomeStats:
    """Simulate one one-time request over ``prices``.

    Pends until first accepted, then runs until completion or the first
    out-bid slot (which terminates it permanently).  Semantics match the
    market engine; the same equivalence test covers both paths.
    """
    prices = np.asarray(prices, dtype=float)
    if prices.ndim != 1 or prices.size == 0:
        raise MarketError("prices must be a non-empty 1-D array")
    if bid < 0 or work <= 0 or slot_length <= 0:
        raise MarketError(
            f"invalid parameters: bid={bid!r} work={work!r} "
            f"slot_length={slot_length!r}"
        )
    accepted = prices <= bid
    accepted_idx = np.flatnonzero(accepted)
    if accepted_idx.size == 0:
        return OutcomeStats(
            completed=False, cost=0.0, completion_time=float("nan"),
            running_time=0.0, idle_time=prices.size * slot_length,
            recovery_time_used=0.0, interruptions=0,
        )
    start = int(accepted_idx[0])
    rejected_after = np.flatnonzero(~accepted[start:])
    end = start + int(rejected_after[0]) if rejected_after.size else prices.size

    work_remaining = float(work)
    cost = 0.0
    running = 0.0
    completed = False
    completion_time = float("nan")
    for slot in range(start, end):
        used = min(work_remaining, slot_length)
        if work_remaining > slot_length + 1e-12:
            used = slot_length
        cost += float(prices[slot]) * used
        running += used
        work_remaining -= used
        if work_remaining <= 1e-12:
            completed = True
            completion_time = slot * slot_length + used
            break
    return OutcomeStats(
        completed=completed,
        cost=cost,
        completion_time=completion_time,
        running_time=running,
        idle_time=start * slot_length,
        recovery_time_used=0.0,
        interruptions=0,
    )
