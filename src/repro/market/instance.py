"""Per-slot instance lifecycle engine.

:func:`advance_request` applies one market slot to one request: launch or
resume when the bid beats the price, terminate or knock back when it
does not, consume recovery time after resumes, advance the workload, and
feed the billing policy.  The semantics follow Sections 3.2 and 5:

* Decisions happen at slot boundaries, when the provider sets the price.
* A resumed persistent job pays ``t_r`` of *running* time (recovery is
  charged — it is time on the instance) before useful work continues.
* Idle (out-bid) time costs nothing.
* A job finishing mid-slot is charged only for the fraction used.
"""

from __future__ import annotations

import math

from ..core.types import BidKind
from ..errors import MarketError
from .events import EventKind, EventLog, MarketEvent
from .requests import RequestState, SpotRequest

__all__ = ["advance_request", "cancel_request"]


def _record(
    log: EventLog,
    kind: EventKind,
    request: SpotRequest,
    slot: int,
    time_hours: float,
    price: float,
    detail: str = "",
) -> None:
    log.record(
        MarketEvent(
            kind=kind,
            slot=slot,
            time_hours=time_hours,
            request_id=request.request_id,
            price=price,
            detail=detail,
        )
    )


def advance_request(
    request: SpotRequest,
    price: float,
    slot: int,
    slot_length: float,
    log: EventLog,
) -> None:
    """Apply one slot (at ``price``) to ``request``; mutates it in place."""
    if request.state.is_terminal:
        return
    if slot < request.submitted_slot:
        raise MarketError(
            f"request {request.request_id} advanced at slot {slot} before its "
            f"submission slot {request.submitted_slot}"
        )
    slot_start = slot * slot_length
    accepted = request.bid_price >= price

    if request.state is RequestState.RUNNING and not accepted:
        # Out-bid at the slot boundary: the provider terminates the
        # instance before this slot runs.
        request.billing.on_interrupt()
        if request.kind is BidKind.ONE_TIME:
            request.state = RequestState.FAILED
            request.closed_at = slot_start
            _record(
                log, EventKind.REQUEST_FAILED, request, slot, slot_start, price,
                "one-time request out-bid",
            )
            return
        request.state = RequestState.PENDING
        request.interruptions += 1
        # The recovery debt is owed at the next resume (data must be
        # restored from the save volume).
        request.pending_recovery = request.recovery_time
        _record(log, EventKind.INSTANCE_OUTBID, request, slot, slot_start, price)
        # Falls through to the PENDING accounting below.

    if request.state is RequestState.PENDING:
        if not accepted:
            request.idle_hours += slot_length
            return
        resumed = request.ever_launched
        request.state = RequestState.RUNNING
        request.ever_launched = True
        _record(
            log,
            EventKind.INSTANCE_RESUMED if resumed else EventKind.INSTANCE_LAUNCHED,
            request,
            slot,
            slot_start,
            price,
        )
        if resumed and request.pending_recovery > 0.0:
            _record(
                log, EventKind.RECOVERY_STARTED, request, slot, slot_start, price,
                f"recovery={request.pending_recovery:.6g}h",
            )

    # state is RUNNING and the bid is accepted: consume this slot.
    budget = slot_length
    used = 0.0

    if request.pending_recovery > 0.0:
        recovery_used = min(request.pending_recovery, budget)
        request.pending_recovery -= recovery_used
        request.recovery_hours += recovery_used
        budget -= recovery_used
        used += recovery_used

    if budget > 0.0 and request.work_remaining > 0.0:
        work_done = min(request.work_remaining, budget)
        request.work_remaining -= work_done
        used += work_done
        budget -= work_done

    # An instance that still has work (or recovery) occupies the whole
    # slot; only completion releases it early.
    finished = request.work_remaining <= 1e-12 and math.isfinite(request.work)
    if not finished:
        used = slot_length

    request.running_hours += used
    request.billing.on_usage(price, used)

    if finished:
        request.state = RequestState.COMPLETED
        request.completed_at = slot_start + used
        request.billing.on_user_stop()
        _record(
            log, EventKind.JOB_COMPLETED, request, slot, request.completed_at, price
        )


def cancel_request(
    request: SpotRequest, slot: int, slot_length: float, log: EventLog
) -> None:
    """User-side cancellation (e.g. the MapReduce runner stopping the
    master once every slave has finished)."""
    if request.state.is_terminal:
        return
    request.billing.on_user_stop()
    request.state = RequestState.CANCELLED
    request.closed_at = slot * slot_length
    _record(
        log,
        EventKind.REQUEST_CANCELLED,
        request,
        slot,
        request.closed_at,
        price=math.nan,
    )
