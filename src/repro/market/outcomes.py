"""The shared per-run outcome record used across simulation backends.

Three backends report the same statistics for one spot request run: the
full :class:`~repro.market.simulator.SpotMarket` engine (via
:meth:`~repro.market.simulator.JobOutcome.to_stats`), the scalar
:mod:`~repro.market.fastpath` oracle, and the batched
:mod:`repro.sweep` kernels (via
:meth:`~repro.sweep.report.SweepReport.cell`).  :class:`OutcomeStats`
is that common record, so results from any backend are interchangeable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["OutcomeStats"]


@dataclass(frozen=True)
class OutcomeStats:
    """Observed statistics of one simulated spot request run.

    Field names and order match the engine's
    :class:`~repro.market.simulator.JobOutcome` accounting fields; times
    are in hours and costs in dollars.
    """

    completed: bool
    cost: float
    completion_time: float  #: NaN when not completed
    running_time: float
    idle_time: float
    recovery_time_used: float
    interruptions: int

    @property
    def charged_price_per_hour(self) -> float:
        """Mean price charged per running hour; 0 when the job never ran."""
        if self.running_time <= 0.0:
            return 0.0
        return self.cost / self.running_time

    @property
    def wall_clock_time(self) -> float:
        """Completion time when completed, NaN otherwise (alias helper)."""
        return self.completion_time if self.completed else math.nan
