"""Per-slot spot-price sources for the market simulator.

The simulator is agnostic to how prices arise; these sources cover the
three regimes the repo needs:

* :class:`TracePriceSource` — replay a recorded/generated history (the
  backtesting mode every Section 7 experiment uses).
* :class:`IIDPriceSource` — draw each slot's price independently from a
  :class:`~repro.core.distributions.PriceDistribution` (the Section 5
  modeling assumption, useful for long-horizon statistics).
* :class:`ProviderPriceSource` — run the Section 4 closed-loop provider
  one step per slot, with exogenous arrivals.  The paper assumes a single
  user's bids do not move the spot price (Section 8), so user bids are
  *not* fed back into the provider's demand here; the collective-behavior
  extension relaxes that separately.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..core.distributions import PriceDistribution
from ..errors import MarketError
from ..provider.queue import ProviderSimulation
from ..traces.history import SpotPriceHistory

__all__ = [
    "PriceSource",
    "TracePriceSource",
    "IIDPriceSource",
    "ProviderPriceSource",
    "EndogenousPriceSource",
]


class PriceSource(abc.ABC):
    """Produces the spot price for each successive slot."""

    @abc.abstractmethod
    def next_price(self) -> float:
        """The spot price for the next slot.

        Raises :class:`MarketError` when the source is exhausted.
        """

    def remaining_slots(self) -> Optional[int]:
        """Slots left before exhaustion, or ``None`` if unbounded."""
        return None


class TracePriceSource(PriceSource):
    """Replay a :class:`SpotPriceHistory`, one slot per call."""

    def __init__(self, history: SpotPriceHistory, *, start_slot: int = 0):
        if not 0 <= start_slot < history.n_slots:
            raise MarketError(
                f"start_slot {start_slot} outside the trace's {history.n_slots} slots"
            )
        self._history = history
        self._cursor = start_slot

    def next_price(self) -> float:
        if self._cursor >= self._history.n_slots:
            raise MarketError(
                f"price trace exhausted after {self._history.n_slots} slots"
            )
        price = float(self._history.prices[self._cursor])
        self._cursor += 1
        return price

    def remaining_slots(self) -> int:
        return self._history.n_slots - self._cursor


class IIDPriceSource(PriceSource):
    """Draw each slot's price independently from a distribution."""

    def __init__(self, distribution: PriceDistribution, rng: np.random.Generator):
        self._dist = distribution
        self._rng = rng

    def next_price(self) -> float:
        return float(self._dist.sample(1, self._rng)[0])


class ProviderPriceSource(PriceSource):
    """Prices from the closed-loop Section 4 provider simulation."""

    def __init__(self, simulation: ProviderSimulation, rng: np.random.Generator):
        self._sim = simulation
        self._rng = rng

    def next_price(self) -> float:
        arrivals = float(self._sim.arrivals.sample(1, self._rng)[0])
        price, _accepted, _demand = self._sim.step(arrivals)
        return price


class EndogenousPriceSource(PriceSource):
    """Provider-driven prices where *our own* requests add to demand.

    The paper assumes "an individual user's bid price will not measurably
    affect the provider's spot price" (§8) and verifies it on EC2 (§7).
    This source makes the assumption testable in simulation: the attached
    market's active request count, scaled by ``demand_weight``, is added
    to the provider's queue before each slot's price is set.  With a
    small weight the price trajectory is indistinguishable from the
    exogenous one; cranking the weight up shows when the assumption
    breaks.
    """

    def __init__(
        self,
        simulation: ProviderSimulation,
        rng: np.random.Generator,
        *,
        demand_weight: float = 1.0,
    ):
        if demand_weight < 0:
            raise MarketError(
                f"demand_weight must be non-negative, got {demand_weight!r}"
            )
        self._sim = simulation
        self._rng = rng
        self._weight = float(demand_weight)
        #: Set by the market after construction (circular wiring).
        self.market = None

    def attach(self, market) -> None:
        """Attach the market whose active requests join the demand."""
        self.market = market

    def next_price(self) -> float:
        arrivals = float(self._sim.arrivals.sample(1, self._rng)[0])
        extra = 0.0
        if self.market is not None:
            extra = self._weight * self.market.active_request_count()
        # Temporarily inject our demand, price the slot, then remove it so
        # the background queue evolves as if we were marginal.
        base_state = self._sim.demand
        self._sim.reset(base_state + extra)
        price, _accepted, _demand = self._sim.step(arrivals)
        after = self._sim.demand
        self._sim.reset(max(0.0, after - extra))
        return price
