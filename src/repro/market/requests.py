"""Spot request records and their lifecycle states (Section 3.2).

A :class:`SpotRequest` tracks everything about one bid: the price, the
request kind (one-time vs persistent), the attached workload, and the
mutable runtime state the simulator advances slot by slot.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from ..core.types import BidKind
from ..errors import MarketError
from .billing import BillingPolicy, PerSlotBilling

__all__ = ["RequestState", "SpotRequest"]


class RequestState(enum.Enum):
    """Lifecycle states (Figure 2's new/pending/running/finished, refined)."""

    #: Waiting for the bid to beat the spot price (never ran, or persistent
    #: request knocked back after an interruption).
    PENDING = "pending"
    #: Launched and running in the current slot.
    RUNNING = "running"
    #: Work finished; terminal.
    COMPLETED = "completed"
    #: One-time request out-bid after launching; terminal.
    FAILED = "failed"
    #: Cancelled by the user; terminal.
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (
            RequestState.COMPLETED,
            RequestState.FAILED,
            RequestState.CANCELLED,
        )


@dataclass
class SpotRequest:
    """One spot-instance request plus its runtime bookkeeping.

    Parameters
    ----------
    request_id:
        Simulator-assigned identifier.
    bid_price:
        The user's bid, $/hour.
    kind:
        One-time or persistent (Section 3.2).
    work:
        Execution time the job still needs, in hours.  ``math.inf`` makes
        the request run until cancelled (used for master nodes, which are
        stopped by the MapReduce runner once the slaves finish).
    recovery_time:
        ``t_r`` — extra running time consumed after each resume from an
        interruption.
    submitted_slot:
        Slot index at which the request entered the market.
    label:
        Free-form tag for experiments ("master", "slave-3", ...).
    """

    request_id: int
    bid_price: float
    kind: BidKind
    work: float
    recovery_time: float = 0.0
    submitted_slot: int = 0
    label: str = ""
    billing: BillingPolicy = field(default_factory=PerSlotBilling)

    # -- runtime state -------------------------------------------------
    state: RequestState = RequestState.PENDING
    work_remaining: float = field(init=False)
    #: Recovery hours still owed before useful work resumes.
    pending_recovery: float = 0.0
    #: True once the request has launched at least once.
    ever_launched: bool = False
    interruptions: int = 0
    running_hours: float = 0.0
    idle_hours: float = 0.0
    recovery_hours: float = 0.0
    #: Absolute completion time in hours, set when the job finishes.
    completed_at: Optional[float] = None
    #: Absolute terminal time for failed/cancelled requests.
    closed_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bid_price < 0 or not math.isfinite(self.bid_price):
            raise MarketError(f"bid_price must be finite and >= 0, got {self.bid_price!r}")
        if not (self.work > 0):
            raise MarketError(f"work must be positive, got {self.work!r}")
        if self.recovery_time < 0 or not math.isfinite(self.recovery_time):
            raise MarketError(
                f"recovery_time must be finite and >= 0, got {self.recovery_time!r}"
            )
        if self.submitted_slot < 0:
            raise MarketError(
                f"submitted_slot must be non-negative, got {self.submitted_slot!r}"
            )
        self.work_remaining = float(self.work)

    # -- derived metrics -------------------------------------------------
    @property
    def is_active(self) -> bool:
        return not self.state.is_terminal

    @property
    def cost(self) -> float:
        """Dollar cost accumulated by this request's billing policy."""
        return self.billing.total

    def completion_time(self, slot_length: float) -> Optional[float]:
        """Wall-clock completion time (submission → completion), hours."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_slot * slot_length

    def charged_price_per_hour(self) -> float:
        """Mean $/hour paid over the request's running time (0 if never ran)."""
        if self.running_hours <= 0.0:
            return 0.0
        return self.cost / self.running_hours
