"""The spot-market simulator (the repo's EC2 substitute).

:class:`SpotMarket` runs the discrete-time market of Section 3.2: each
slot the price source announces a spot price, bids at or above it run,
running instances below it are terminated (one-time requests die,
persistent requests go back to pending), and billing accrues for running
time only.  The simulator is deliberately single-threaded and
deterministic: all randomness lives in the price source.

Typical use::

    market = SpotMarket(TracePriceSource(history))
    handle = market.submit(bid_price=0.034, work=1.0,
                           kind=BidKind.PERSISTENT, recovery_time=30/3600)
    market.run_until_done()
    outcome = market.outcome(handle)
    print(outcome.cost, outcome.completion_time)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..constants import DEFAULT_SLOT_HOURS
from ..core.types import BidKind, CompletionStats
from ..errors import MarketError
from .billing import BillingPolicy, PerSlotBilling
from .events import EventKind, EventLog, MarketEvent
from .instance import advance_request, cancel_request
from .outcomes import OutcomeStats
from .price_sources import PriceSource
from .requests import RequestState, SpotRequest

__all__ = ["JobOutcome", "SpotMarket"]

#: Default safety limit on simulated slots (one year of 5-minute slots).
_DEFAULT_MAX_SLOTS = 105_120


@dataclass(frozen=True)
class JobOutcome:
    """Immutable summary of one finished (or failed) request."""

    request_id: int
    label: str
    state: RequestState
    bid_price: float
    kind: BidKind
    cost: float
    #: Slot at which the request entered the market.
    submitted_slot: int
    #: Wall-clock from submission to completion (None if not completed).
    completion_time: Optional[float]
    running_time: float
    idle_time: float
    recovery_time_used: float
    interruptions: int

    @property
    def completed(self) -> bool:
        return self.state is RequestState.COMPLETED

    @property
    def charged_price_per_hour(self) -> float:
        if self.running_time <= 0.0:
            return 0.0
        return self.cost / self.running_time

    def to_stats(self) -> OutcomeStats:
        """Project onto the backend-independent
        :class:`~repro.market.outcomes.OutcomeStats` record (the type the
        fastpath oracle and the sweep kernels return)."""
        return OutcomeStats(
            completed=self.completed,
            cost=self.cost,
            completion_time=(
                self.completion_time if self.completion_time is not None else math.nan
            ),
            running_time=self.running_time,
            idle_time=self.idle_time,
            recovery_time_used=self.recovery_time_used,
            interruptions=self.interruptions,
        )

    def stats(self) -> CompletionStats:
        """Convert to the mutable :class:`CompletionStats` used by
        aggregate experiment reports."""
        return CompletionStats(
            completion_time=self.completion_time or math.nan,
            running_time=self.running_time,
            idle_time=self.idle_time,
            interruptions=self.interruptions,
            cost=self.cost,
            completed=self.completed,
        ).finalize()


class SpotMarket:
    """Discrete-time spot market running requests against a price source."""

    def __init__(
        self,
        price_source: PriceSource,
        *,
        slot_length: float = DEFAULT_SLOT_HOURS,
        billing_factory: Callable[[], BillingPolicy] = PerSlotBilling,
        record_events: bool = True,
    ):
        if slot_length <= 0:
            raise MarketError(f"slot_length must be positive, got {slot_length!r}")
        self._source = price_source
        self.slot_length = float(slot_length)
        self._billing_factory = billing_factory
        self.log = EventLog(enabled=record_events)
        self._requests: Dict[int, SpotRequest] = {}
        self._next_id = 1
        #: Index of the next slot to simulate.
        self.slot = 0
        #: Price set in the most recently simulated slot.
        self.current_price: Optional[float] = None

    # -- submission -----------------------------------------------------
    def submit(
        self,
        *,
        bid_price: float,
        work: float,
        kind: BidKind,
        recovery_time: float = 0.0,
        label: str = "",
    ) -> int:
        """Submit a spot request; returns its request id.

        The request is first considered in the *next* simulated slot.
        """
        request = SpotRequest(
            request_id=self._next_id,
            bid_price=bid_price,
            kind=kind,
            work=work,
            recovery_time=recovery_time,
            submitted_slot=self.slot,
            label=label,
            billing=self._billing_factory(),
        )
        self._requests[request.request_id] = request
        self._next_id += 1
        self.log.record(
            MarketEvent(
                kind=EventKind.REQUEST_SUBMITTED,
                slot=self.slot,
                time_hours=self.slot * self.slot_length,
                request_id=request.request_id,
                price=bid_price,
                detail=label,
            )
        )
        return request.request_id

    def cancel(self, request_id: int) -> None:
        """Cancel an active request (user-side termination)."""
        cancel_request(self._request(request_id), self.slot, self.slot_length, self.log)

    # -- simulation ------------------------------------------------------
    def step(self) -> float:
        """Simulate one slot; returns the slot's spot price."""
        price = self._source.next_price()
        if price < 0 or not math.isfinite(price):
            raise MarketError(f"price source produced invalid price {price!r}")
        self.current_price = price
        self.log.record(
            MarketEvent(
                kind=EventKind.PRICE_SET,
                slot=self.slot,
                time_hours=self.slot * self.slot_length,
                price=price,
            )
        )
        for request in self._requests.values():
            if request.is_active:
                advance_request(request, price, self.slot, self.slot_length, self.log)
        self.slot += 1
        return price

    def run_until_done(self, *, max_slots: int = _DEFAULT_MAX_SLOTS) -> int:
        """Step until every request reaches a terminal state.

        Returns the number of slots simulated.  Raises
        :class:`MarketError` if ``max_slots`` elapse with work pending or
        the price source runs dry first.
        """
        if max_slots < 1:
            raise MarketError(f"max_slots must be >= 1, got {max_slots!r}")
        steps = 0
        while self.has_active_requests():
            remaining = self._source.remaining_slots()
            if remaining is not None and remaining <= 0:
                raise MarketError(
                    f"price source exhausted after {steps} slots with "
                    f"{self.active_request_count()} request(s) still active"
                )
            if steps >= max_slots:
                raise MarketError(
                    f"requests still active after max_slots={max_slots} slots"
                )
            self.step()
            steps += 1
        return steps

    # -- inspection -------------------------------------------------------
    def _request(self, request_id: int) -> SpotRequest:
        try:
            return self._requests[request_id]
        except KeyError:
            raise MarketError(f"unknown request id {request_id!r}")

    def request_state(self, request_id: int) -> RequestState:
        return self._request(request_id).state

    def has_active_requests(self) -> bool:
        return any(r.is_active for r in self._requests.values())

    def active_request_count(self) -> int:
        return sum(1 for r in self._requests.values() if r.is_active)

    def outcome(self, request_id: int) -> JobOutcome:
        """Summarize a request; valid at any point, terminal or not."""
        r = self._request(request_id)
        return JobOutcome(
            request_id=r.request_id,
            label=r.label,
            state=r.state,
            bid_price=r.bid_price,
            kind=r.kind,
            cost=r.cost,
            submitted_slot=r.submitted_slot,
            completion_time=r.completion_time(self.slot_length),
            running_time=r.running_hours,
            idle_time=r.idle_hours,
            recovery_time_used=r.recovery_hours,
            interruptions=r.interruptions,
        )

    def outcomes(self) -> List[JobOutcome]:
        """Outcomes for every request, in submission order."""
        return [self.outcome(rid) for rid in sorted(self._requests)]

    @property
    def now_hours(self) -> float:
        """Absolute market time at the next slot boundary."""
        return self.slot * self.slot_length
