"""The Section 4 cloud-provider model: pricing, queueing, equilibrium,
stability, and fitting against observed spot prices."""

from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    ExponentialArrivals,
    ParetoArrivals,
)
from .equilibrium import (
    EquilibriumPriceModel,
    arrivals_from_price,
    lambda_min_for_floor,
    pareto_model_for_floor,
    price_from_arrivals,
)
from .fitting import (
    FitResult,
    fit_both_families,
    fit_exponential,
    fit_pareto,
    histogram_pdf,
)
from .lyapunov import DriftBound, drift_bound, empirical_drift, empirical_drift_vs_queue
from .pricing import (
    accepted_bids,
    optimal_spot_price,
    optimal_spot_price_numeric,
    revenue_objective,
    stationarity_residual,
)
from .queue import (
    ElasticProviderSimulation,
    ProviderSimulation,
    ProviderTrace,
    queue_step,
)

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "ExponentialArrivals",
    "ParetoArrivals",
    "EquilibriumPriceModel",
    "arrivals_from_price",
    "lambda_min_for_floor",
    "pareto_model_for_floor",
    "price_from_arrivals",
    "FitResult",
    "fit_both_families",
    "fit_exponential",
    "fit_pareto",
    "histogram_pdf",
    "DriftBound",
    "drift_bound",
    "empirical_drift",
    "empirical_drift_vs_queue",
    "accepted_bids",
    "optimal_spot_price",
    "optimal_spot_price_numeric",
    "revenue_objective",
    "stationarity_residual",
    "ElasticProviderSimulation",
    "ProviderSimulation",
    "ProviderTrace",
    "queue_step",
]
