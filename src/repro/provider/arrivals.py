"""Bid-arrival processes Λ(t) (Section 4.2–4.3).

The provider model assumes i.i.d. per-slot arrivals with finite mean λ and
variance σ (Prop. 1's hypotheses).  The paper fits two families to the
observed spot prices through Prop. 3 — Pareto and exponential — and notes
any other family could be used the same way; the abstract base class here
is that extension point.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from ..errors import DistributionError

__all__ = [
    "ArrivalProcess",
    "ParetoArrivals",
    "ExponentialArrivals",
    "DeterministicArrivals",
]


class ArrivalProcess(abc.ABC):
    """An i.i.d. non-negative arrival distribution ``f_Λ``."""

    #: Inclusive lower edge of the support.
    lower: float

    @abc.abstractmethod
    def pdf(self, value: float) -> float:
        """Density ``f_Λ(value)`` (0 outside the support)."""

    @abc.abstractmethod
    def cdf(self, value: float) -> float:
        """Distribution function ``F_Λ(value)``."""

    @abc.abstractmethod
    def ppf(self, quantile: float) -> float:
        """Quantile function (inverse CDF)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected arrivals per slot, λ.  May be ``inf``."""

    @abc.abstractmethod
    def variance(self) -> float:
        """Arrival variance, σ.  May be ``inf``."""

    @abc.abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` i.i.d. arrival counts."""

    def is_stable(self) -> bool:
        """Prop. 1 requires finite mean and variance."""
        return math.isfinite(self.mean()) and math.isfinite(self.variance())

    def pdf_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`pdf`; subclasses may override for speed."""
        return np.asarray([self.pdf(float(v)) for v in np.asarray(values)])

    def cdf_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cdf`; subclasses may override for speed."""
        return np.asarray([self.cdf(float(v)) for v in np.asarray(values)])


class ParetoArrivals(ArrivalProcess):
    """Pareto arrivals: ``f_Λ(x) = α·x_min^α / x^(α+1)`` for ``x >= x_min``.

    The paper's Figure 3 fits use α between 5 and 9.5; the minimum
    ``x_min`` is tied to the minimum spot price through
    ``Λ_min = θ(β/(π̄ − 2π_min) − 1)`` (Section 4.3).
    """

    def __init__(self, alpha: float, minimum: float):
        if not alpha > 0:
            raise DistributionError(f"alpha must be positive, got {alpha!r}")
        if not minimum > 0:
            raise DistributionError(f"minimum must be positive, got {minimum!r}")
        self.alpha = float(alpha)
        self.minimum = float(minimum)
        self.lower = self.minimum

    def pdf(self, value: float) -> float:
        if value < self.minimum:
            return 0.0
        return self.alpha * self.minimum**self.alpha / value ** (self.alpha + 1.0)

    def pdf_array(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        out = np.zeros_like(values)
        mask = values >= self.minimum
        out[mask] = (
            self.alpha * self.minimum**self.alpha / values[mask] ** (self.alpha + 1.0)
        )
        return out

    def cdf(self, value: float) -> float:
        if value <= self.minimum:
            return 0.0
        return 1.0 - (self.minimum / value) ** self.alpha

    def cdf_array(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        out = np.zeros_like(values)
        mask = values > self.minimum
        out[mask] = 1.0 - (self.minimum / values[mask]) ** self.alpha
        return out

    def ppf(self, quantile: float) -> float:
        if math.isnan(quantile):
            raise DistributionError("quantile must not be NaN")
        if quantile <= 0.0:
            return self.minimum
        if quantile >= 1.0:
            return math.inf
        return self.minimum * (1.0 - quantile) ** (-1.0 / self.alpha)

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.minimum / (self.alpha - 1.0)

    def variance(self) -> float:
        if self.alpha <= 2.0:
            return math.inf
        a, m = self.alpha, self.minimum
        return m * m * a / ((a - 1.0) ** 2 * (a - 2.0))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        u = rng.uniform(0.0, 1.0, size=size)
        return self.minimum * (1.0 - u) ** (-1.0 / self.alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParetoArrivals(alpha={self.alpha:.4g}, minimum={self.minimum:.4g})"


class ExponentialArrivals(ArrivalProcess):
    """Exponential arrivals: ``f_Λ(x) = (1/η)·exp(−x/η)`` for ``x >= 0``."""

    def __init__(self, eta: float):
        if not eta > 0:
            raise DistributionError(f"eta must be positive, got {eta!r}")
        self.eta = float(eta)
        self.lower = 0.0

    def pdf(self, value: float) -> float:
        if value < 0.0:
            return 0.0
        return math.exp(-value / self.eta) / self.eta

    def pdf_array(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        out = np.zeros_like(values)
        mask = values >= 0.0
        out[mask] = np.exp(-values[mask] / self.eta) / self.eta
        return out

    def cdf(self, value: float) -> float:
        if value <= 0.0:
            return 0.0
        return 1.0 - math.exp(-value / self.eta)

    def ppf(self, quantile: float) -> float:
        if math.isnan(quantile):
            raise DistributionError("quantile must not be NaN")
        if quantile <= 0.0:
            return 0.0
        if quantile >= 1.0:
            return math.inf
        return -self.eta * math.log(1.0 - quantile)

    def mean(self) -> float:
        return self.eta

    def variance(self) -> float:
        return self.eta * self.eta

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.exponential(self.eta, size=size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialArrivals(eta={self.eta:.4g})"


class DeterministicArrivals(ArrivalProcess):
    """Constant arrivals — zero variance; drives the queue to equilibrium.

    Useful for unit tests of Prop. 2 (equilibrium) because the spot price
    is then the deterministic ``h(Λ)``.
    """

    def __init__(self, value: float):
        if not value >= 0:
            raise DistributionError(f"value must be non-negative, got {value!r}")
        self.value = float(value)
        self.lower = self.value

    def pdf(self, value: float) -> float:
        return math.inf if value == self.value else 0.0

    def cdf(self, value: float) -> float:
        return 1.0 if value >= self.value else 0.0

    def ppf(self, quantile: float) -> float:
        if math.isnan(quantile):
            raise DistributionError("quantile must not be NaN")
        return self.value

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(size, self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeterministicArrivals(value={self.value:.4g})"
