"""Equilibrium spot prices (Section 4.2, Props. 2–3).

At the queue equilibrium ``L(t+1) = L(t)``, the optimal spot price is a
deterministic, monotonically increasing function of the slot's arrivals:

    π*(t) = h(Λ(t)) = ½·(π̄ − β/(1 + Λ(t)/θ))            (eq. 6)
    h⁻¹(π) = θ·(β/(π̄ − 2π) − 1)                          (Prop. 3)

so i.i.d. arrivals induce i.i.d. spot prices whose distribution is the
push-forward of ``f_Λ`` through ``h``.  :class:`EquilibriumPriceModel`
implements the full :class:`~repro.core.distributions.PriceDistribution`
interface for that push-forward, with the price floor ``π_min`` applied
exactly as eq. 3's ``max(π_min, ·)`` does — arrivals too small to lift
the price above the floor produce an atom at ``π_min``.

The PDF is available in both conventions (see DESIGN.md):

* ``jacobian=False`` (paper's eq. 7): ``f_π(π) ≜ f_Λ(h⁻¹(π))``;
* ``jacobian=True`` (exact change of variables):
  ``f_π(π) = f_Λ(h⁻¹(π)) · 2θβ/(π̄ − 2π)²``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import integrate

from ..core.distributions import PriceDistribution
from ..errors import DistributionError
from .arrivals import ArrivalProcess, ParetoArrivals
from .pricing import validate_price_band

__all__ = [
    "price_from_arrivals",
    "arrivals_from_price",
    "lambda_min_for_floor",
    "EquilibriumPriceModel",
    "pareto_model_for_floor",
    "pareto_model_with_atom",
]

#: Fixed Gauss–Legendre rule used by the vectorized partial expectation.
_GL_NODES, _GL_WEIGHTS = np.polynomial.legendre.leggauss(24)


def price_from_arrivals(
    arrivals: float, beta: float, theta: float, pi_bar: float
) -> float:
    """``h(Λ) = ½(π̄ − β/(1 + Λ/θ))`` (eq. 6), *before* the floor clip."""
    if theta <= 0:
        raise DistributionError(f"theta must be positive, got {theta!r}")
    if arrivals < 0:
        raise ValueError(f"arrivals must be non-negative, got {arrivals!r}")
    return 0.5 * (pi_bar - beta / (1.0 + arrivals / theta))


def arrivals_from_price(
    price: float, beta: float, theta: float, pi_bar: float
) -> float:
    """``h⁻¹(π) = θ(β/(π̄ − 2π) − 1)`` (Prop. 3).

    Defined for ``π < π̄/2``; clamped at 0 when the price is so low the
    formula would imply negative arrivals.
    """
    if theta <= 0:
        raise DistributionError(f"theta must be positive, got {theta!r}")
    if price >= pi_bar / 2.0:
        raise DistributionError(
            f"equilibrium prices lie below pi_bar/2 = {pi_bar / 2.0:.6g}, "
            f"got {price!r}"
        )
    return max(0.0, theta * (beta / (pi_bar - 2.0 * price) - 1.0))


def lambda_min_for_floor(
    pi_min: float, beta: float, theta: float, pi_bar: float
) -> float:
    """``Λ_min = θ(β/(π̄ − 2π_min) − 1)`` — the arrival level at which the
    equilibrium price first rises above the floor (Section 4.3)."""
    validate_price_band(pi_bar, pi_min)
    return arrivals_from_price(pi_min, beta, theta, pi_bar)


class EquilibriumPriceModel(PriceDistribution):
    """The spot-price distribution induced by arrivals at equilibrium.

    Parameters
    ----------
    arrivals:
        The per-slot arrival distribution ``f_Λ``.
    beta, theta:
        The provider's utilization weight and per-slot job-completion
        fraction (eq. 1, eq. 4).
    pi_bar:
        The on-demand price ``π̄`` ($/hour).
    pi_min:
        The price floor ``π_min``; eq. 3 clips prices here, creating an
        atom when the arrival distribution has mass below ``Λ_min``.
    """

    def __init__(
        self,
        arrivals: ArrivalProcess,
        *,
        beta: float,
        theta: float,
        pi_bar: float,
        pi_min: float,
    ):
        validate_price_band(pi_bar, pi_min)
        if beta <= 0:
            raise DistributionError(f"beta must be positive, got {beta!r}")
        if theta <= 0:
            raise DistributionError(f"theta must be positive, got {theta!r}")
        if pi_min >= pi_bar / 2.0:
            raise DistributionError(
                f"the floor pi_min={pi_min!r} must lie below the equilibrium "
                f"ceiling pi_bar/2={pi_bar / 2.0!r}"
            )
        self.arrivals = arrivals
        self.beta = float(beta)
        self.theta = float(theta)
        self.pi_bar = float(pi_bar)
        self.lower = float(pi_min)
        #: Equilibrium prices approach but never reach π̄/2 as Λ → ∞.
        self.upper = self.pi_bar / 2.0
        #: Arrival level below which the price floor binds.
        self.lambda_floor = lambda_min_for_floor(pi_min, beta, theta, pi_bar)
        #: Probability mass clipped onto the floor price.
        self.floor_mass = self.arrivals.cdf(self.lambda_floor)
        self._check_support()

    # -- mapping -------------------------------------------------------
    def h(self, arrivals_value: float) -> float:
        """Floor-clipped equilibrium price for a given arrival level."""
        raw = price_from_arrivals(arrivals_value, self.beta, self.theta, self.pi_bar)
        return max(self.lower, raw)

    def h_inverse(self, price: float) -> float:
        """Arrival level mapping to ``price`` (for ``price`` above the floor)."""
        return arrivals_from_price(price, self.beta, self.theta, self.pi_bar)

    # -- PriceDistribution interface ------------------------------------
    def cdf(self, price: float) -> float:
        if price < self.lower:
            return 0.0
        if price >= self.upper:
            return 1.0
        return self.arrivals.cdf(self.h_inverse(price))

    def pdf(self, price: float, *, jacobian: bool = True) -> float:
        """Density above the floor (the floor atom carries ``floor_mass``).

        ``jacobian=False`` reproduces the paper's eq. 7 exactly.
        """
        if price <= self.lower or price >= self.upper:
            return 0.0
        lam = self.h_inverse(price)
        base = self.arrivals.pdf(lam)
        if not jacobian:
            return base
        return base * 2.0 * self.theta * self.beta / (self.pi_bar - 2.0 * price) ** 2

    def ppf(self, quantile: float) -> float:
        if math.isnan(quantile):
            raise DistributionError("quantile must not be NaN")
        if quantile <= self.floor_mass:
            return self.lower
        if quantile >= 1.0:
            return self.upper
        lam = self.arrivals.ppf(quantile)
        return self.h(lam)

    def cdf_array(self, prices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cdf` (used by the candidate-scan optimizers)."""
        prices = np.asarray(prices, dtype=float)
        out = np.empty(prices.shape)
        flat = prices.reshape(-1)
        res = np.empty(flat.shape)
        below = flat < self.lower
        above = flat >= self.upper
        mid = ~below & ~above
        res[below] = 0.0
        res[above] = 1.0
        if mid.any():
            lam = np.maximum(
                0.0,
                self.theta * (self.beta / (self.pi_bar - 2.0 * flat[mid]) - 1.0),
            )
            res[mid] = self.arrivals.cdf_array(lam)
        out.reshape(-1)[:] = res
        return out

    def _price_space_integrand(self, x: np.ndarray) -> np.ndarray:
        """``x·f_π(x)`` (jacobian convention) — the partial-expectation
        integrand after the change of variables ``x = h(Λ)``."""
        lam = np.maximum(
            0.0, self.theta * (self.beta / (self.pi_bar - 2.0 * x) - 1.0)
        )
        jac = 2.0 * self.theta * self.beta / (self.pi_bar - 2.0 * x) ** 2
        return x * self.arrivals.pdf_array(lam) * jac

    def partial_expectation_array(self, prices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`partial_expectation`.

        One composite Gauss–Legendre pass over the price support replaces
        a per-price adaptive ``quad`` from the support bottom — the
        difference between O(n) and O(n²) integrand work when scanning a
        candidate grid.  Values agree with the scalar method to quadrature
        accuracy (~1e-10 relative), not bitwise.
        """
        prices = np.asarray(prices, dtype=float)
        flat = prices.reshape(-1)
        res = np.full(flat.shape, self.lower * self.floor_mass)
        res[flat < self.lower] = 0.0
        hi = np.minimum(flat, self.upper)
        active = (flat >= self.lower) & (hi > self.lower)
        if active.any():
            targets = np.unique(hi[active])
            # Segment edges: every query point, refined with a uniform
            # grid so wide gaps between queries stay well resolved.
            edges = np.union1d(
                targets, np.linspace(self.lower, float(targets.max()), 257)
            )
            edges = edges[edges >= self.lower]
            if edges[0] > self.lower:
                edges = np.concatenate([[self.lower], edges])
            a, b = edges[:-1], edges[1:]
            half = 0.5 * (b - a)
            mid = 0.5 * (a + b)
            x = mid[:, None] + half[:, None] * _GL_NODES[None, :]
            w = half[:, None] * _GL_WEIGHTS[None, :]
            segments = (self._price_space_integrand(x.reshape(-1)).reshape(x.shape) * w).sum(
                axis=1
            )
            cumulative = np.concatenate([[0.0], np.cumsum(segments)])
            integral_at = cumulative[np.searchsorted(edges, targets)]
            lookup = np.searchsorted(targets, hi[active])
            res[active] = self.lower * self.floor_mass + integral_at[lookup]
        return res.reshape(prices.shape)

    def partial_expectation(self, price: float) -> float:
        if price < self.lower:
            return 0.0
        hi = min(price, self.upper)
        total = self.lower * self.floor_mass
        if hi <= self.lower:
            return total
        lam_lo = max(self.lambda_floor, self.arrivals.lower)
        if hi >= self.upper:
            lam_hi = math.inf
        else:
            lam_hi = self.h_inverse(hi)
        if lam_hi <= lam_lo:
            return total

        def integrand(lam: float) -> float:
            return self.h(lam) * self.arrivals.pdf(lam)

        if math.isinf(lam_hi):
            value, _err = integrate.quad(integrand, lam_lo, math.inf, limit=400)
        else:
            value, _err = integrate.quad(integrand, lam_lo, lam_hi, limit=400)
        return total + float(value)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        lam = self.arrivals.sample(size, rng)
        raw = 0.5 * (self.pi_bar - self.beta / (1.0 + lam / self.theta))
        return np.maximum(self.lower, raw)


def pareto_model_for_floor(
    *,
    beta: float,
    theta: float,
    alpha: float,
    pi_bar: float,
    pi_min: float,
) -> EquilibriumPriceModel:
    """Build the Pareto equilibrium model of Section 4.3.

    The Pareto minimum is tied to the price floor via
    ``Λ_min = θ(β/(π̄ − 2π_min) − 1)``, so the generated prices have
    support exactly ``[π_min, π̄/2)`` with no floor atom — the
    configuration the paper fits to the EC2 histories (Figure 3).
    """
    lam_min = lambda_min_for_floor(pi_min, beta, theta, pi_bar)
    if lam_min <= 0.0:
        raise DistributionError(
            f"beta={beta!r} is too small relative to the band "
            f"[{pi_min!r}, {pi_bar!r}]: Λ_min = θ(β/(π̄−2π_min) − 1) must be "
            "positive for a Pareto arrival model"
        )
    arrivals = ParetoArrivals(alpha=alpha, minimum=lam_min)
    return EquilibriumPriceModel(
        arrivals, beta=beta, theta=theta, pi_bar=pi_bar, pi_min=pi_min
    )


def pareto_model_with_atom(
    *,
    beta: float,
    theta: float,
    alpha: float,
    pi_bar: float,
    pi_min: float,
    floor_mass: float,
) -> EquilibriumPriceModel:
    """Pareto equilibrium model with an explicit price-floor atom.

    Real EC2 spot prices spend a large fraction of slots parked *at* the
    minimum price, with a heavy-tailed continuum of excursions above it
    (the knee shape of Figure 3).  Eq. 3's ``max(π_min, ·)`` produces
    exactly this when arrivals have mass below ``Λ_min``: choosing the
    Pareto minimum ``Λ_m = Λ_min·(1 − q)^{1/α}`` puts probability ``q`` on
    the floor price and a Pareto tail above it.

    Parameters
    ----------
    floor_mass:
        ``q`` — probability that a slot's price equals ``π_min``
        (0 recovers :func:`pareto_model_for_floor`).
    """
    if not 0.0 <= floor_mass < 1.0:
        raise DistributionError(
            f"floor_mass must be in [0, 1), got {floor_mass!r}"
        )
    lam_floor = lambda_min_for_floor(pi_min, beta, theta, pi_bar)
    if lam_floor <= 0.0:
        raise DistributionError(
            f"beta={beta!r} is too small relative to the band "
            f"[{pi_min!r}, {pi_bar!r}]: Λ_min must be positive"
        )
    lam_min = lam_floor * (1.0 - floor_mass) ** (1.0 / alpha)
    arrivals = ParetoArrivals(alpha=alpha, minimum=lam_min)
    return EquilibriumPriceModel(
        arrivals, beta=beta, theta=theta, pi_bar=pi_bar, pi_min=pi_min
    )
