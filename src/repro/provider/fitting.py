"""Fitting the provider model to observed spot prices (Section 4.3, Fig. 3).

The paper estimates the spot-price PDF by pushing Pareto and exponential
arrival distributions through Prop. 3 and choosing the parameters that
minimize the least-squares divergence from the empirical price histogram.
This module reproduces that procedure.

Identifiability note (documented, not in the paper): through eq. 6/7 the
price distribution depends on ``θ`` only via the ratios ``Λ_min/θ`` and
``η/θ``, so ``θ`` cannot be identified from prices alone.  We therefore
fix ``θ`` a priori (the paper uses 0.02 for every instance type) and fit
the remaining parameters, exactly as Figure 3's caption reports a single
``θ`` across panels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..errors import FittingError
from .arrivals import ExponentialArrivals, ParetoArrivals
from .equilibrium import EquilibriumPriceModel, lambda_min_for_floor

__all__ = [
    "PriceHistogram",
    "histogram_pdf",
    "FitResult",
    "model_density",
    "fit_pareto",
    "fit_exponential",
    "fit_both_families",
]

#: Default θ (per-slot completion fraction) used by every Figure 3 panel.
DEFAULT_THETA = 0.02

#: Default number of histogram bins for the empirical PDF.
DEFAULT_BINS = 40


@dataclass(frozen=True)
class PriceHistogram:
    """An empirical price PDF: bin centers, densities and bin widths."""

    centers: np.ndarray
    density: np.ndarray
    widths: np.ndarray

    @property
    def masses(self) -> np.ndarray:
        """Per-bin probability masses (density × width)."""
        return self.density * self.widths


def histogram_pdf(prices: Sequence[float], bins: int = DEFAULT_BINS) -> PriceHistogram:
    """Histogram-estimate the spot-price PDF (the blue bars of Figure 3)."""
    arr = np.asarray(prices, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise FittingError("prices must be a non-empty 1-D sequence")
    if bins < 2:
        raise FittingError(f"need at least 2 bins, got {bins!r}")
    density, edges = np.histogram(arr, bins=bins, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    widths = np.diff(edges)
    return PriceHistogram(centers=centers, density=density, widths=widths)


@dataclass(frozen=True)
class FitResult:
    """One fitted arrival family for one instance type (a Figure 3 curve)."""

    family: str  #: "pareto" or "exponential"
    beta: float
    theta: float
    #: Pareto tail index α, or None for the exponential family.
    alpha: Optional[float]
    #: Exponential scale η, or None for the Pareto family.
    eta: Optional[float]
    pi_bar: float
    pi_min: float
    #: Fitted probability mass parked at the floor price.  For the
    #: exponential family this is implied by η rather than fitted freely.
    floor_mass: float
    #: Mean squared error between fitted and empirical densities.
    mse_density: float
    #: Mean squared error between fitted and empirical per-bin masses —
    #: the scale on which the paper reports "MSE < 1e-6".
    mse_mass: float

    def model(self) -> EquilibriumPriceModel:
        """Instantiate the fitted equilibrium price model."""
        lam_floor = lambda_min_for_floor(self.pi_min, self.beta, self.theta, self.pi_bar)
        if self.family == "pareto":
            alpha = float(self.alpha)
            lam_min = lam_floor * (1.0 - self.floor_mass) ** (1.0 / alpha)
            arrivals = ParetoArrivals(alpha=alpha, minimum=lam_min)
        elif self.family == "exponential":
            arrivals = ExponentialArrivals(eta=float(self.eta))
        else:  # pragma: no cover - enum-like guard
            raise FittingError(f"unknown family {self.family!r}")
        return EquilibriumPriceModel(
            arrivals,
            beta=self.beta,
            theta=self.theta,
            pi_bar=self.pi_bar,
            pi_min=self.pi_min,
        )


_trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 1.x/2.x compat


def _normalized_curve(raw: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Scale a non-negative curve to integrate to 1 over the bin range."""
    area = float(_trapezoid(raw, centers))
    if area <= 0.0 or not math.isfinite(area):
        return np.full_like(raw, np.inf)
    return raw / area


def model_density(
    centers: np.ndarray,
    widths: np.ndarray,
    *,
    family: str,
    beta: float,
    theta: float,
    shape: float,
    pi_bar: float,
    pi_min: float,
    floor_mass: float = 0.0,
    jacobian: bool = False,
) -> np.ndarray:
    """Evaluate the Prop. 3 model PDF on histogram bin centers.

    ``shape`` is α for the Pareto family and η for the exponential.  The
    probability mass parked at the floor price (``floor_mass`` for the
    Pareto family; implied by η and the floor for the exponential) is
    spread over the bin containing ``pi_min`` so the curve is comparable
    with a histogram density.  With ``jacobian=False`` (the paper's eq. 7
    convention) the continuum ``f_Λ(h⁻¹(π))`` is normalized numerically
    over the bin range so least squares against a true density is
    scale-consistent.
    """
    centers = np.asarray(centers, dtype=float)
    widths = np.asarray(widths, dtype=float)
    half = pi_bar / 2.0
    lam_floor = theta * (beta / (pi_bar - 2.0 * pi_min) - 1.0)
    if lam_floor <= 0.0:
        return np.full_like(centers, np.inf)

    if family == "pareto":
        if not 0.0 <= floor_mass < 1.0:
            return np.full_like(centers, np.inf)
        lam_min = lam_floor * (1.0 - floor_mass) ** (1.0 / shape)
        arrivals = ParetoArrivals(alpha=shape, minimum=lam_min)
        atom = floor_mass
    elif family == "exponential":
        arrivals = ExponentialArrivals(eta=shape)
        # The floor clip puts F_Λ(Λ_min) of mass on π_min automatically.
        atom = arrivals.cdf(lam_floor)
    else:
        raise FittingError(f"unknown family {family!r}")

    with np.errstate(divide="ignore", invalid="ignore"):
        lam = theta * (beta / (pi_bar - 2.0 * centers) - 1.0)
    lam = np.where(centers >= half, np.inf, lam)
    lam = np.maximum(lam, 0.0)
    # Bins at or below the floor hold the atom, not continuum density.
    floor_bin = (centers - widths / 2.0 <= pi_min) & (pi_min < centers + widths / 2.0)
    raw = arrivals.pdf_array(lam)
    raw[lam <= lam_floor] = 0.0
    if jacobian:
        with np.errstate(divide="ignore"):
            jac = 2.0 * theta * beta / (pi_bar - 2.0 * centers) ** 2
        raw = raw * np.where(centers >= half, 0.0, jac)
    raw = np.where(np.isfinite(raw), raw, 0.0)
    with np.errstate(invalid="ignore"):
        curve = _normalized_curve(raw, centers) * (1.0 - atom)
        if floor_bin.any():
            curve = curve + np.where(floor_bin, atom / widths, 0.0)
    return curve


def _fit_family(
    hist: PriceHistogram,
    *,
    family: str,
    pi_bar: float,
    pi_min: float,
    theta: float,
    jacobian: bool,
    beta_fixed: Optional[float],
    starts: Sequence[Tuple[float, ...]],
    bounds: Tuple[np.ndarray, np.ndarray],
) -> FitResult:
    target = hist.density

    def unpack(x: np.ndarray):
        if family == "pareto":
            if beta_fixed is None:
                return float(x[0]), float(x[1]), float(x[2])
            return beta_fixed, float(x[0]), float(x[1])
        # exponential: floor mass is implied, not a free parameter
        if beta_fixed is None:
            return float(x[0]), float(x[1]), 0.0
        return beta_fixed, float(x[0]), 0.0

    def residuals(x: np.ndarray) -> np.ndarray:
        beta, shape, q = unpack(x)
        curve = model_density(
            hist.centers,
            hist.widths,
            family=family,
            beta=beta,
            theta=theta,
            shape=shape,
            pi_bar=pi_bar,
            pi_min=pi_min,
            floor_mass=q,
            jacobian=jacobian,
        )
        if not np.all(np.isfinite(curve)):
            return np.full_like(target, 1e6)
        return curve - target

    best = None
    for start in starts:
        try:
            sol = optimize.least_squares(
                residuals, np.asarray(start, dtype=float), bounds=bounds, xtol=1e-12
            )
        except ValueError:
            continue
        if best is None or sol.cost < best.cost:
            best = sol
    if best is None:
        raise FittingError(f"{family} fit failed from every starting point")

    beta, shape, q = unpack(best.x)
    fitted = model_density(
        hist.centers,
        hist.widths,
        family=family,
        beta=beta,
        theta=theta,
        shape=shape,
        pi_bar=pi_bar,
        pi_min=pi_min,
        floor_mass=q,
        jacobian=jacobian,
    )
    if family == "exponential":
        lam_floor = theta * (beta / (pi_bar - 2.0 * pi_min) - 1.0)
        q = float(ExponentialArrivals(eta=shape).cdf(lam_floor))
    err = fitted - hist.density
    mse_density = float(np.mean(err**2))
    mse_mass = float(np.mean((err * hist.widths) ** 2))
    return FitResult(
        family=family,
        beta=beta,
        theta=theta,
        alpha=shape if family == "pareto" else None,
        eta=shape if family == "exponential" else None,
        pi_bar=pi_bar,
        pi_min=pi_min,
        floor_mass=q,
        mse_density=mse_density,
        mse_mass=mse_mass,
    )


def fit_pareto(
    prices: Sequence[float],
    pi_bar: float,
    *,
    theta: float = DEFAULT_THETA,
    bins: int = DEFAULT_BINS,
    jacobian: bool = False,
) -> FitResult:
    """Fit the Pareto-arrival model to observed prices (Figure 3's red line).

    Free parameters: (β, α, floor mass).  ``π_min`` is pinned to the
    minimum observed price (the paper ties ``Λ_min`` to it); ``θ`` is
    fixed (see module docstring).
    """
    arr = np.asarray(prices, dtype=float)
    hist = histogram_pdf(arr, bins=bins)
    pi_min = float(arr.min())
    if pi_min >= pi_bar / 2.0:
        raise FittingError(
            f"minimum observed price {pi_min:.6g} is not below pi_bar/2 = "
            f"{pi_bar / 2.0:.6g}; the equilibrium model cannot apply"
        )
    # Λ_min > 0 requires β > π̄ − 2π_min.
    beta_lo = (pi_bar - 2.0 * pi_min) * (1.0 + 1e-6)
    beta_hi = max(10.0 * pi_bar, 5.0 * beta_lo)
    # Seed the floor mass with the exact fraction of floor-priced slots.
    q_seed = float(np.mean(arr <= pi_min * (1.0 + 1e-9)))
    q_seed = min(max(q_seed, 0.01), 0.94)
    bounds = (
        np.asarray([beta_lo, 1.05, 0.0]),
        np.asarray([beta_hi, 60.0, 0.95]),
    )
    starts = [
        (2.0 * beta_lo, 5.0, q_seed),
        (1.2 * beta_lo, 2.0, q_seed),
        (0.5 * (beta_lo + beta_hi), 10.0, q_seed),
        (1.05 * beta_lo, 8.0, 0.3),
    ]
    return _fit_family(
        hist,
        family="pareto",
        pi_bar=pi_bar,
        pi_min=pi_min,
        theta=theta,
        jacobian=jacobian,
        beta_fixed=None,
        starts=starts,
        bounds=bounds,
    )


def fit_exponential(
    prices: Sequence[float],
    pi_bar: float,
    *,
    beta: float,
    theta: float = DEFAULT_THETA,
    bins: int = DEFAULT_BINS,
    jacobian: bool = False,
) -> FitResult:
    """Fit the exponential-arrival model with (β, θ) held fixed.

    The paper shares (β, θ) between the two families for each instance
    type, so β comes from the Pareto fit and only η is free here.
    """
    arr = np.asarray(prices, dtype=float)
    hist = histogram_pdf(arr, bins=bins)
    pi_min = float(arr.min())
    bounds = (np.asarray([1e-9]), np.asarray([10.0]))
    # Seed η near the arrival scale spanned by the observed price range.
    lam_hi = theta * (beta / max(pi_bar - 2.0 * float(arr.max()), 1e-9) - 1.0)
    seed = max(lam_hi / 5.0, 1e-6)
    starts = [(seed,), (seed * 10.0,), (seed / 10.0,), (1e-4,)]
    return _fit_family(
        hist,
        family="exponential",
        pi_bar=pi_bar,
        pi_min=pi_min,
        theta=theta,
        jacobian=jacobian,
        beta_fixed=beta,
        starts=starts,
        bounds=bounds,
    )


def fit_both_families(
    prices: Sequence[float],
    pi_bar: float,
    *,
    theta: float = DEFAULT_THETA,
    bins: int = DEFAULT_BINS,
    jacobian: bool = False,
) -> Tuple[FitResult, FitResult]:
    """Figure 3's full per-panel procedure: Pareto first, then exponential
    sharing the Pareto fit's (β, θ).  Returns ``(pareto, exponential)``."""
    pareto = fit_pareto(prices, pi_bar, theta=theta, bins=bins, jacobian=jacobian)
    exponential = fit_exponential(
        prices, pi_bar, beta=pareto.beta, theta=theta, bins=bins, jacobian=jacobian
    )
    return pareto, exponential
