"""Lyapunov stability of the bid queue (Section 4.2, Prop. 1).

Prop. 1 bounds the conditional drift of the quadratic Lyapunov function
``V(L) = L²/2`` when prices follow eq. 3:

    E[Δ(t) | L(t)] <= B − ε·L(t)

with

    B = (π̄ − π_min)·λ² / (2·θ·π_min) + σ/2
    ε = θ·λ·π̄ / (4·(π̄ − π_min))

(λ, σ: arrival mean and variance).  Negative drift for ``L > B/ε`` keeps
the time-averaged queue uniformly bounded — the provider is never swamped
by re-submitted persistent bids.  This module computes the bound and an
empirical drift estimator used to validate it against simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .arrivals import ArrivalProcess
from .pricing import validate_price_band

__all__ = ["DriftBound", "drift_bound", "empirical_drift", "empirical_drift_vs_queue"]


@dataclass(frozen=True)
class DriftBound:
    """The constants of Prop. 1's drift inequality ``E[Δ|L] <= B − ε·L``."""

    constant: float  #: B
    slope: float  #: ε

    def evaluate(self, demand: float) -> float:
        """The drift upper bound at queue length ``demand``."""
        return self.constant - self.slope * demand

    @property
    def stable_queue_level(self) -> float:
        """``B/ε`` — above this queue length the expected drift is negative,
        so the time-averaged queue concentrates below it."""
        return self.constant / self.slope


def drift_bound(
    arrivals: ArrivalProcess, theta: float, pi_bar: float, pi_min: float
) -> DriftBound:
    """Compute Prop. 1's drift-bound constants for an arrival process.

    Requires finite arrival mean and variance and a strictly positive
    price floor (the bound degrades as ``π_min → 0``).
    """
    validate_price_band(pi_bar, pi_min)
    if pi_min <= 0.0:
        raise ValueError("Prop. 1's bound requires a strictly positive price floor")
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta!r}")
    lam = arrivals.mean()
    sigma = arrivals.variance()
    if not (math.isfinite(lam) and math.isfinite(sigma)):
        raise ValueError(
            "Prop. 1 requires finite arrival mean and variance; "
            f"got mean={lam!r}, variance={sigma!r}"
        )
    constant = (pi_bar - pi_min) * lam * lam / (2.0 * theta * pi_min) + sigma / 2.0
    slope = theta * lam * pi_bar / (4.0 * (pi_bar - pi_min))
    return DriftBound(constant=constant, slope=slope)


def empirical_drift(demand: np.ndarray) -> np.ndarray:
    """Per-slot realized drift ``Δ(t) = L(t+1)²/2 − L(t)²/2`` (eq. 5)."""
    demand = np.asarray(demand, dtype=float)
    if demand.ndim != 1 or demand.size < 2:
        raise ValueError("need a 1-D demand series with at least two entries")
    return 0.5 * (demand[1:] ** 2 - demand[:-1] ** 2)


def empirical_drift_vs_queue(
    demand: np.ndarray, n_bins: int = 20
) -> "tuple[np.ndarray, np.ndarray]":
    """Average realized drift conditioned on binned queue length.

    Returns ``(bin_centers, mean_drift)`` with NaN for empty bins — the
    empirical counterpart of Prop. 1's conditional expectation, used to
    check that drift turns negative for large queues.
    """
    demand = np.asarray(demand, dtype=float)
    drift = empirical_drift(demand)
    levels = demand[:-1]
    edges = np.linspace(levels.min(), levels.max(), n_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    means = np.full(n_bins, np.nan)
    idx = np.clip(np.digitize(levels, edges) - 1, 0, n_bins - 1)
    for b in range(n_bins):
        mask = idx == b
        if mask.any():
            means[b] = drift[mask].mean()
    return centers, means
