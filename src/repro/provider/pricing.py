"""The provider's per-slot price optimization (Section 4.1, eqs. 1–3).

Each slot the provider sees ``L(t)`` submitted bids whose prices are
modeled as uniform on ``[π_min, π̄]`` and chooses the spot price ``π(t)``
to maximize revenue plus a concave capacity-utilization bonus:

    maximize   β·log(1 + N) + π·N,   N = L·(π̄ − π)/(π̄ − π_min)
    subject to π_min <= π <= π̄                                (eq. 1)

The stationarity condition is eq. 2 and the closed-form maximizer eq. 3.
Both are implemented, plus a brute numeric maximizer used by the tests to
validate the algebra.
"""

from __future__ import annotations

import math

from scipy import optimize

from ..errors import DistributionError

__all__ = [
    "validate_price_band",
    "accepted_bids",
    "revenue_objective",
    "optimal_spot_price",
    "optimal_spot_price_numeric",
    "stationarity_residual",
    "max_beta_for_interior_price",
    "capacity_constrained_price",
]


def validate_price_band(pi_bar: float, pi_min: float) -> None:
    """Check ``0 <= π_min < π̄`` — the admissible spot-price band."""
    if not (math.isfinite(pi_bar) and math.isfinite(pi_min)):
        raise DistributionError(
            f"price band must be finite, got [{pi_min!r}, {pi_bar!r}]"
        )
    if not 0.0 <= pi_min < pi_bar:
        raise DistributionError(
            f"need 0 <= pi_min < pi_bar, got pi_min={pi_min!r}, pi_bar={pi_bar!r}"
        )


def accepted_bids(demand: float, price: float, pi_bar: float, pi_min: float) -> float:
    """``N(t) = L(t)·(π̄ − π)/(π̄ − π_min)`` — bids above the spot price.

    Under the uniform bid-price model, the fraction of the ``L`` submitted
    bids that beat a spot price ``π`` is the band fraction above ``π``.
    """
    validate_price_band(pi_bar, pi_min)
    if demand < 0:
        raise ValueError(f"demand must be non-negative, got {demand!r}")
    fraction = (pi_bar - price) / (pi_bar - pi_min)
    return demand * min(max(fraction, 0.0), 1.0)


def revenue_objective(
    price: float, demand: float, beta: float, pi_bar: float, pi_min: float
) -> float:
    """Eq. 1's objective: ``β·log(1 + N(t)) + π(t)·N(t)``."""
    n = accepted_bids(demand, price, pi_bar, pi_min)
    return beta * math.log1p(n) + price * n


def optimal_spot_price(
    demand: float, beta: float, pi_bar: float, pi_min: float
) -> float:
    """The closed-form revenue-maximizing spot price ``π*(t)`` (eq. 3).

    .. math::

        π^* = \\max\\Big(π_{min},\\;
            \\tfrac{3}{4}π̄ + \\tfrac{1}{2}\\tfrac{π̄ − π_{min}}{L}
            − \\tfrac{1}{4}\\sqrt{\\big(π̄ + \\tfrac{2(π̄ − π_{min})}{L}\\big)^2
                                 + \\tfrac{8β(π̄ − π_{min})}{L}}\\Big)

    With no demand (``L == 0``) there is no revenue to extract and the
    price rests at the floor ``π_min``.  As ``L → ∞`` the price rises
    toward ``π̄/2`` — the unconstrained revenue maximizer for a uniform
    bid distribution.
    """
    validate_price_band(pi_bar, pi_min)
    if beta < 0:
        raise ValueError(f"beta must be non-negative, got {beta!r}")
    if demand < 0:
        raise ValueError(f"demand must be non-negative, got {demand!r}")
    if demand == 0.0:
        return pi_min
    band = pi_bar - pi_min
    interior = (
        0.75 * pi_bar
        + 0.5 * band / demand
        - 0.25 * math.sqrt((pi_bar + 2.0 * band / demand) ** 2 + 8.0 * beta * band / demand)
    )
    return max(pi_min, interior)


def optimal_spot_price_numeric(
    demand: float, beta: float, pi_bar: float, pi_min: float
) -> float:
    """Maximize eq. 1 numerically — a cross-check for eq. 3's algebra."""
    validate_price_band(pi_bar, pi_min)
    if demand == 0.0:
        return pi_min
    result = optimize.minimize_scalar(
        lambda p: -revenue_objective(p, demand, beta, pi_bar, pi_min),
        bounds=(pi_min, pi_bar),
        method="bounded",
        options={"xatol": 1e-12},
    )
    return float(result.x)


def stationarity_residual(
    price: float, demand: float, beta: float, pi_bar: float, pi_min: float
) -> float:
    """Residual of eq. 2 at ``price``; zero at an interior optimum.

    Eq. 2 rearranges the first-order condition to
    ``L = (π̄ − π_min)/(π̄ − π) · (β/(π̄ − 2π) − 1)``; this returns
    ``L − RHS`` and is meaningful only for ``π < π̄/2``.
    """
    validate_price_band(pi_bar, pi_min)
    if price >= pi_bar / 2.0:
        raise ValueError(
            f"eq. 2 requires price < pi_bar/2, got {price!r} >= {pi_bar / 2.0!r}"
        )
    rhs = (pi_bar - pi_min) / (pi_bar - price) * (beta / (pi_bar - 2.0 * price) - 1.0)
    return demand - rhs


def capacity_constrained_price(
    demand: float,
    beta: float,
    pi_bar: float,
    pi_min: float,
    capacity: float,
) -> float:
    """Eq. 3's price with a hard capacity cap on accepted bids.

    Footnote 4: "The provider can keep the number of accepted bids below
    its available capacity by increasing the minimum spot price π so that
    fewer bids are accepted."  With uniform bids, accepting at most ``C``
    of ``L`` bids requires

        π >= π̄ − C·(π̄ − π_min)/L,

    so the offered price is the eq. 3 optimum lifted to that level when
    demand exceeds capacity.
    """
    validate_price_band(pi_bar, pi_min)
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity!r}")
    base = optimal_spot_price(demand, beta, pi_bar, pi_min)
    if demand <= capacity:
        return base
    floor_for_capacity = pi_bar - capacity * (pi_bar - pi_min) / demand
    return min(pi_bar, max(base, floor_for_capacity))


def max_beta_for_interior_price(demand: float, pi_bar: float, pi_min: float) -> float:
    """The paper's standing assumption ``β <= (L + 1)(π̄ − 2π_min)``.

    Below this bound the utilization bonus is weak enough that the optimal
    price stays strictly above the floor (Section 4.1).
    """
    validate_price_band(pi_bar, pi_min)
    return (demand + 1.0) * (pi_bar - 2.0 * pi_min)
