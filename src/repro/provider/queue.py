"""Queue dynamics of persistent bids (Section 4.2, eq. 4).

Bids that lose the auction — and running instances that are outbid — stay
in the system and compete again next slot, so the demand seen by the
provider evolves as

    L(t+1) = L(t) − θ·N(t) + Λ(t)                         (eq. 4)

where ``θ`` is the fraction of running instances that finish per slot and
``Λ(t)`` the new arrivals.  :class:`ProviderSimulation` runs this loop
closed against the eq. 3 price rule, producing the data used to validate
Props. 1–3 (queue stability, equilibrium, induced price distribution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import DistributionError
from .arrivals import ArrivalProcess
from .pricing import accepted_bids, optimal_spot_price, validate_price_band

__all__ = [
    "queue_step",
    "ProviderTrace",
    "ProviderSimulation",
    "ElasticProviderSimulation",
]


def queue_step(
    demand: float,
    price: float,
    arrivals_value: float,
    theta: float,
    pi_bar: float,
    pi_min: float,
) -> float:
    """One application of eq. 4: ``L(t+1) = L(t) − θN(t) + Λ(t)``."""
    if not 0.0 <= theta <= 1.0:
        raise DistributionError(f"theta must be in [0, 1], got {theta!r}")
    if arrivals_value < 0:
        raise ValueError(f"arrivals must be non-negative, got {arrivals_value!r}")
    n = accepted_bids(demand, price, pi_bar, pi_min)
    nxt = demand - theta * n + arrivals_value
    # 0 <= θ <= 1 and π within the band guarantee positivity analytically;
    # clamp only against floating-point dust.
    return max(0.0, nxt)


@dataclass
class ProviderTrace:
    """Time series produced by a closed-loop provider simulation."""

    demand: np.ndarray
    price: np.ndarray
    accepted: np.ndarray
    arrivals: np.ndarray

    @property
    def n_slots(self) -> int:
        return self.price.size

    def mean_queue(self) -> float:
        """Time-averaged demand — bounded under Prop. 1."""
        return float(self.demand.mean())

    def drop_warmup(self, slots: int) -> "ProviderTrace":
        """Discard the first ``slots`` entries (transient before equilibrium)."""
        if slots < 0:
            raise ValueError(f"slots must be non-negative, got {slots!r}")
        return ProviderTrace(
            demand=self.demand[slots:],
            price=self.price[slots:],
            accepted=self.accepted[slots:],
            arrivals=self.arrivals[slots:],
        )


@dataclass
class ProviderSimulation:
    """Closed-loop Section 4 provider: eq. 3 pricing + eq. 4 queueing.

    Parameters
    ----------
    arrivals:
        The i.i.d. arrival process ``Λ(t)``.
    beta, theta:
        Provider parameters (utilization weight; per-slot finish fraction).
    pi_bar, pi_min:
        The admissible spot-price band.
    initial_demand:
        ``L(0)``; defaults to the arrival mean divided by θ, which is the
        equilibrium workload level.
    """

    arrivals: ArrivalProcess
    beta: float
    theta: float
    pi_bar: float
    pi_min: float
    initial_demand: Optional[float] = None
    _state: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        validate_price_band(self.pi_bar, self.pi_min)
        if self.beta <= 0:
            raise DistributionError(f"beta must be positive, got {self.beta!r}")
        if not 0.0 < self.theta <= 1.0:
            raise DistributionError(f"theta must be in (0, 1], got {self.theta!r}")
        if self.initial_demand is None:
            mean = self.arrivals.mean()
            self.initial_demand = mean / self.theta if np.isfinite(mean) else 1.0
        if self.initial_demand < 0:
            raise ValueError(
                f"initial_demand must be non-negative, got {self.initial_demand!r}"
            )
        self._state = float(self.initial_demand)

    @property
    def demand(self) -> float:
        """Current queue length ``L(t)``."""
        return self._state

    def reset(self, demand: Optional[float] = None) -> None:
        """Reset the queue to ``demand`` (default: the initial demand)."""
        self._state = float(self.initial_demand if demand is None else demand)
        if self._state < 0:
            raise ValueError(f"demand must be non-negative, got {demand!r}")

    def step(self, arrivals_value: float) -> tuple:
        """Advance one slot; returns ``(price, accepted, new_demand)``."""
        price = optimal_spot_price(self._state, self.beta, self.pi_bar, self.pi_min)
        n = accepted_bids(self._state, price, self.pi_bar, self.pi_min)
        self._state = queue_step(
            self._state, price, arrivals_value, self.theta, self.pi_bar, self.pi_min
        )
        return price, n, self._state

    def run(self, n_slots: int, rng: np.random.Generator) -> ProviderTrace:
        """Simulate ``n_slots`` slots and return the full trace."""
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots!r}")
        arrivals_seq = self.arrivals.sample(n_slots, rng)
        demand = np.empty(n_slots)
        price = np.empty(n_slots)
        accepted = np.empty(n_slots)
        for i in range(n_slots):
            demand[i] = self._state
            p, n, _ = self.step(float(arrivals_seq[i]))
            price[i] = p
            accepted[i] = n
        return ProviderTrace(
            demand=demand, price=price, accepted=accepted, arrivals=arrivals_seq
        )


@dataclass
class ElasticProviderSimulation(ProviderSimulation):
    """Provider loop with price-elastic demand (footnote 5).

    The paper assumes the spot price does not feed back into demand
    because "the spot price is generally much lower than the on-demand
    price".  This variant drops that assumption: each slot's arrivals
    are scaled by ``1 − elasticity·(π(t−1) − π_min)/(π̄ − π_min)`` —
    when prices rise toward on-demand, some would-be spot users defect
    to on-demand instances.  ``elasticity = 0`` recovers the base model.
    """

    elasticity: float = 0.0
    _last_price: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.elasticity <= 1.0:
            raise DistributionError(
                f"elasticity must be in [0, 1], got {self.elasticity!r}"
            )
        self._last_price = self.pi_min

    def step(self, arrivals_value: float) -> tuple:
        fraction = (self._last_price - self.pi_min) / (self.pi_bar - self.pi_min)
        scaled = arrivals_value * max(0.0, 1.0 - self.elasticity * fraction)
        price, n, demand = super().step(scaled)
        self._last_price = price
        return price, n, demand
