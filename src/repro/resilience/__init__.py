"""Fault injection and resilient execution for large backtests.

The paper's Section 7 experiments assume clean price traces and an
uninterrupted backtest loop.  This package drops both assumptions:

* :mod:`repro.resilience.faults` — seeded, declarative
  :class:`FaultSpec` perturbations (price spikes, plateaus, missing and
  duplicated slots, revocation storms, truncation) composed by a
  :class:`FaultInjector` that rewrites recorded traces or wraps a live
  market's price source.
* :mod:`repro.resilience.execution` — the retry/backoff/journal
  machinery under :func:`repro.sweep.run_sweep`'s resilient mode:
  failing work items become structured :class:`ItemFailure` records in a
  partial report instead of aborting the pool, and a
  :class:`SweepJournal` lets an interrupted sweep resume without
  recomputing finished items.
* :mod:`repro.resilience.chaos` — the ``repro-bid chaos`` harness:
  backtest one bid under every fault class and report cost/completion
  degradation relative to the clean run, and (``--kill-workers``) run a
  sweep on the work-stealing pool under seeded process-level faults to
  prove the results stay bitwise identical.
"""

from .chaos import (
    ChaosReport,
    FaultClassResult,
    MapReduceChaosReport,
    MapReduceFaultClassResult,
    WorkerChaosReport,
    default_fault_suite,
    run_chaos,
    run_mapreduce_chaos,
    run_worker_chaos,
)
from .execution import (
    BackoffPolicy,
    ExecutionResult,
    ItemFailure,
    JournalWarning,
    SweepJournal,
    run_items,
)
from .faults import (
    FaultInjector,
    FaultSpec,
    FaultyPriceSource,
    PricePlateau,
    PriceSpike,
    RevocationStorm,
    SlotDropout,
    SlotDuplication,
    TraceTruncation,
    WorkerFaultPlan,
    WorkerFaults,
)

__all__ = [
    "BackoffPolicy",
    "ChaosReport",
    "ExecutionResult",
    "FaultClassResult",
    "FaultInjector",
    "FaultSpec",
    "FaultyPriceSource",
    "ItemFailure",
    "JournalWarning",
    "MapReduceChaosReport",
    "MapReduceFaultClassResult",
    "PricePlateau",
    "PriceSpike",
    "RevocationStorm",
    "SlotDropout",
    "SlotDuplication",
    "SweepJournal",
    "TraceTruncation",
    "WorkerChaosReport",
    "WorkerFaultPlan",
    "WorkerFaults",
    "default_fault_suite",
    "run_chaos",
    "run_items",
    "run_mapreduce_chaos",
    "run_worker_chaos",
]
