"""The chaos harness: how does a bid degrade under each fault class?

:func:`run_chaos` backtests one bid decision on a clean future trace,
then re-runs it on copies of the future degraded by each fault class of
:func:`default_fault_suite`, and reports per-class cost and completion
deltas.  Because a single short job only overlaps a tiny window of the
future, each variant is executed from ``n_starts`` start slots spread
across the trace — faults landing anywhere get sampled — and the report
carries completion *rates* and *mean* costs over those runs.  Everything
is a pure function of the root seed, so a chaos run is exactly
reproducible — the property the acceptance tests (and any CI regression
gate built on top) rely on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.client import BiddingClient
from ..core.types import (
    DecisionRequest,
    JobSpec,
    MapReducePlan,
    Strategy,
    normalize_strategy,
)
from ..errors import FaultError
from ..sweep import run_sweep
from ..traces.history import SpotPriceHistory
from .faults import (
    FaultInjector,
    FaultSpec,
    PricePlateau,
    PriceSpike,
    RevocationStorm,
    SlotDropout,
    SlotDuplication,
    TraceTruncation,
    WorkerFaults,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..scheduler.types import SchedulerStats

__all__ = [
    "FaultClassResult",
    "ChaosReport",
    "MapReduceFaultClassResult",
    "MapReduceChaosReport",
    "WorkerChaosReport",
    "default_fault_suite",
    "run_chaos",
    "run_mapreduce_chaos",
    "run_worker_chaos",
]

#: Canonical fault-class order for suites and reports.
FAULT_CLASSES = (
    "spike",
    "plateau",
    "dropout",
    "duplication",
    "storm",
    "truncation",
)


def default_fault_suite(
    reference_price: float, *, intensity: float = 1.0
) -> Dict[str, Tuple[FaultSpec, ...]]:
    """The standard chaos suite, one entry per fault class.

    ``reference_price`` anchors the "above any sane bid" levels — pass
    the on-demand price, since no optimal bid exceeds it.  ``intensity``
    scales how hard each class hits (1.0 is the default calibration for
    5-minute slots).
    """
    if not reference_price > 0:
        raise FaultError(
            f"reference_price must be positive, got {reference_price!r}"
        )
    if not intensity > 0:
        raise FaultError(f"intensity must be positive, got {intensity!r}")
    high = reference_price * (1.0 + 4.0 * intensity)
    rate = min(1.0, 0.02 * intensity)
    plateau_slots = max(1, int(round(36 * intensity)))  # 3h of 5-min slots
    return {
        "spike": (PriceSpike(rate=rate, magnitude=10.0),),
        "plateau": (PricePlateau(level=high, duration_slots=plateau_slots),),
        "dropout": (SlotDropout(rate=min(1.0, 0.05 * intensity)),),
        "duplication": (SlotDuplication(rate=min(1.0, 0.05 * intensity)),),
        "storm": (
            RevocationStorm(
                level=high, bursts=max(1, int(round(3 * intensity)))
            ),
        ),
        "truncation": (
            TraceTruncation(fraction=max(0.05, min(1.0, 0.5 / intensity))),
        ),
    }


@dataclass(frozen=True)
class FaultClassResult:
    """Backtest outcome of one fault class versus the clean baseline.

    The job is executed once per start slot (``n_starts`` of them,
    spread over the first half of the future), so rates and means
    aggregate over runs whose windows do and do not overlap the faults.
    """

    name: str
    #: Fraction of the start slots from which the job completed.
    completion_rate: float
    mean_cost: float
    #: Mean wall-clock completion time over *completed* runs, hours
    #: (NaN when nothing completed).
    mean_completion_time: float
    mean_interruptions: float
    #: Mean realized cost minus the clean-run mean cost, in dollars.
    cost_delta: float
    #: Completion rate minus the clean-run completion rate.
    completion_delta: float
    #: Mean completion time minus the clean-run mean, in hours.
    time_delta: float


@dataclass(frozen=True)
class ChaosReport:
    """Everything :func:`run_chaos` measured, renderable as a table."""

    strategy: Strategy
    bid_price: float
    #: True when the bid itself was an on-demand fallback (DegradedDecision).
    degraded_bid: bool
    baseline_completion_rate: float
    baseline_mean_cost: float
    baseline_mean_completion_time: float
    n_starts: int
    seed: int
    results: Tuple[FaultClassResult, ...]

    def table(self) -> str:
        lines = [
            f"bid ${self.bid_price:.4f}/h ({self.strategy})"
            + ("  [degraded: on-demand fallback]" if self.degraded_bid else ""),
            f"clean runs ({self.n_starts} starts): "
            f"mean cost ${self.baseline_mean_cost:.4f}  "
            f"mean time {self.baseline_mean_completion_time:.2f}h  "
            f"completion {self.baseline_completion_rate:.0%}",
            f"{'fault class':14s} {'done%':>6s} {'cost $':>9s} "
            f"{'Δcost $':>9s} {'Δdone%':>7s} {'Δtime h':>8s} "
            f"{'intr':>6s}",
        ]
        for r in self.results:
            lines.append(
                f"{r.name:14s} {r.completion_rate:6.0%} "
                f"{r.mean_cost:9.4f} {r.cost_delta:+9.4f} "
                f"{r.completion_delta:+7.0%} {r.time_delta:+8.2f} "
                f"{r.mean_interruptions:6.1f}"
            )
        return "\n".join(lines)


def run_chaos(
    history: SpotPriceHistory,
    future: SpotPriceHistory,
    job: JobSpec,
    *,
    ondemand_price: float,
    strategy: Union[Strategy, str] = Strategy.PERSISTENT,
    seed: int = 0,
    intensity: float = 1.0,
    n_starts: int = 8,
    classes: Optional[Sequence[str]] = None,
    suite: Optional[Dict[str, Tuple[FaultSpec, ...]]] = None,
) -> ChaosReport:
    """Measure per-fault-class degradation of one bid decision.

    The bid is computed from ``history`` (falling back to the on-demand
    baseline if the optimization is infeasible) and executed from
    ``n_starts`` start slots spread over the first half of the clean
    ``future``, then again per fault class on a degraded copy of
    ``future``.  Class ``k`` perturbs with ``FaultInjector(specs,
    seed=seed).derive(k)``, so the whole report is reproducible from
    ``seed``.
    """
    strategy = normalize_strategy(strategy)
    if n_starts < 1:
        raise FaultError(f"n_starts must be >= 1, got {n_starts!r}")
    if suite is None:
        suite = default_fault_suite(ondemand_price, intensity=intensity)
    names = tuple(classes) if classes is not None else tuple(suite)
    unknown = [n for n in names if n not in suite]
    if unknown:
        raise FaultError(
            f"unknown fault class(es) {unknown!r}; choose from {sorted(suite)}"
        )

    client = BiddingClient(history, ondemand_price=ondemand_price)
    decision = client.respond(
        DecisionRequest(job=job, strategy=strategy, degrade=True)
    ).decision
    exec_strategy = (
        Strategy.ONE_TIME if strategy is Strategy.ONE_TIME else Strategy.PERSISTENT
    )

    # Start slots spread over the first half of the future, so every run
    # keeps at least half the trace as runway.
    span = max(1, future.n_slots // 2)
    starts = [(i * span) // n_starts for i in range(n_starts)]

    def mean_outcome(
        trace: SpotPriceHistory,
    ) -> Tuple[float, float, float, float]:
        offsets = [min(s, trace.n_slots - 1) for s in starts]
        report = run_sweep(
            [trace] * len(offsets),
            decision.price,
            job,
            strategy=exec_strategy,
            start_slots=offsets,
        )
        done = report.completed[:, 0]
        times = report.completion_time[:, 0]
        mean_time = float(times[done].mean()) if done.any() else float("nan")
        return (
            float(done.mean()),
            float(report.cost[:, 0].mean()),
            mean_time,
            float(report.interruptions[:, 0].mean()),
        )

    baseline_rate, baseline_cost, baseline_time, _ = mean_outcome(future)

    results = []
    for index, name in enumerate(names):
        injector = FaultInjector(suite[name], seed=seed).derive(index)
        degraded = injector.perturb_history(future)
        rate, cost, mean_time, interruptions = mean_outcome(degraded)
        results.append(
            FaultClassResult(
                name=name,
                completion_rate=rate,
                mean_cost=cost,
                mean_completion_time=mean_time,
                mean_interruptions=interruptions,
                cost_delta=cost - baseline_cost,
                completion_delta=rate - baseline_rate,
                time_delta=mean_time - baseline_time,
            )
        )
    return ChaosReport(
        strategy=strategy,
        bid_price=decision.price,
        degraded_bid=getattr(decision, "degraded", False),
        baseline_completion_rate=baseline_rate,
        baseline_mean_cost=baseline_cost,
        baseline_mean_completion_time=baseline_time,
        n_starts=n_starts,
        seed=seed,
        results=tuple(results),
    )


@dataclass(frozen=True)
class MapReduceFaultClassResult:
    """One fault class versus the clean MapReduce baseline.

    Master and slave markets are degraded *independently* (each class
    derives two injectors from the root seed), matching the dual-market
    runner's fault hooks.
    """

    name: str
    completion_rate: float
    mean_cost: float
    #: Mean completion time over *completed* runs, hours (NaN if none).
    mean_completion_time: float
    mean_interruptions: float
    mean_master_restarts: float
    #: Runs per termination reason, e.g. ``{"completed": 6, ...}``.
    termination_counts: Dict[str, int]
    cost_delta: float
    completion_delta: float
    time_delta: float


@dataclass(frozen=True)
class MapReduceChaosReport:
    """Everything :func:`run_mapreduce_chaos` measured."""

    master_bid: float
    slave_bid: float
    num_slaves: int
    baseline_completion_rate: float
    baseline_mean_cost: float
    baseline_mean_completion_time: float
    baseline_termination_counts: Dict[str, int]
    n_starts: int
    seed: int
    results: Tuple[MapReduceFaultClassResult, ...]

    def table(self) -> str:
        lines = [
            f"plan: master ${self.master_bid:.4f}/h, "
            f"{self.num_slaves} slaves @ ${self.slave_bid:.4f}/h",
            f"clean runs ({self.n_starts} starts): "
            f"mean cost ${self.baseline_mean_cost:.4f}  "
            f"mean time {self.baseline_mean_completion_time:.2f}h  "
            f"completion {self.baseline_completion_rate:.0%}",
            f"{'fault class':14s} {'done%':>6s} {'cost $':>9s} "
            f"{'Δcost $':>9s} {'Δdone%':>7s} {'Δtime h':>8s} "
            f"{'intr':>6s} {'restarts':>9s}  termination",
        ]
        for r in self.results:
            failures = {
                k: v
                for k, v in r.termination_counts.items()
                if k != "completed" and v
            }
            term = (
                ", ".join(f"{k}:{v}" for k, v in sorted(failures.items()))
                or "all completed"
            )
            lines.append(
                f"{r.name:14s} {r.completion_rate:6.0%} "
                f"{r.mean_cost:9.4f} {r.cost_delta:+9.4f} "
                f"{r.completion_delta:+7.0%} {r.time_delta:+8.2f} "
                f"{r.mean_interruptions:6.1f} {r.mean_master_restarts:9.1f}"
                f"  {term}"
            )
        return "\n".join(lines)


def run_mapreduce_chaos(
    plan: MapReducePlan,
    master_future: SpotPriceHistory,
    slave_future: SpotPriceHistory,
    *,
    reference_price: float,
    seed: int = 0,
    intensity: float = 1.0,
    n_starts: int = 8,
    classes: Optional[Sequence[str]] = None,
    suite: Optional[Dict[str, Tuple[FaultSpec, ...]]] = None,
    max_master_restarts: int = 50,
) -> MapReduceChaosReport:
    """Per-fault-class degradation of one MapReduce bidding plan.

    The §6.2 analogue of :func:`run_chaos`: ``plan`` is executed from
    ``n_starts`` start slots on the clean master/slave futures, then per
    fault class on copies where fault class ``k`` perturbs the master
    trace with ``derive(2k)`` and the slave trace with ``derive(2k+1)``
    — independent degradations of the two markets.  All the multi-start
    evaluation goes through the batched plan-grid kernel, and the whole
    report is a pure function of ``seed``.
    """
    from ..mapreduce.grid import run_plan_grid

    if n_starts < 1:
        raise FaultError(f"n_starts must be >= 1, got {n_starts!r}")
    if suite is None:
        suite = default_fault_suite(reference_price, intensity=intensity)
    names = tuple(classes) if classes is not None else tuple(suite)
    unknown = [n for n in names if n not in suite]
    if unknown:
        raise FaultError(
            f"unknown fault class(es) {unknown!r}; choose from {sorted(suite)}"
        )

    span = max(1, min(master_future.n_slots, slave_future.n_slots) // 2)
    starts = [(i * span) // n_starts for i in range(n_starts)]

    def mean_outcome(master_trace, slave_trace):
        limit = min(master_trace.n_slots, slave_trace.n_slots) - 1
        offsets = [min(s, limit) for s in starts]
        grid = run_plan_grid(
            plan,
            master_trace,
            slave_trace,
            start_slots=offsets,
            max_master_restarts=max_master_restarts,
        )
        done = grid.completed[0]
        times = grid.completion_time[0]
        mean_time = float(times[done].mean()) if done.any() else float("nan")
        return (
            float(done.mean()),
            float(grid.total_cost[0].mean()),
            mean_time,
            float(grid.slave_interruptions[0].mean()),
            float(grid.master_restarts[0].mean()),
            grid.termination_counts(0),
        )

    base_rate, base_cost, base_time, _, _, base_terms = mean_outcome(
        master_future, slave_future
    )

    results = []
    for index, name in enumerate(names):
        injector = FaultInjector(suite[name], seed=seed)
        degraded_master = injector.derive(2 * index).perturb_history(
            master_future
        )
        degraded_slave = injector.derive(2 * index + 1).perturb_history(
            slave_future
        )
        rate, cost, mean_time, interruptions, restarts, terms = mean_outcome(
            degraded_master, degraded_slave
        )
        results.append(
            MapReduceFaultClassResult(
                name=name,
                completion_rate=rate,
                mean_cost=cost,
                mean_completion_time=mean_time,
                mean_interruptions=interruptions,
                mean_master_restarts=restarts,
                termination_counts=terms,
                cost_delta=cost - base_cost,
                completion_delta=rate - base_rate,
                time_delta=mean_time - base_time,
            )
        )
    return MapReduceChaosReport(
        master_bid=plan.master_bid.price,
        slave_bid=plan.slave_bid.price,
        num_slaves=plan.job.num_slaves,
        baseline_completion_rate=base_rate,
        baseline_mean_cost=base_cost,
        baseline_mean_completion_time=base_time,
        baseline_termination_counts=base_terms,
        n_starts=n_starts,
        seed=seed,
        results=tuple(results),
    )


#: Report arrays compared bitwise between the healthy and chaotic runs.
#: Counters are deliberately excluded — cache hit/miss totals depend on
#: how shards landed on workers, which chaos perturbs by design.
_PARITY_FIELDS = (
    "completed",
    "cost",
    "completion_time",
    "running_time",
    "idle_time",
    "recovery_time_used",
    "interruptions",
)


@dataclass(frozen=True)
class WorkerChaosReport:
    """Outcome of one :func:`run_worker_chaos` comparison.

    The interesting bit is :attr:`bitwise_identical`: the scheduler's
    contract is that crashes, stalls, and speculative re-dispatch may
    change *when* shards run but never *what* they compute.
    """

    strategy: Strategy
    bid_price: float
    n_starts: int
    max_workers: int
    seed: int
    faults: WorkerFaults
    #: True when every report array matched the fault-free run exactly.
    bitwise_identical: bool
    #: Report fields (if any) that diverged from the fault-free run.
    mismatched_fields: Tuple[str, ...]
    healthy_seconds: float
    chaos_seconds: float
    #: Pool accounting from the chaotic run: crashes, respawns,
    #: speculations, dropped duplicates, quarantines.
    scheduler: "SchedulerStats"

    def table(self) -> str:
        s = self.scheduler
        verdict = (
            "IDENTICAL"
            if self.bitwise_identical
            else "DIVERGED: " + ", ".join(self.mismatched_fields)
        )
        return "\n".join(
            [
                f"worker chaos (seed {self.seed}): bid "
                f"${self.bid_price:.4f}/h ({self.strategy}), "
                f"{self.n_starts} starts on {self.max_workers} workers",
                f"faults: kill {self.faults.kill_rate:.0%}  "
                f"stall {self.faults.stall_rate:.0%} "
                f"@{self.faults.stall_seconds:.2f}s  "
                f"slow-start {self.faults.slow_start_rate:.0%}",
                f"healthy serial run {self.healthy_seconds:.2f}s; "
                f"chaotic pool run {self.chaos_seconds:.2f}s",
                f"pool: {s.dispatched} dispatches  {s.worker_crashes} "
                f"crashes  {s.workers_respawned} respawns  "
                f"{s.speculated} speculated  {s.duplicates_dropped} "
                f"dup-dropped  {s.quarantined} quarantined",
                f"results vs fault-free run: {verdict}",
            ]
        )


def run_worker_chaos(
    history: SpotPriceHistory,
    future: SpotPriceHistory,
    job: JobSpec,
    *,
    ondemand_price: float,
    strategy: Union[Strategy, str] = Strategy.PERSISTENT,
    seed: int = 0,
    n_starts: int = 8,
    max_workers: int = 2,
    kill_rate: float = 0.6,
    stall_rate: float = 0.3,
    stall_seconds: float = 1.5,
    slow_start_rate: float = 0.25,
) -> WorkerChaosReport:
    """Prove the scheduler's recovery guarantees on a real sweep.

    Computes one bid decision from ``history`` (as :func:`run_chaos`
    does), then evaluates it from ``n_starts`` start slots on ``future``
    twice: once serially with no faults, and once on the process pool
    with :class:`WorkerFaults(seed=seed)` killing, stalling, and
    slow-starting workers.  The two reports must match bitwise — the
    whole point of the work-stealing scheduler is that the failure
    schedule is invisible in the results.  Chaos turns benign after the
    fault plan's epoch cap, so the run terminates even at 100% rates.
    """
    strategy = normalize_strategy(strategy)
    if n_starts < 1:
        raise FaultError(f"n_starts must be >= 1, got {n_starts!r}")
    if max_workers < 1:
        raise FaultError(f"max_workers must be >= 1, got {max_workers!r}")

    client = BiddingClient(history, ondemand_price=ondemand_price)
    decision = client.respond(
        DecisionRequest(job=job, strategy=strategy, degrade=True)
    ).decision
    exec_strategy = (
        Strategy.ONE_TIME if strategy is Strategy.ONE_TIME else Strategy.PERSISTENT
    )

    span = max(1, future.n_slots // 2)
    starts = [
        min((i * span) // n_starts, future.n_slots - 1) for i in range(n_starts)
    ]
    traces = [future] * len(starts)

    t0 = time.perf_counter()
    healthy = run_sweep(
        traces,
        decision.price,
        job,
        strategy=exec_strategy,
        start_slots=starts,
    )
    healthy_seconds = time.perf_counter() - t0

    faults = WorkerFaults(
        kill_rate=kill_rate,
        stall_rate=stall_rate,
        stall_seconds=stall_seconds,
        slow_start_rate=slow_start_rate,
        seed=seed,
    )
    t0 = time.perf_counter()
    chaotic = run_sweep(
        traces,
        decision.price,
        job,
        strategy=exec_strategy,
        start_slots=starts,
        executor="process",
        max_workers=max_workers,
        worker_faults=faults,
    )
    chaos_seconds = time.perf_counter() - t0
    if chaotic.scheduler is None:  # pragma: no cover - defensive
        raise FaultError("chaotic run did not go through the process pool")

    mismatched = tuple(
        name
        for name in _PARITY_FIELDS
        if not np.array_equal(getattr(healthy, name), getattr(chaotic, name))
    )
    return WorkerChaosReport(
        strategy=strategy,
        bid_price=decision.price,
        n_starts=n_starts,
        max_workers=max_workers,
        seed=seed,
        faults=faults,
        bitwise_identical=not mismatched,
        mismatched_fields=mismatched,
        healthy_seconds=healthy_seconds,
        chaos_seconds=chaos_seconds,
        scheduler=chaotic.scheduler,
    )
