"""Resilient work-item execution for long sweep runs.

:func:`run_items` is the machinery behind
:func:`repro.sweep.run_sweep`'s resilient mode: each work item is
isolated, retried with capped exponential backoff, optionally bounded by
a per-item timeout, and — when it still fails — recorded as a structured
:class:`ItemFailure` instead of killing the whole pool.  A
:class:`SweepJournal` persists finished items as JSON lines so an
interrupted run can resume without recomputing them.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import SweepExecutionError

__all__ = [
    "BackoffPolicy",
    "ItemFailure",
    "ExecutionResult",
    "JournalWarning",
    "SweepJournal",
    "run_items",
]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff between retry rounds.

    Retry ``k`` (0-based) sleeps ``min(max_delay, base_delay *
    multiplier**k)`` seconds before re-running the failed items.
    """

    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise SweepExecutionError(
                f"base_delay must be non-negative, got {self.base_delay!r}"
            )
        if self.multiplier < 1.0:
            raise SweepExecutionError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )
        if self.max_delay < 0:
            raise SweepExecutionError(
                f"max_delay must be non-negative, got {self.max_delay!r}"
            )

    def delay(self, retry: int) -> float:
        return min(self.max_delay, self.base_delay * self.multiplier**retry)


@dataclass(frozen=True)
class ItemFailure:
    """One work item that failed permanently (retries exhausted)."""

    index: int
    label: str
    error_type: str
    message: str
    attempts: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"item {self.index} ({self.label}): {self.error_type}: "
            f"{self.message} after {self.attempts} attempt(s)"
        )


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of :func:`run_items` over one batch."""

    #: Per-item results, in item order; ``None`` where the item failed.
    results: List[Optional[Any]]
    failures: Tuple[ItemFailure, ...]
    #: Indices served from the journal instead of being recomputed.
    reused: Tuple[int, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


class JournalWarning(UserWarning):
    """A journal file held unusable lines that resume skipped over."""


class SweepJournal:
    """Append-only JSON-lines journal of finished work items.

    The first line is a header carrying a caller-supplied *signature*
    (e.g. the sweep's shape and job parameters).  Resuming against a
    journal whose signature differs raises
    :class:`~repro.errors.SweepExecutionError` rather than silently
    mixing results from different sweeps.

    Crash consistency: a driver killed mid-append leaves a torn final
    line.  :meth:`load` skips it with a :class:`JournalWarning` and
    truncates the file back to the last complete record, so the next
    append starts on a clean line instead of concatenating onto the torn
    tail.  With ``fsync=True`` every record is flushed and fsync'd
    before :meth:`record` returns — the scheduler's shard journals run
    in this mode.
    """

    _MAGIC = "repro.resilience.journal/1"

    def __init__(
        self,
        path: Union[str, os.PathLike],
        *,
        signature: Optional[Dict[str, Any]] = None,
        fsync: bool = False,
    ):
        self.path = os.fspath(path)
        self.signature = signature
        self.fsync = bool(fsync)
        self._header_written = False

    def load(self) -> Dict[str, Any]:
        """Finished items keyed by item key; ``{}`` if no journal yet.

        Unparseable lines are skipped with a :class:`JournalWarning`; a
        torn *final* line (the expected residue of a crash mid-write) is
        additionally repaired by truncating the file to the last
        complete record.
        """
        if not os.path.exists(self.path):
            return {}
        entries: Dict[str, Any] = {}
        with open(self.path, "rb") as fh:
            raw = fh.read()
        lines = raw.split(b"\n")
        good_bytes = 0  # end offset of the last fully-parsed line
        torn_tail = False
        for lineno, chunk in enumerate(lines, start=1):
            is_last = lineno == len(lines)
            line_bytes = len(chunk) + (0 if is_last else 1)
            text = chunk.decode("utf-8", errors="replace").strip()
            if not text:
                good_bytes += line_bytes
                continue
            try:
                record = json.loads(text)
            except json.JSONDecodeError:
                if is_last:
                    # A torn final line from a crash mid-write is
                    # expected; everything before it is still usable.
                    torn_tail = True
                    warnings.warn(
                        f"journal {self.path}: skipping torn final line "
                        f"{lineno} (crash mid-write); resuming from the "
                        f"last complete record",
                        JournalWarning,
                        stacklevel=2,
                    )
                    break
                warnings.warn(
                    f"journal {self.path}: skipping unparseable line "
                    f"{lineno}",
                    JournalWarning,
                    stacklevel=2,
                )
                good_bytes += line_bytes
                continue
            if lineno == 1:
                if not isinstance(record, dict) or record.get("magic") != self._MAGIC:
                    raise SweepExecutionError(
                        f"{self.path} is not a sweep journal"
                    )
                stored = record.get("signature")
                if self.signature is not None and stored != self.signature:
                    raise SweepExecutionError(
                        f"journal {self.path} belongs to a different "
                        f"sweep (signature {stored!r} != "
                        f"{self.signature!r})"
                    )
                self._header_written = True
                good_bytes += line_bytes
                continue
            entries[record["key"]] = record["result"]
            good_bytes += line_bytes
        if torn_tail:
            with open(self.path, "r+b") as fh:
                fh.truncate(good_bytes)
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
        return entries

    def record(self, key: str, result: Any) -> None:
        """Append one finished item (writes the header first if needed).

        With ``fsync=True`` the line is durable on disk — not just in
        the page cache — before this method returns.
        """
        with open(self.path, "a") as fh:
            if not self._header_written and fh.tell() == 0:
                fh.write(
                    json.dumps(
                        {"magic": self._MAGIC, "signature": self.signature}
                    )
                    + "\n"
                )
                self._header_written = True
            fh.write(json.dumps({"key": key, "result": result}) + "\n")
            if self.fsync:
                fh.flush()
                os.fsync(fh.fileno())


def _identity(value: Any) -> Any:
    return value


def run_items(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    labels: Optional[Sequence[str]] = None,
    retries: int = 0,
    backoff: Optional[BackoffPolicy] = None,
    timeout: Optional[float] = None,
    strict: bool = False,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    journal: Optional[SweepJournal] = None,
    keys: Optional[Sequence[str]] = None,
    serialize: Callable[[Any], Any] = _identity,
    deserialize: Callable[[Any], Any] = _identity,
    sleep: Callable[[float], None] = time.sleep,
) -> ExecutionResult:
    """Apply ``fn`` to every item, isolating and retrying failures.

    Items run in parallel rounds: round 0 tries everything (optionally
    on a thread/process pool), each later round re-runs only the items
    that failed, after the backoff delay for that round.  An item whose
    result does not arrive within ``timeout`` seconds of being collected
    counts as failed for that round (the worker itself cannot be killed;
    its result is discarded).

    With ``strict=True`` any permanent failure escalates to
    :class:`~repro.errors.SweepExecutionError`; otherwise failures are
    returned as :class:`ItemFailure` records alongside the partial
    results.  With a ``journal``, items whose key is already journaled
    are returned without recomputation and fresh successes are appended
    (``serialize``/``deserialize`` convert results to/from JSON-safe
    payloads).
    """
    if retries < 0:
        raise SweepExecutionError(f"retries must be >= 0, got {retries!r}")
    if timeout is not None and timeout <= 0:
        raise SweepExecutionError(f"timeout must be positive, got {timeout!r}")
    if labels is None:
        labels = [str(i) for i in range(len(items))]
    if journal is not None:
        if keys is None:
            keys = [str(i) for i in range(len(items))]
        if len(keys) != len(items):
            raise SweepExecutionError(
                f"got {len(keys)} journal keys for {len(items)} items"
            )
    backoff = backoff or BackoffPolicy()

    results: List[Optional[Any]] = [None] * len(items)
    reused: List[int] = []
    todo = list(range(len(items)))

    if journal is not None:
        finished = journal.load()
        still_todo = []
        for i in todo:
            if keys[i] in finished:
                results[i] = deserialize(finished[keys[i]])
                reused.append(i)
            else:
                still_todo.append(i)
        todo = still_todo

    if executor == "thread":
        pool_cls = ThreadPoolExecutor
    elif executor == "process":
        pool_cls = ProcessPoolExecutor
    else:
        raise ValueError(
            f"unknown executor {executor!r}; use 'thread' or 'process'"
        )
    # A timeout needs a pool even for serial runs, so the main thread can
    # abandon a stuck worker instead of blocking on it forever.
    use_pool = (max_workers is not None and max_workers > 1) or (
        timeout is not None
    )
    workers = max(1, max_workers or 1)

    last_errors: Dict[int, BaseException] = {}
    attempts = {i: 0 for i in todo}

    def run_round(indices: List[int], pool) -> List[int]:
        """Try each index once; returns the indices that failed."""
        failed: List[int] = []
        if pool is not None:
            futures = [(i, pool.submit(fn, items[i])) for i in indices]
            for i, future in futures:
                attempts[i] += 1
                try:
                    outcome = future.result(timeout=timeout)
                except FutureTimeoutError:
                    future.cancel()
                    last_errors[i] = TimeoutError(
                        f"no result within {timeout:g}s"
                    )
                    failed.append(i)
                except Exception as exc:
                    last_errors[i] = exc
                    failed.append(i)
                else:
                    results[i] = outcome
                    if journal is not None:
                        journal.record(keys[i], serialize(outcome))
        else:
            for i in indices:
                attempts[i] += 1
                try:
                    outcome = fn(items[i])
                except Exception as exc:
                    last_errors[i] = exc
                    failed.append(i)
                else:
                    results[i] = outcome
                    if journal is not None:
                        journal.record(keys[i], serialize(outcome))
        return failed

    def run_rounds(pool) -> List[int]:
        pending = todo
        for retry in range(retries + 1):
            if not pending:
                break
            if retry > 0:
                delay = backoff.delay(retry - 1)
                if delay > 0:
                    sleep(delay)
            pending = run_round(pending, pool)
        return pending

    # One pool serves every retry round: workers (and, for process
    # pools, their attached shared-memory segments and warm caches)
    # survive across rounds instead of being torn down and respawned.
    # The trade-off: a worker that blew its timeout keeps occupying a
    # slot until it actually finishes, rather than being abandoned with
    # the round's pool.
    if use_pool and todo:
        with pool_cls(max_workers=min(workers, max(1, len(todo)))) as pool:
            pending = run_rounds(pool)
    else:
        pending = run_rounds(None)

    failures = tuple(
        ItemFailure(
            index=i,
            label=labels[i],
            error_type=type(last_errors[i]).__name__,
            message=str(last_errors[i]),
            attempts=attempts[i],
        )
        for i in sorted(pending)
    )
    if strict and failures:
        first = failures[0]
        raise SweepExecutionError(
            f"{len(failures)} work item(s) failed permanently; first: {first}"
        ) from last_errors[first.index]
    return ExecutionResult(
        results=results, failures=failures, reused=tuple(reused)
    )
