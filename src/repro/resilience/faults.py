"""Seeded, declarative fault injection for spot-price traces and markets.

A :class:`FaultSpec` declares one perturbation of a price series —
*what* goes wrong, parameterized but with no randomness of its own.  A
:class:`FaultInjector` owns the randomness: it derives one child
generator per spec from a single seed, so a given ``(specs, seed)`` pair
always produces the same degraded market, which keeps chaos experiments
reproducible.

Two application paths share the same plans:

* **Recorded traces** — :meth:`FaultInjector.perturb_history` rewrites a
  :class:`~repro.traces.history.SpotPriceHistory` (specs are applied in
  sequence, each seeing the previous spec's output).
* **Live markets** — :class:`FaultyPriceSource` wraps any
  :class:`~repro.market.price_sources.PriceSource` and perturbs slots as
  they stream out, so a running :class:`~repro.market.simulator.SpotMarket`
  (or the MapReduce runner's master/slave markets) can be degraded
  without materializing the whole future.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import FaultError, MarketError
from ..market.price_sources import PriceSource
from ..traces.history import SpotPriceHistory

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "PriceSpike",
    "PricePlateau",
    "SlotDropout",
    "SlotDuplication",
    "RevocationStorm",
    "TraceTruncation",
    "FaultInjector",
    "FaultyPriceSource",
    "WorkerFaultPlan",
    "WorkerFaults",
]


@dataclass(frozen=True)
class FaultPlan:
    """A spec's fully-sampled decision for an ``n_slots``-long series.

    Plans are pure data so the trace path and the streaming path apply
    the *same* sampled fault: per-slot multiplicative factors, per-slot
    absolute overrides (NaN means "leave the price alone"), per-slot
    emission counts (0 drops a slot, 2 duplicates it), and an optional
    cap on how many slots are emitted at all.
    """

    multiplier: Optional[np.ndarray] = None
    override: Optional[np.ndarray] = None
    emit_counts: Optional[np.ndarray] = None
    max_emitted: Optional[int] = None

    def apply(self, prices: np.ndarray) -> np.ndarray:
        out = np.asarray(prices, dtype=float)
        if self.multiplier is not None:
            out = out * self.multiplier
        if self.override is not None:
            out = np.where(np.isnan(self.override), out, self.override)
        if self.emit_counts is not None:
            out = np.repeat(out, self.emit_counts)
        if self.max_emitted is not None:
            out = out[: self.max_emitted]
        if out.size == 0:
            raise FaultError("fault plan removed every slot of the trace")
        return out


class FaultSpec(abc.ABC):
    """One declarative perturbation of a price series.

    Subclasses are frozen dataclasses; all randomness comes from the
    generator handed to :meth:`plan`, never from the spec itself.
    """

    @property
    def kind(self) -> str:
        """Short machine-readable name (the class name, kebab-cased)."""
        name = type(self).__name__
        return "".join(
            ("-" + c.lower()) if c.isupper() else c for c in name
        ).lstrip("-")

    @abc.abstractmethod
    def plan(self, rng: np.random.Generator, n_slots: int) -> FaultPlan:
        """Sample this spec's concrete decisions for an ``n_slots`` series."""


def _check_rate(rate: float, name: str) -> None:
    if not 0.0 <= rate <= 1.0:
        raise FaultError(f"{name} must be in [0, 1], got {rate!r}")


def _check_positive(value: float, name: str) -> None:
    if not (value > 0 and math.isfinite(value)):
        raise FaultError(f"{name} must be positive and finite, got {value!r}")


@dataclass(frozen=True)
class PriceSpike(FaultSpec):
    """Multiply the price by ``magnitude`` at randomly chosen slots.

    Roughly ``rate``-fraction of slots start a spike ``width`` slots
    long — the abrupt price dynamics that feedback-control bidders react
    to (arXiv:1708.01391).
    """

    rate: float = 0.01
    magnitude: float = 10.0
    width: int = 1

    def __post_init__(self) -> None:
        _check_rate(self.rate, "rate")
        _check_positive(self.magnitude, "magnitude")
        if self.width < 1:
            raise FaultError(f"width must be >= 1, got {self.width!r}")

    def plan(self, rng: np.random.Generator, n_slots: int) -> FaultPlan:
        n_spikes = min(n_slots, int(round(self.rate * n_slots)))
        multiplier = np.ones(n_slots)
        if n_spikes:
            starts = rng.choice(n_slots, size=n_spikes, replace=False)
            for start in np.sort(starts):
                multiplier[start : start + self.width] *= self.magnitude
        return FaultPlan(multiplier=multiplier)


@dataclass(frozen=True)
class PricePlateau(FaultSpec):
    """Hold the price at ``level`` for ``duration_slots`` consecutive slots.

    With ``level`` above the bid this starves the job for the whole
    window — the sustained-outage case one-time requests cannot survive.
    ``start_slot=None`` picks the window uniformly at random.
    """

    level: float
    duration_slots: int
    start_slot: Optional[int] = None

    def __post_init__(self) -> None:
        _check_positive(self.level, "level")
        if self.duration_slots < 1:
            raise FaultError(
                f"duration_slots must be >= 1, got {self.duration_slots!r}"
            )
        if self.start_slot is not None and self.start_slot < 0:
            raise FaultError(
                f"start_slot must be non-negative, got {self.start_slot!r}"
            )

    def plan(self, rng: np.random.Generator, n_slots: int) -> FaultPlan:
        duration = min(self.duration_slots, n_slots)
        if self.start_slot is None:
            start = int(rng.integers(0, n_slots - duration + 1))
        else:
            start = min(self.start_slot, n_slots - 1)
        override = np.full(n_slots, np.nan)
        override[start : start + duration] = self.level
        return FaultPlan(override=override)


@dataclass(frozen=True)
class SlotDropout(FaultSpec):
    """Drop ~``rate``-fraction of slots — missing observations in the feed."""

    rate: float = 0.05

    def __post_init__(self) -> None:
        _check_rate(self.rate, "rate")

    def plan(self, rng: np.random.Generator, n_slots: int) -> FaultPlan:
        counts = np.ones(n_slots, dtype=np.int64)
        counts[rng.random(n_slots) < self.rate] = 0
        if counts.sum() == 0:
            counts[0] = 1  # never delete the whole trace
        return FaultPlan(emit_counts=counts)


@dataclass(frozen=True)
class SlotDuplication(FaultSpec):
    """Emit ~``rate``-fraction of slots twice — a stuttering price feed."""

    rate: float = 0.05

    def __post_init__(self) -> None:
        _check_rate(self.rate, "rate")

    def plan(self, rng: np.random.Generator, n_slots: int) -> FaultPlan:
        counts = np.ones(n_slots, dtype=np.int64)
        counts[rng.random(n_slots) < self.rate] = 2
        return FaultPlan(emit_counts=counts)


@dataclass(frozen=True)
class RevocationStorm(FaultSpec):
    """``bursts`` windows where the price jumps to ``level``.

    With ``level`` above every sane bid each burst revokes all running
    spot instances at once — the correlated-revocation scenario that
    portfolio contracts hedge against (arXiv:1811.12901).
    """

    level: float
    bursts: int = 3
    burst_slots: int = 6

    def __post_init__(self) -> None:
        _check_positive(self.level, "level")
        if self.bursts < 1:
            raise FaultError(f"bursts must be >= 1, got {self.bursts!r}")
        if self.burst_slots < 1:
            raise FaultError(
                f"burst_slots must be >= 1, got {self.burst_slots!r}"
            )

    def plan(self, rng: np.random.Generator, n_slots: int) -> FaultPlan:
        override = np.full(n_slots, np.nan)
        n_bursts = min(self.bursts, n_slots)
        starts = rng.choice(n_slots, size=n_bursts, replace=False)
        for start in np.sort(starts):
            override[start : start + self.burst_slots] = self.level
        return FaultPlan(override=override)


@dataclass(frozen=True)
class TraceTruncation(FaultSpec):
    """Keep only the leading ``fraction`` of the trace.

    Models a feed that dies mid-backtest; downstream code must cope with
    jobs that run out of future instead of completing.
    """

    fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise FaultError(
                f"fraction must be in (0, 1], got {self.fraction!r}"
            )

    def plan(self, rng: np.random.Generator, n_slots: int) -> FaultPlan:
        return FaultPlan(max_emitted=max(1, int(n_slots * self.fraction)))


class FaultInjector:
    """Applies a sequence of :class:`FaultSpec` s reproducibly.

    Parameters
    ----------
    specs:
        The perturbations, applied in order.
    seed:
        Root seed.  Spec ``i`` draws from
        ``np.random.default_rng([seed, i])``, so adding or reordering
        specs never silently reshuffles another spec's randomness.
    """

    def __init__(self, specs: Sequence[FaultSpec], *, seed: int = 0):
        specs = tuple(specs)
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise FaultError(f"not a FaultSpec: {spec!r}")
        if not specs:
            raise FaultError("need at least one FaultSpec")
        self.specs: Tuple[FaultSpec, ...] = specs
        self.seed = int(seed)
        self._prefix: Tuple[int, ...] = (self.seed,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(spec.kind for spec in self.specs)
        return f"FaultInjector([{kinds}], seed={self.seed})"

    def derive(self, index: int) -> "FaultInjector":
        """An injector with the same specs but an independent seed stream.

        Used to give each trace of a sweep (or each class of a chaos
        run) its own randomness while staying a pure function of the
        root seed.
        """
        child = FaultInjector(self.specs, seed=self.seed)
        child._prefix = self._prefix + (int(index),)
        return child

    def spec_rng(self, index: int) -> np.random.Generator:
        """The dedicated generator for spec ``index``."""
        return np.random.default_rng([*self._prefix, index])

    # -- recorded traces --------------------------------------------------
    def perturb_prices(self, prices: np.ndarray) -> np.ndarray:
        """Apply every spec in sequence to a 1-D price array."""
        out = np.asarray(prices, dtype=float)
        if out.ndim != 1 or out.size == 0:
            raise FaultError("prices must be a non-empty 1-D array")
        for i, spec in enumerate(self.specs):
            out = spec.plan(self.spec_rng(i), out.size).apply(out)
        return out

    def perturb_history(self, history: SpotPriceHistory) -> SpotPriceHistory:
        """A new history with the same metadata and perturbed prices."""
        return SpotPriceHistory(
            prices=self.perturb_prices(history.prices),
            slot_length=history.slot_length,
            start_hour=history.start_hour,
            instance_type=history.instance_type,
        )

    # -- live markets ------------------------------------------------------
    def price_source(
        self, source: PriceSource, *, horizon: Optional[int] = None
    ) -> "FaultyPriceSource":
        """Wrap a live price source; see :class:`FaultyPriceSource`."""
        return FaultyPriceSource(source, self, horizon=horizon)


@dataclass(frozen=True)
class WorkerFaultPlan:
    """One worker epoch's fully-sampled process faults — pure data.

    The coordinator samples a plan per ``(worker_id, epoch)`` and ships
    it to the worker; the worker only ever reads plain floats and ints,
    so plans cross the process boundary trivially.  Shard positions are
    *worker-local sequence numbers* (the k-th shard this worker pulls),
    which keeps plans meaningful under dynamic assignment.
    """

    slow_start_seconds: float = 0.0
    #: Worker-local shard sequence at which the worker ``os._exit``\ s
    #: before running it (``None`` = never).
    kill_on_shard: Optional[int] = None
    #: Worker-local shard sequence before which the worker stalls.
    stall_on_shard: Optional[int] = None
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in ("slow_start_seconds", "stall_seconds"):
            value = getattr(self, name)
            if value < 0:
                raise FaultError(f"{name} must be >= 0, got {value!r}")
        for name in ("kill_on_shard", "stall_on_shard"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise FaultError(f"{name} must be >= 0, got {value!r}")

    @property
    def benign(self) -> bool:
        return (
            self.slow_start_seconds == 0.0
            and self.kill_on_shard is None
            and (self.stall_on_shard is None or self.stall_seconds == 0.0)
        )


BENIGN_WORKER_PLAN = WorkerFaultPlan()


@dataclass(frozen=True)
class WorkerFaults:
    """Seeded process-level chaos for the work-stealing scheduler.

    Worker ``w`` at respawn ``epoch`` draws its plan from
    ``np.random.default_rng([seed, w, epoch])`` — the same prefix-tuple
    derivation as :class:`FaultInjector` — so a chaos run is a pure
    function of ``seed`` *given* the dispatch order.  Epochs at or
    beyond ``max_chaos_epochs`` always get the benign plan, which
    bounds the chaos and guarantees the pool eventually drains even
    with ``kill_rate=1.0``.
    """

    kill_rate: float = 0.5
    stall_rate: float = 0.0
    stall_seconds: float = 0.5
    slow_start_rate: float = 0.0
    slow_start_seconds: float = 0.2
    seed: int = 0
    #: First-few-shards window chaos positions are drawn from.
    first_shards: int = 3
    max_chaos_epochs: int = 2
    #: Restrict chaos to these pool slots (``None`` = all workers) —
    #: e.g. ``(0,)`` makes exactly one worker the straggler.
    only_workers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _check_rate(self.kill_rate, "kill_rate")
        _check_rate(self.stall_rate, "stall_rate")
        _check_rate(self.slow_start_rate, "slow_start_rate")
        if self.stall_seconds < 0:
            raise FaultError(
                f"stall_seconds must be non-negative, got {self.stall_seconds!r}"
            )
        if self.slow_start_seconds < 0:
            raise FaultError(
                f"slow_start_seconds must be non-negative, "
                f"got {self.slow_start_seconds!r}"
            )
        if self.first_shards < 1:
            raise FaultError(
                f"first_shards must be >= 1, got {self.first_shards!r}"
            )
        if self.max_chaos_epochs < 0:
            raise FaultError(
                f"max_chaos_epochs must be >= 0, got {self.max_chaos_epochs!r}"
            )

    def plan(self, worker_id: int, epoch: int) -> WorkerFaultPlan:
        """The sampled plan for one worker epoch (benign past the cap)."""
        if epoch >= self.max_chaos_epochs:
            return BENIGN_WORKER_PLAN
        if self.only_workers is not None and worker_id not in self.only_workers:
            return BENIGN_WORKER_PLAN
        rng = np.random.default_rng([self.seed, int(worker_id), int(epoch)])
        # One draw per knob, always, so enabling a knob never reshuffles
        # the randomness another knob sees.
        kill_u, kill_pos = rng.random(), int(rng.integers(0, self.first_shards))
        stall_u, stall_pos = rng.random(), int(rng.integers(0, self.first_shards))
        slow_u = rng.random()
        return WorkerFaultPlan(
            slow_start_seconds=(
                self.slow_start_seconds if slow_u < self.slow_start_rate else 0.0
            ),
            kill_on_shard=kill_pos if kill_u < self.kill_rate else None,
            stall_on_shard=stall_pos if stall_u < self.stall_rate else None,
            stall_seconds=self.stall_seconds,
        )


class FaultyPriceSource(PriceSource):
    """A :class:`PriceSource` decorator that perturbs slots as they stream.

    All specs sample their plans over the same underlying horizon (the
    wrapped source's remaining slots, or ``horizon`` for unbounded
    sources) and are applied jointly per slot: price transforms in spec
    order, then the product of the specs' emission counts decides
    whether the slot is dropped, passed through, or repeated.
    Truncation caps the number of *emitted* slots, after which the
    source reports itself exhausted like a spent trace.
    """

    def __init__(
        self,
        source: PriceSource,
        injector: FaultInjector,
        *,
        horizon: Optional[int] = None,
    ):
        n = source.remaining_slots()
        if n is None:
            n = horizon
        if n is None:
            raise FaultError(
                "wrapping an unbounded price source needs an explicit horizon"
            )
        if n < 1:
            raise FaultError(f"horizon must be >= 1, got {n!r}")
        self._source = source
        self._plans = [
            spec.plan(injector.spec_rng(i), n)
            for i, spec in enumerate(injector.specs)
        ]
        self._horizon = n
        self._counts = np.ones(n, dtype=np.int64)
        for plan in self._plans:
            if plan.emit_counts is not None:
                self._counts *= plan.emit_counts
        caps = [p.max_emitted for p in self._plans if p.max_emitted is not None]
        self._max_emitted: Optional[int] = min(caps) if caps else None
        self._cursor = 0
        self._emitted = 0
        self._pending: List[float] = []

    def next_price(self) -> float:
        if self._max_emitted is not None and self._emitted >= self._max_emitted:
            raise MarketError(
                f"fault-injected price source truncated after "
                f"{self._emitted} slots"
            )
        while not self._pending:
            if self._cursor >= self._horizon:
                raise MarketError(
                    f"fault-injected price source exhausted after "
                    f"{self._emitted} slots"
                )
            price = self._source.next_price()
            for plan in self._plans:
                if plan.multiplier is not None:
                    price *= float(plan.multiplier[self._cursor])
                if plan.override is not None:
                    override = float(plan.override[self._cursor])
                    if not math.isnan(override):
                        price = override
            self._pending.extend([price] * int(self._counts[self._cursor]))
            self._cursor += 1
        self._emitted += 1
        return self._pending.pop(0)

    def remaining_slots(self) -> int:
        left = int(self._counts[self._cursor :].sum()) + len(self._pending)
        if self._max_emitted is not None:
            left = min(left, self._max_emitted - self._emitted)
        return max(0, left)
