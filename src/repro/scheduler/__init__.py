"""Fault-tolerant work-stealing shard execution.

The package's single process-fan-out path (ROADMAP item 3):
:func:`run_shards` splits work into shards pulled dynamically by a
persistent worker pool, with worker heartbeats, deadline-based straggler
speculation (first completion wins), crash detection with automatic
respawn and shard re-queue, poison-shard quarantine, and fsync'd
JSON-lines journals unified with
:class:`~repro.resilience.execution.SweepJournal` resume.
:func:`repro.sweep.run_sweep` and
:func:`repro.mapreduce.run_plan_grid` route ``executor="process"``
execution through here; seeded process-level chaos for it lives in
:class:`repro.resilience.faults.WorkerFaults`.
"""

from .journal import ShardJournal
from .pool import run_shards
from .types import SchedulerResult, SchedulerStats, Shard

__all__ = [
    "SchedulerResult",
    "SchedulerStats",
    "Shard",
    "ShardJournal",
    "run_shards",
]
