"""Crash-consistent shard journals.

A :class:`ShardJournal` is a :class:`~repro.resilience.execution.SweepJournal`
with durability turned all the way up: every record is flushed *and*
fsync'd before :meth:`record` returns, so a shard the scheduler reports
finished is finished on disk even if the driver is SIGKILLed one
instruction later.  Torn-tail tolerance (a crash mid-append leaves a
truncated final line, which resume skips with a warning and repairs)
comes from the base class, so driver-level sweep journals and scheduler
shard journals share one on-disk format and one resume path.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Union

from ..resilience.execution import SweepJournal

__all__ = ["ShardJournal"]


class ShardJournal(SweepJournal):
    """An fsync'd-by-default :class:`SweepJournal` for scheduler shards."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        *,
        signature: Optional[Dict[str, Any]] = None,
        fsync: bool = True,
    ):
        super().__init__(path, signature=signature, fsync=fsync)
