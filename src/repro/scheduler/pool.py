"""The work-stealing coordinator: dynamic shard dispatch over a pool.

:func:`run_shards` is the single process-fan-out path of the package:
:func:`repro.sweep.run_sweep` and :func:`repro.mapreduce.run_plan_grid`
both route their process execution through it.  Design points, each
forced by a failure mode the static pool could not survive:

* **Per-worker duplex pipes, parent-driven dispatch.**  A shared
  ``multiprocessing.Queue`` holds a cross-process lock; a worker
  SIGKILLed while holding it deadlocks everyone else.  Here the only
  shared state is the coordinator's memory — a dead worker costs one
  pipe EOF, never a lock.
* **Dynamic assignment.**  Workers pull shards one at a time, so a slow
  worker holds back exactly one shard, not a statically assigned slice.
* **Speculative re-dispatch.**  A running shard older than
  ``max(straggler_min_seconds, straggler_factor x median completed
  duration)`` gets one speculative copy on another worker; the first
  completion wins and the loser is dropped, so stragglers bound tail
  latency without ever changing results.
* **Crash respawn + re-queue.**  Pipe EOF (or a dead process) retires
  the worker, re-queues its in-flight shard, and respawns a fresh
  incarnation in the same slot.
* **Poison quarantine.**  A shard that fails on ``max_shard_failures``
  distinct worker incarnations is quarantined as an
  :class:`~repro.resilience.execution.ItemFailure` row instead of
  wedging the pool.  Every failure retires its incarnation, so the
  failure count is a distinct-incarnation count by construction.
* **Crash-consistent journals.**  Completed shards append to an fsync'd
  JSON-lines :class:`~repro.scheduler.journal.ShardJournal`; a SIGKILLed
  driver re-run loads it and recomputes only unfinished shards.

Results are assembled by shard index, never by completion order, so for
a pure shard function the output is bitwise identical to a serial run
regardless of the failure schedule — the invariant the chaos tests pin.
"""

from __future__ import annotations

import os
import time
from collections import deque
from multiprocessing import get_context
from multiprocessing.connection import Connection, wait
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..constants import (
    SCHED_HEARTBEAT_SECONDS,
    SCHED_MAX_SHARD_FAILURES,
    SCHED_STRAGGLER_FACTOR,
    SCHED_STRAGGLER_MIN_SECONDS,
)
from ..errors import SweepExecutionError
from ..resilience.execution import ItemFailure, SweepJournal
from .journal import ShardJournal
from .types import SchedulerResult, SchedulerStats, Shard
from .worker import worker_main

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..resilience.faults import WorkerFaults

__all__ = ["run_shards"]

#: Coordinator wake-up interval, seconds: the granularity of straggler
#: detection and liveness checks while no messages arrive.
_TICK_SECONDS = 0.05

#: Worker incarnation key: (pool slot, respawn epoch).
_Key = Tuple[int, int]


def _identity(value: Any) -> Any:
    return value


class _ShardState:
    """Mutable per-shard bookkeeping inside one run."""

    __slots__ = (
        "shard",
        "done",
        "quarantined",
        "running",
        "failed",
        "attempts",
        "speculated",
        "done_at",
        "last_error",
    )

    def __init__(self, shard: Shard):
        self.shard = shard
        self.done = False
        self.quarantined = False
        #: In-flight copies: incarnation key -> dispatch monotonic time.
        self.running: Dict[_Key, float] = {}
        #: Incarnations that failed this shard (crash, error or timeout).
        self.failed: Set[_Key] = set()
        self.attempts = 0
        self.speculated = False
        self.done_at: Optional[float] = None
        self.last_error: Tuple[str, str] = ("", "")

    @property
    def resolved(self) -> bool:
        return self.done or self.quarantined


class _Worker:
    """One live worker incarnation owned by the coordinator."""

    __slots__ = ("slot", "epoch", "process", "conn", "current", "last_seen")

    def __init__(self, slot: int, epoch: int, process: Any, conn: Connection):
        self.slot = slot
        self.epoch = epoch
        self.process = process
        self.conn = conn
        #: Shard index currently assigned, if any.
        self.current: Optional[int] = None
        self.last_seen = time.monotonic()

    @property
    def key(self) -> _Key:
        return (self.slot, self.epoch)

    @property
    def name(self) -> str:
        return f"w{self.slot}e{self.epoch}"


class _Coordinator:
    def __init__(
        self,
        fn: Callable[[Any], Any],
        shards: Sequence[Shard],
        *,
        max_workers: int,
        max_shard_failures: int,
        straggler_factor: float,
        straggler_min_seconds: float,
        heartbeat_seconds: float,
        speculate: bool,
        shard_timeout: Optional[float],
        journal: Optional[SweepJournal],
        serialize: Callable[[Any], Any],
        worker_faults: "Optional[WorkerFaults]",
    ):
        self.fn = fn
        self.states = {s.index: _ShardState(s) for s in shards}
        self.max_workers = max_workers
        self.max_shard_failures = max_shard_failures
        self.straggler_factor = straggler_factor
        self.straggler_min_seconds = straggler_min_seconds
        self.heartbeat_seconds = heartbeat_seconds
        self.speculate = speculate
        self.shard_timeout = shard_timeout
        self.journal = journal
        self.serialize = serialize
        self.worker_faults = worker_faults

        self.ctx = (
            get_context("fork")
            if "fork" in _start_methods()
            else get_context()
        )
        self.pending: Deque[int] = deque(s.index for s in shards)
        self.spec_queue: Deque[int] = deque()
        self.unresolved = len(self.states)
        self.results: Dict[int, Any] = {}
        self.failures: List[ItemFailure] = []
        self.durations: List[float] = []
        self.workers: Dict[int, _Worker] = {}
        self.epochs: Dict[int, int] = {}
        self.stats: Dict[str, int] = {
            "dispatched": 0,
            "speculated": 0,
            "duplicates_dropped": 0,
            "worker_crashes": 0,
            "workers_respawned": 0,
            "workers_reclaimed": 0,
            "quarantined": 0,
            "heartbeats": 0,
        }

    # -- worker lifecycle --------------------------------------------------
    def _spawn(self, slot: int) -> _Worker:
        epoch = self.epochs.get(slot, -1) + 1
        self.epochs[slot] = epoch
        plan = (
            self.worker_faults.plan(slot, epoch)
            if self.worker_faults is not None
            else None
        )
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        process = self.ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                slot,
                epoch,
                self.fn,
                self.heartbeat_seconds,
                plan,
            ),
            daemon=True,
            name=f"repro-sched-w{slot}e{epoch}",
        )
        process.start()
        # The parent must drop its copy of the child end or a dead child
        # never produces EOF on the parent's end.
        child_conn.close()
        worker = _Worker(slot, epoch, process, parent_conn)
        self.workers[slot] = worker
        return worker

    def _retire(self, worker: _Worker, *, respawn: bool) -> None:
        """Tear one incarnation down (and optionally refill its slot)."""
        self.workers.pop(worker.slot, None)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():  # pragma: no cover - stuck in kernel
            worker.process.kill()
            worker.process.join(timeout=1.0)
        if respawn and self.unresolved > 0:
            self._spawn(worker.slot)
            self.stats["workers_respawned"] += 1

    # -- failure accounting ------------------------------------------------
    def _fail_shard(
        self, worker: _Worker, index: int, error_type: str, message: str
    ) -> None:
        """One copy of ``index`` failed on ``worker``'s incarnation."""
        state = self.states[index]
        state.running.pop(worker.key, None)
        if state.resolved:
            return
        state.failed.add(worker.key)
        state.last_error = (error_type, message)
        if len(state.failed) >= self.max_shard_failures:
            state.quarantined = True
            self.unresolved -= 1
            self.stats["quarantined"] += 1
            self.failures.append(
                ItemFailure(
                    index=index,
                    label=state.shard.label,
                    error_type=error_type,
                    message=message,
                    attempts=state.attempts,
                )
            )
        elif not state.running and index not in self.pending:
            # No other copy in flight: back to the front of the queue so
            # recovery work preempts fresh work.
            self.pending.appendleft(index)

    def _on_crash(self, worker: _Worker) -> None:
        self.stats["worker_crashes"] += 1
        if worker.current is not None:
            self._fail_shard(
                worker,
                worker.current,
                "WorkerCrash",
                f"worker {worker.name} died while running shard "
                f"{worker.current}",
            )
        self._retire(worker, respawn=True)

    # -- message handling --------------------------------------------------
    def _on_message(self, worker: _Worker, message: tuple) -> None:
        worker.last_seen = time.monotonic()
        tag = message[0]
        if tag in ("hb", "ready"):
            if tag == "hb":
                self.stats["heartbeats"] += 1
            return
        if tag == "ok":
            _, index, result = message
            self._on_ok(worker, index, result)
        elif tag == "err":
            _, index, error_type, detail = message
            worker.current = None
            self._fail_shard(worker, index, error_type, detail)
            # An erroring incarnation is retired: the next attempt runs
            # on a fresh worker, making shard-failure counts distinct-
            # incarnation counts by construction.
            self._retire(worker, respawn=True)

    def _on_ok(self, worker: _Worker, index: int, result: Any) -> None:
        state = self.states[index]
        dispatched_at = state.running.pop(worker.key, None)
        worker.current = None
        if state.resolved:
            # A speculative (or post-quarantine) duplicate: first
            # completion already won; drop this copy unconditionally.
            self.stats["duplicates_dropped"] += 1
            return
        state.done = True
        state.done_at = time.monotonic()
        self.unresolved -= 1
        if dispatched_at is not None:
            self.durations.append(state.done_at - dispatched_at)
        self.results[index] = result
        if self.journal is not None:
            self.journal.record(state.shard.key, self.serialize(result))

    # -- dispatch ----------------------------------------------------------
    def _next_shard_for(self, worker: _Worker) -> Optional[Tuple[int, bool]]:
        """Pop the next shard this incarnation may run, or ``None``.

        Originals before speculative copies; a shard is never handed to
        an incarnation that already failed it, nor a speculative copy to
        the incarnation already running the original.
        """
        for queue, speculative in ((self.pending, False), (self.spec_queue, True)):
            for _ in range(len(queue)):
                index = queue.popleft()
                state = self.states[index]
                if state.resolved:
                    continue  # stale queue entry
                if worker.key in state.failed or worker.key in state.running:
                    queue.append(index)
                    continue
                return index, speculative
        return None

    def _dispatch_idle(self) -> int:
        dispatched = 0
        for worker in list(self.workers.values()):
            if worker.current is not None:
                continue
            pick = self._next_shard_for(worker)
            if pick is None:
                continue
            index, speculative = pick
            state = self.states[index]
            try:
                worker.conn.send(("shard", index, state.shard.payload))
            except (BrokenPipeError, OSError):
                # Died between ticks; requeue and let crash handling run.
                queue = self.spec_queue if speculative else self.pending
                queue.appendleft(index)
                self._on_crash(worker)
                continue
            worker.current = index
            state.running[worker.key] = time.monotonic()
            state.attempts += 1
            self.stats["dispatched"] += 1
            if speculative:
                self.stats["speculated"] += 1
            dispatched += 1
        return dispatched

    # -- periodic checks ---------------------------------------------------
    def _straggler_deadline(self) -> float:
        if not self.durations:
            return self.straggler_min_seconds
        ordered = sorted(self.durations)
        median = ordered[len(ordered) // 2]
        return max(self.straggler_min_seconds, self.straggler_factor * median)

    def _check_stragglers(self, now: float) -> None:
        if not self.speculate:
            return
        deadline = self._straggler_deadline()
        for state in self.states.values():
            if state.resolved or state.speculated or not state.running:
                continue
            if len(state.running) > 1:
                continue  # a speculative copy is already in flight
            (started,) = state.running.values()
            if now - started > deadline:
                state.speculated = True
                self.spec_queue.append(state.shard.index)

    def _check_timeouts(self, now: float) -> None:
        if self.shard_timeout is None:
            return
        for worker in list(self.workers.values()):
            index = worker.current
            if index is None:
                continue
            state = self.states[index]
            started = state.running.get(worker.key)
            if started is None or now - started <= self.shard_timeout:
                continue
            worker.current = None
            self._fail_shard(
                worker,
                index,
                "TimeoutError",
                f"no result within {self.shard_timeout:g}s",
            )
            self._retire(worker, respawn=True)

    def _check_liveness(self) -> None:
        for worker in list(self.workers.values()):
            if not worker.process.is_alive():
                self._on_crash(worker)

    def _reclaim_losers(self, now: float) -> None:
        """Free workers still grinding on shards another copy finished.

        Only worth a respawn when queued work is actually waiting for a
        slot; otherwise the final teardown collects them.
        """
        if not (self.pending or self.spec_queue):
            return
        deadline = self._straggler_deadline()
        for worker in list(self.workers.values()):
            index = worker.current
            if index is None:
                continue
            state = self.states[index]
            if not state.resolved or state.done_at is None:
                continue
            if now - state.done_at > deadline:
                self.stats["workers_reclaimed"] += 1
                self._retire(worker, respawn=True)

    # -- main loop ---------------------------------------------------------
    def run(self) -> None:
        n_workers = min(self.max_workers, max(1, self.unresolved))
        for slot in range(n_workers):
            self._spawn(slot)
        try:
            while self.unresolved > 0:
                self._dispatch_idle()
                by_conn = {w.conn: w for w in self.workers.values()}
                try:
                    ready = wait(list(by_conn), timeout=_TICK_SECONDS)
                except OSError:  # pragma: no cover - raced a closing pipe
                    ready = []
                for conn in ready:
                    worker = by_conn.get(conn)  # type: ignore[arg-type]
                    if worker is None or self.workers.get(worker.slot) is not worker:
                        continue  # retired while iterating
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        self._on_crash(worker)
                        continue
                    self._on_message(worker, message)
                now = time.monotonic()
                self._check_liveness()
                self._check_timeouts(now)
                self._check_stragglers(now)
                self._reclaim_losers(now)
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        for worker in self.workers.values():
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in list(self.workers.values()):
            self._retire(worker, respawn=False)


def _start_methods() -> Sequence[str]:
    import multiprocessing

    return multiprocessing.get_all_start_methods()


def run_shards(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    max_workers: Optional[int] = None,
    keys: Optional[Sequence[str]] = None,
    labels: Optional[Sequence[str]] = None,
    journal: "Union[None, str, os.PathLike, SweepJournal]" = None,
    signature: Optional[Dict[str, Any]] = None,
    serialize: Callable[[Any], Any] = _identity,
    deserialize: Callable[[Any], Any] = _identity,
    strict: bool = True,
    max_shard_failures: Optional[int] = None,
    straggler_factor: Optional[float] = None,
    straggler_min_seconds: Optional[float] = None,
    heartbeat_seconds: Optional[float] = None,
    speculate: bool = True,
    shard_timeout: Optional[float] = None,
    worker_faults: "Optional[WorkerFaults]" = None,
) -> SchedulerResult:
    """Run ``fn`` over ``payloads`` on a fault-tolerant worker pool.

    Each payload becomes one shard, pulled dynamically by a pool of
    ``max_workers`` persistent processes.  The returned
    :class:`~repro.scheduler.types.SchedulerResult` lists results in
    shard order; shards that failed on ``max_shard_failures`` distinct
    worker incarnations are quarantined as
    :class:`~repro.resilience.execution.ItemFailure` rows (``None`` in
    ``results``) — or, with ``strict=True`` (the default), raise
    :class:`~repro.errors.SweepExecutionError`.

    ``journal`` (a path or an existing
    :class:`~repro.resilience.execution.SweepJournal`) enables
    crash-consistent resume: completed shards are appended — fsync'd —
    under their ``keys``, and a re-run returns journaled results without
    recomputing them.  ``serialize``/``deserialize`` convert results
    to/from JSON-safe payloads.

    ``straggler_factor`` / ``straggler_min_seconds`` /
    ``heartbeat_seconds`` / ``max_shard_failures`` default to the
    ``REPRO_SCHED_*`` registry entries.  ``speculate=False`` disables
    straggler re-dispatch (crash recovery stays on).  ``shard_timeout``
    kills and respawns a worker whose shard copy exceeds it, counting a
    failure against the shard.  ``worker_faults`` injects seeded
    process-level chaos (see
    :class:`~repro.resilience.faults.WorkerFaults`).
    """
    payloads = list(payloads)
    n = len(payloads)
    if keys is None:
        keys = [str(i) for i in range(n)]
    if labels is None:
        labels = [f"shard {i}" for i in range(n)]
    if len(keys) != n or len(labels) != n:
        raise SweepExecutionError(
            f"got {len(keys)} keys / {len(labels)} labels for {n} shards"
        )
    if max_workers is None:
        max_workers = 1
    elif max_workers < 1:
        raise SweepExecutionError(
            f"max_workers must be >= 1, got {max_workers!r}"
        )
    if max_shard_failures is None:
        max_shard_failures = SCHED_MAX_SHARD_FAILURES.get()
    if max_shard_failures < 1:
        raise SweepExecutionError(
            f"max_shard_failures must be >= 1, got {max_shard_failures!r}"
        )
    if straggler_factor is None:
        straggler_factor = SCHED_STRAGGLER_FACTOR.get()
    if straggler_min_seconds is None:
        straggler_min_seconds = SCHED_STRAGGLER_MIN_SECONDS.get()
    if heartbeat_seconds is None:
        heartbeat_seconds = SCHED_HEARTBEAT_SECONDS.get()
    if shard_timeout is not None and shard_timeout <= 0:
        raise SweepExecutionError(
            f"shard_timeout must be positive, got {shard_timeout!r}"
        )

    if journal is not None and not isinstance(journal, SweepJournal):
        journal = ShardJournal(journal, signature=signature)

    results: List[Optional[Any]] = [None] * n
    reused: List[int] = []
    shards: List[Shard] = []
    if journal is not None:
        finished = journal.load()
    else:
        finished = {}
    for i, payload in enumerate(payloads):
        if keys[i] in finished:
            results[i] = deserialize(finished[keys[i]])
            reused.append(i)
        else:
            shards.append(Shard(index=i, payload=payload, key=keys[i], label=labels[i]))

    failures: Tuple[ItemFailure, ...] = ()
    stats_raw: Dict[str, int] = {}
    if shards:
        coordinator = _Coordinator(
            fn,
            shards,
            max_workers=max_workers,
            max_shard_failures=max_shard_failures,
            straggler_factor=straggler_factor,
            straggler_min_seconds=straggler_min_seconds,
            heartbeat_seconds=heartbeat_seconds,
            speculate=speculate,
            shard_timeout=shard_timeout,
            journal=journal,
            serialize=serialize,
            worker_faults=worker_faults,
        )
        coordinator.run()
        for index, value in coordinator.results.items():
            results[index] = value
        failures = tuple(sorted(coordinator.failures, key=lambda f: f.index))
        stats_raw = coordinator.stats

    stats = SchedulerStats(
        n_shards=n,
        reused=len(reused),
        dispatched=stats_raw.get("dispatched", 0),
        speculated=stats_raw.get("speculated", 0),
        duplicates_dropped=stats_raw.get("duplicates_dropped", 0),
        worker_crashes=stats_raw.get("worker_crashes", 0),
        workers_respawned=stats_raw.get("workers_respawned", 0),
        workers_reclaimed=stats_raw.get("workers_reclaimed", 0),
        quarantined=stats_raw.get("quarantined", 0),
        heartbeats=stats_raw.get("heartbeats", 0),
    )
    if strict and failures:
        first = failures[0]
        raise SweepExecutionError(
            f"{len(failures)} shard(s) quarantined; first: {first}"
        )
    return SchedulerResult(
        results=results,
        failures=failures,
        reused=tuple(reused),
        stats=stats,
    )
