"""Typed records shared by the work-stealing scheduler's two halves.

The coordinator (:mod:`repro.scheduler.pool`) and the worker entry point
(:mod:`repro.scheduler.worker`) communicate over duplex pipes with small
tagged tuples; everything the caller sees afterwards is one of the frozen
dataclasses below.  Failures reuse
:class:`repro.resilience.execution.ItemFailure` so partial scheduler runs
surface exactly like partial resilient sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..resilience.execution import ItemFailure

__all__ = ["Shard", "SchedulerStats", "SchedulerResult"]


@dataclass(frozen=True)
class Shard:
    """One schedulable unit of work.

    ``payload`` is whatever the shard function consumes; ``key`` names
    the shard in journals (stable across driver restarts) and ``label``
    names it in failure records.
    """

    index: int
    payload: Any
    key: str
    label: str


@dataclass(frozen=True)
class SchedulerStats:
    """Counters describing how one :func:`~repro.scheduler.run_shards`
    call actually played out.

    ``speculated``/``duplicates_dropped`` trace straggler re-dispatch
    (first completion wins; the loser's result is discarded, never
    merged).  ``worker_crashes`` counts pipe EOFs and dead processes,
    ``workers_respawned`` the replacements, ``workers_reclaimed`` the
    workers killed because they were still grinding on a shard another
    copy had already finished.
    """

    n_shards: int = 0
    reused: int = 0
    dispatched: int = 0
    speculated: int = 0
    duplicates_dropped: int = 0
    worker_crashes: int = 0
    workers_respawned: int = 0
    workers_reclaimed: int = 0
    quarantined: int = 0
    heartbeats: int = 0

    def as_dict(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "reused": self.reused,
            "dispatched": self.dispatched,
            "speculated": self.speculated,
            "duplicates_dropped": self.duplicates_dropped,
            "worker_crashes": self.worker_crashes,
            "workers_respawned": self.workers_respawned,
            "workers_reclaimed": self.workers_reclaimed,
            "quarantined": self.quarantined,
            "heartbeats": self.heartbeats,
        }


@dataclass(frozen=True)
class SchedulerResult:
    """Outcome of one scheduler run over a batch of shards.

    ``results`` is in shard order — assembly never depends on completion
    order, which is what keeps scheduler output bitwise identical to a
    serial run for pure shard functions.  Quarantined shards hold
    ``None`` and appear in ``failures``.
    """

    results: List[Optional[Any]]
    failures: Tuple[ItemFailure, ...] = ()
    #: Shard indices served from the journal instead of recomputed.
    reused: Tuple[int, ...] = ()
    stats: SchedulerStats = field(default_factory=SchedulerStats)

    @property
    def ok(self) -> bool:
        return not self.failures
