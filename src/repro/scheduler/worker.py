"""The scheduler's worker-process entry point.

One worker is one long-lived process running :func:`worker_main`: it
announces itself, starts a heartbeat thread, then loops pulling shard
assignments off its pipe, running the shard function, and sending the
result back.  All messages are small tagged tuples; the connection is
shared between the main loop and the heartbeat thread, so every send
goes through one lock.

Chaos hooks live here too: a :class:`~repro.resilience.faults.WorkerFaultPlan`
(computed by the parent, per worker epoch, from a seeded injector) can
delay the worker's start, stall it before a given shard, or kill it
outright with ``os._exit`` — the same hard death a SIGKILL or an OOM
kill produces, which is exactly what the coordinator's crash handling
must survive.
"""

from __future__ import annotations

import os
import threading
import time
from multiprocessing.connection import Connection
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..resilience.faults import WorkerFaultPlan

__all__ = ["worker_main"]


def worker_main(
    conn: Connection,
    worker_id: int,
    epoch: int,
    fn: Callable[[Any], Any],
    heartbeat_seconds: float,
    plan: "Optional[WorkerFaultPlan]" = None,
) -> None:
    """Run shards from ``conn`` until told to stop (or chaos kills us).

    The worker never raises out of this function: shard exceptions are
    reported as ``("err", ...)`` messages and the loop continues, so one
    poison shard cannot take the worker (and its warm caches) down.
    """
    send_lock = threading.Lock()
    stop = threading.Event()

    def send(message: tuple) -> None:
        try:
            with send_lock:
                conn.send(message)
        except (BrokenPipeError, OSError):  # parent died; nothing to do
            stop.set()

    def heartbeat() -> None:
        while not stop.wait(heartbeat_seconds):
            send(("hb", worker_id))

    if plan is not None and plan.slow_start_seconds > 0:
        time.sleep(plan.slow_start_seconds)

    beater = threading.Thread(target=heartbeat, daemon=True)
    beater.start()
    send(("ready", worker_id, epoch))

    shard_seq = 0  # worker-local count of assignments, drives chaos plans
    try:
        while not stop.is_set():
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            tag = message[0]
            if tag == "stop":
                break
            if tag != "shard":  # pragma: no cover - protocol guard
                continue
            _, shard_index, payload = message
            if plan is not None:
                if plan.kill_on_shard is not None and shard_seq == plan.kill_on_shard:
                    # A hard death: no cleanup, no flush — indistinguishable
                    # from SIGKILL as far as the coordinator can tell.
                    os._exit(1)
                if (
                    plan.stall_on_shard is not None
                    and shard_seq == plan.stall_on_shard
                    and plan.stall_seconds > 0
                ):
                    time.sleep(plan.stall_seconds)
            shard_seq += 1
            try:
                result = fn(payload)
            except BaseException as exc:
                send(("err", shard_index, type(exc).__name__, str(exc)))
            else:
                send(("ok", shard_index, result))
    finally:
        stop.set()
        try:
            from ..sweep.shm import close_stacks

            close_stacks()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
