"""Live bid-decision serving on precomputed bid tables.

The paper's client (Figure 1) recomputes its bid from scratch on every
question; this package turns the same decision path into a service:

* :mod:`repro.serve.tables` — versioned, immutable bid-table artifacts
  precomputed over job-parameter grids (bitwise-identical to the batch
  client on grid points).
* :mod:`repro.serve.ingest` — the price-ingest loop advancing per-market
  state and rebuilding tables off the hot path, behind a generation
  counter.
* :mod:`repro.serve.cache` — the tiered decision cache (in-process LRU
  over an optional persistent file layer), invalidated by table version.
* :mod:`repro.serve.service` — the asyncio daemon speaking JSON lines
  over TCP (``repro-bid serve``), degrading to the on-demand fallback
  when tables go stale or the market faults.
* :mod:`repro.serve.loadgen` — the deterministic load generator behind
  the serving benchmarks and the CI smoke gate.

See ``docs/serving.md`` for the architecture, the wire protocol and the
degradation matrix.
"""

from .cache import CacheStats, DecisionCache
from .ingest import IngestLoop, MarketState
from .loadgen import LoadReport, build_requests, latency_histogram, run_loadgen
from .service import BidService, ServiceStats, start_server
from .tables import (
    BidTable,
    BidTableSet,
    TableGrid,
    build_bid_table,
    build_table_set,
    default_grid,
)

__all__ = [
    "BidService",
    "BidTable",
    "BidTableSet",
    "CacheStats",
    "DecisionCache",
    "IngestLoop",
    "LoadReport",
    "MarketState",
    "ServiceStats",
    "TableGrid",
    "build_bid_table",
    "build_requests",
    "build_table_set",
    "default_grid",
    "latency_histogram",
    "run_loadgen",
    "start_server",
]
