"""Tiered decision cache: in-process LRU over an optional file layer.

Responses are keyed by the *request bucket* (the job parameters, strategy
and percentile that determine the answer) and stamped with the table
version that produced them.  A version mismatch on read counts as
*stale*: the entry is evicted and the caller recomputes against the
current generation, so a table rebuild implicitly invalidates every
cached decision without a scan.

The memory tier is a bounded ``OrderedDict`` LRU (capacity from the
``REPRO_SERVE_CACHE_SIZE`` registry entry).  The optional file tier
persists entries as JSON (via :mod:`repro.serve.protocol`, whose float
round-trip is exact) so a restarted daemon starts warm; it is
best-effort — unreadable or corrupt files count as misses, never errors.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..constants import SERVE_CACHE_SIZE
from ..core.types import DecisionRequest, DecisionResponse
from ..errors import ServeError
from .protocol import decision_from_wire, decision_to_wire

__all__ = ["CacheStats", "DecisionCache"]


@dataclass(frozen=True)
class CacheStats:
    """Lifetime counters of one :class:`DecisionCache`."""

    memory_hits: int = 0
    file_hits: int = 0
    misses: int = 0
    stale: int = 0
    evictions: int = 0
    #: File-tier entries that existed but could not be read or parsed;
    #: each was evicted and also counted under ``misses``.
    corrupt: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.file_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.stale

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "file_hits": self.file_hits,
            "misses": self.misses,
            "stale": self.stale,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }


def _bucket_key(request: DecisionRequest) -> str:
    """Content key of the fields that determine a decision.

    ``repr`` of floats is exact, so two requests share a key iff the
    decision path sees identical inputs.  ``degrade`` is excluded: the
    serving layer always degrades rather than raising, and
    ``instance_type`` routing happens before the cache.
    """
    job = request.job
    raw = repr(
        (
            job.execution_time,
            job.recovery_time,
            job.slot_length,
            request.strategy.value,
            request.percentile,
            request.max_variance,
            request.cvar_alpha,
        )
    )
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()


class DecisionCache:
    """Version-checked request→response cache with two tiers.

    Parameters
    ----------
    capacity:
        Memory-tier bound; defaults to the registered
        ``REPRO_SERVE_CACHE_SIZE`` value (re-read at construction).
    directory:
        Optional file-tier root.  Created on first write; one JSON file
        per bucket key.
    """

    def __init__(
        self,
        *,
        capacity: Optional[int] = None,
        directory: Optional[Union[str, Path]] = None,
    ):
        if capacity is None:
            capacity = SERVE_CACHE_SIZE.get()
        if capacity < 1:
            raise ServeError(f"cache capacity must be >= 1, got {capacity!r}")
        self._capacity = int(capacity)
        self._directory = Path(directory) if directory is not None else None
        self._memory: "OrderedDict[str, Tuple[str, DecisionResponse]]" = OrderedDict()
        self._memory_hits = 0
        self._file_hits = 0
        self._misses = 0
        self._stale = 0
        self._evictions = 0
        self._corrupt = 0

    # -- lookup ------------------------------------------------------------
    def get(
        self, request: DecisionRequest, table_version: str
    ) -> Optional[DecisionResponse]:
        """The cached response for ``request`` under ``table_version``.

        Returns ``None`` on miss.  Entries from superseded table versions
        are evicted and counted as stale.  Hits are re-stamped with the
        tier (``"memory"`` / ``"file"``) that answered.
        """
        key = _bucket_key(request)
        entry = self._memory.get(key)
        if entry is not None:
            version, response = entry
            if version == table_version:
                self._memory.move_to_end(key)
                self._memory_hits += 1
                return response.with_serving(
                    table_version=response.table_version,
                    cache_tier="memory",
                    degradation_reason=response.degradation_reason,
                )
            del self._memory[key]
            self._stale += 1
            self._drop_file(key)
            return None
        file_entry = self._read_file(key, request)
        if file_entry is not None:
            version, response = file_entry
            if version == table_version:
                self._file_hits += 1
                self._remember(key, version, response)
                return response.with_serving(
                    table_version=response.table_version,
                    cache_tier="file",
                    degradation_reason=response.degradation_reason,
                )
            self._stale += 1
            self._drop_file(key)
            return None
        self._misses += 1
        return None

    def put(self, request: DecisionRequest, response: DecisionResponse) -> None:
        """Remember ``response`` under its own table version."""
        if response.table_version is None:
            raise ServeError("only version-stamped responses are cacheable")
        key = _bucket_key(request)
        self._remember(key, response.table_version, response)
        self._write_file(key, request, response)

    def stats(self) -> CacheStats:
        return CacheStats(
            memory_hits=self._memory_hits,
            file_hits=self._file_hits,
            misses=self._misses,
            stale=self._stale,
            evictions=self._evictions,
            corrupt=self._corrupt,
        )

    def clear(self) -> None:
        """Drop the memory tier (counters and files survive)."""
        self._memory.clear()

    # -- memory tier -------------------------------------------------------
    def _remember(self, key: str, version: str, response: DecisionResponse) -> None:
        self._memory[key] = (version, response)
        self._memory.move_to_end(key)
        while len(self._memory) > self._capacity:
            self._memory.popitem(last=False)
            self._evictions += 1

    # -- file tier ---------------------------------------------------------
    def _file_path(self, key: str) -> Optional[Path]:
        if self._directory is None:
            return None
        return self._directory / f"{key}.json"

    def _write_file(
        self, key: str, request: DecisionRequest, response: DecisionResponse
    ) -> None:
        path = self._file_path(key)
        if path is None:
            return
        payload = {
            "table_version": response.table_version,
            "cache_tier": response.cache_tier,
            "degradation_reason": response.degradation_reason,
            "decision": decision_to_wire(response.decision),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(path)
        except OSError:
            # Best effort: a read-only or full disk degrades to memory-only.
            return

    def _read_file(
        self, key: str, request: DecisionRequest
    ) -> Optional[Tuple[str, DecisionResponse]]:
        path = self._file_path(key)
        if path is None or not path.exists():
            return None
        # From here on the entry *exists*: any failure to read or parse
        # it is corruption, not a plain miss — evict the bad file (so it
        # is rewritten on the next put) and bump the corruption counter,
        # never propagate the exception.
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            version = payload["table_version"]
            decision = decision_from_wire(payload["decision"])
        except (OSError, ValueError, KeyError, TypeError, ServeError):
            self._corrupt += 1
            self._drop_file(key)
            return None
        if not isinstance(version, str):
            self._corrupt += 1
            self._drop_file(key)
            return None
        response = DecisionResponse(
            decision=decision,
            request=request,
            table_version=version,
            cache_tier=payload.get("cache_tier"),
            degradation_reason=payload.get("degradation_reason"),
        )
        return version, response

    def _drop_file(self, key: str) -> None:
        path = self._file_path(key)
        if path is None:
            return
        try:
            path.unlink(missing_ok=True)
        except OSError:
            return
