"""Price ingest: advancing market state and rebuilding bid tables.

:class:`MarketState` is the synchronous core — a rolling price window fed
one slot at a time from any :class:`~repro.market.price_sources.PriceSource`
(replayed traces, IID draws from a fitted distribution, or a
fault-injecting :class:`~repro.resilience.faults.FaultyPriceSource`).
Every ``rebuild_every`` ingested slots it recomputes the bid tables from
the current window and *publishes* the new generation with a single
attribute assignment, so readers on the request hot path never block and
never observe a half-built table: they either see the old generation or
the new one.

:class:`IngestLoop` is the thin asyncio wrapper the daemon runs: it pulls
slots on an interval and pushes the (CPU-bound) rebuild off the event
loop into a worker thread, publishing the result back on the loop.

Staleness is measured in *ingest slots*, not wall-clock time — the serve
layer is deterministic under replay, and a paused market should degrade
the same way in a test as in production.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional

import numpy as np

from ..constants import HISTORY_WINDOW_DAYS, SLOTS_PER_DAY
from ..errors import FaultError, MarketError, ServeError
from ..market.price_sources import PriceSource
from ..traces.history import SpotPriceHistory
from .tables import BidTableSet, TableGrid, build_table_set

__all__ = ["MarketState", "IngestLoop"]

#: Default rolling-window length: the two-month history Amazon exposes.
DEFAULT_WINDOW_SLOTS: int = HISTORY_WINDOW_DAYS * SLOTS_PER_DAY

#: Default rebuild cadence, in ingested slots (one hour of 5-minute slots).
DEFAULT_REBUILD_EVERY: int = 12


class MarketState:
    """Rolling market view and table generations for one instance type.

    Parameters
    ----------
    source:
        Where new per-slot prices come from.  Exhaustion or injected
        faults (:class:`~repro.errors.MarketError`,
        :class:`~repro.errors.FaultError`) mark the state *faulted*; the
        service then degrades to the on-demand fallback instead of
        crashing.
    initial_history:
        The bootstrap price window (e.g. the two-month history download);
        also fixes the slot length and instance-type label.
    ondemand_price:
        ``π̄`` for the market, the feasibility ceiling of every rebuild.
    window_slots:
        Rolling-window bound; old slots fall off as new ones arrive.
    rebuild_every:
        Ingested-slot cadence at which :meth:`rebuild_due` turns true.
    grid:
        Table grid passed through to :func:`build_table_set`.
    """

    def __init__(
        self,
        source: PriceSource,
        *,
        initial_history: SpotPriceHistory,
        ondemand_price: float,
        window_slots: int = DEFAULT_WINDOW_SLOTS,
        rebuild_every: int = DEFAULT_REBUILD_EVERY,
        grid: Optional[TableGrid] = None,
    ):
        if window_slots < 2:
            raise ServeError(f"window_slots must be >= 2, got {window_slots!r}")
        if rebuild_every < 1:
            raise ServeError(f"rebuild_every must be >= 1, got {rebuild_every!r}")
        self._source = source
        self._ondemand_price = float(ondemand_price)
        self._window_slots = int(window_slots)
        self._rebuild_every = int(rebuild_every)
        self._grid = grid
        self._slot_length = float(initial_history.slot_length)
        self._instance_type = initial_history.instance_type
        self._prices: List[float] = [
            float(p) for p in initial_history.prices[-window_slots:]
        ]
        self.slots_ingested: int = 0
        self._rebuilt_at: int = 0
        self.faulted: bool = False
        self.fault_reason: Optional[str] = None
        self._tables: BidTableSet = self.build_snapshot(generation=0)

    # -- read side (request hot path; never blocks) -----------------------
    @property
    def tables(self) -> BidTableSet:
        """The current table generation (atomic attribute read)."""
        return self._tables

    @property
    def ondemand_price(self) -> float:
        return self._ondemand_price

    @property
    def instance_type(self) -> Optional[str]:
        return self._instance_type

    def history(self) -> SpotPriceHistory:
        """The current rolling window as an immutable history snapshot."""
        return SpotPriceHistory(
            prices=np.asarray(self._prices, dtype=float),
            slot_length=self._slot_length,
            instance_type=self._instance_type,
        )

    # -- write side (ingest loop) -----------------------------------------
    def observe(self, price: float) -> None:
        """Append one slot's price to the rolling window."""
        self._prices.append(float(price))
        if len(self._prices) > self._window_slots:
            del self._prices[: len(self._prices) - self._window_slots]
        self.slots_ingested += 1

    def advance(self, n_slots: int = 1) -> int:
        """Pull up to ``n_slots`` prices from the source.

        Returns the number actually ingested.  A :class:`MarketError` or
        :class:`FaultError` from the source marks the state faulted and
        stops the pull; it is *not* re-raised — degradation is the
        service's job, not the ingest loop's.
        """
        ingested = 0
        for _ in range(n_slots):
            try:
                price = self._source.next_price()
            except (MarketError, FaultError) as exc:
                self.faulted = True
                self.fault_reason = str(exc)
                break
            self.observe(price)
            ingested += 1
        return ingested

    def clear_fault(self) -> None:
        """Reset the fault latch (e.g. after swapping the source)."""
        self.faulted = False
        self.fault_reason = None

    def rebuild_due(self) -> bool:
        """Whether enough slots arrived since the last published rebuild."""
        return self.slots_ingested - self._rebuilt_at >= self._rebuild_every

    def build_snapshot(self, *, generation: Optional[int] = None) -> BidTableSet:
        """Build (but do not publish) a table set from the current window.

        Pure with respect to the published state — safe to run on a
        worker thread while requests keep reading the old generation.
        """
        if generation is None:
            generation = self._tables.generation + 1
        return build_table_set(
            self.history(),
            ondemand_price=self._ondemand_price,
            grid=self._grid,
            built_at_slot=self.slots_ingested,
            generation=generation,
        )

    def publish(self, tables: BidTableSet) -> None:
        """Swap in a new generation (single atomic assignment)."""
        self._tables = tables
        self._rebuilt_at = tables.built_at_slot

    def rebuild(self) -> BidTableSet:
        """Synchronous build-and-publish; returns the new generation."""
        tables = self.build_snapshot()
        self.publish(tables)
        return tables


class IngestLoop:
    """Asyncio driver: ingest slots, rebuild tables off the event loop."""

    def __init__(self, state: MarketState, *, interval: float = 0.0):
        if interval < 0:
            raise ServeError(f"interval must be non-negative, got {interval!r}")
        self.state = state
        self.interval = float(interval)
        self.rebuilds: int = 0

    async def step(self) -> int:
        """Ingest one slot; rebuild and publish if the cadence is due."""
        ingested = self.state.advance(1)
        if self.state.rebuild_due():
            tables = await asyncio.to_thread(self.state.build_snapshot)
            self.state.publish(tables)
            self.rebuilds += 1
        return ingested

    async def run(self, *, max_slots: Optional[int] = None) -> None:
        """Ingest until the source faults or ``max_slots`` slots arrive.

        ``interval`` seconds of sleep separate the pulls (zero in tests
        and replay mode, the slot length in live deployments).
        """
        done = 0
        while max_slots is None or done < max_slots:
            ingested = await self.step()
            done += ingested
            if ingested == 0:
                break
            if self.interval > 0:
                await asyncio.sleep(self.interval)
