"""Deterministic load generation against the decision service.

The generator builds a seeded request mix (a configurable fraction lands
exactly on table grid points, the rest falls between them), opens a few
pipelined TCP connections, and measures per-request latency with
``time.perf_counter``.  The report carries p50/p99 latency, sustained
QPS, an error count and a fixed-bucket latency histogram — the artifacts
the CI smoke job and the serving benchmarks publish.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.types import DecisionRequest, JobSpec, Strategy
from ..errors import ServeError
from .protocol import decode_line, encode_line, request_to_wire
from .tables import TableGrid

__all__ = ["LoadReport", "build_requests", "run_loadgen", "latency_histogram"]

#: Histogram bucket edges, in milliseconds (log-ish coverage to 1 s).
HISTOGRAM_EDGES_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0,
)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = int(round((q / 100.0) * (len(sorted_values) - 1)))
    return sorted_values[rank]


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run."""

    n_requests: int
    errors: int
    duration_s: float
    latencies_ms: Tuple[float, ...]

    @property
    def qps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.n_requests / self.duration_s

    @property
    def p50_ms(self) -> float:
        return _percentile(sorted(self.latencies_ms), 50.0)

    @property
    def p99_ms(self) -> float:
        return _percentile(sorted(self.latencies_ms), 99.0)

    def histogram(self) -> Dict[str, int]:
        return latency_histogram(self.latencies_ms)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "n_requests": self.n_requests,
            "errors": self.errors,
            "duration_s": self.duration_s,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "histogram_ms": self.histogram(),
        }


def latency_histogram(latencies_ms: Sequence[float]) -> Dict[str, int]:
    """Fixed-bucket counts keyed by upper edge (``"le_<ms>"``)."""
    edges = np.asarray(HISTOGRAM_EDGES_MS)
    counts = np.zeros(edges.size + 1, dtype=int)
    for value in latencies_ms:
        counts[int(np.searchsorted(edges, value, side="left"))] += 1
    histogram = {
        f"le_{edge:g}": int(counts[idx]) for idx, edge in enumerate(edges)
    }
    histogram["inf"] = int(counts[-1])
    return histogram


def build_requests(
    n_requests: int,
    *,
    grid: TableGrid,
    slot_length: float,
    rng: np.random.Generator,
    on_grid_fraction: float = 0.5,
    strategies: Tuple[Strategy, ...] = (Strategy.PERSISTENT, Strategy.ONE_TIME),
) -> List[DecisionRequest]:
    """A seeded request mix over (and between) the table's grid points.

    ``on_grid_fraction`` of the requests reuse exact grid coordinates
    (these must be answered bitwise-identically to the batch client);
    the remainder samples uniformly inside the gridded ranges, exercising
    the snapping path.
    """
    if n_requests < 1:
        raise ServeError(f"n_requests must be >= 1, got {n_requests!r}")
    if not 0.0 <= on_grid_fraction <= 1.0:
        raise ServeError(
            f"on_grid_fraction must be within [0, 1], got {on_grid_fraction!r}"
        )
    ts_axis = grid.execution_times
    tr_axis = grid.recovery_times
    requests: List[DecisionRequest] = []
    for _ in range(n_requests):
        strategy = strategies[int(rng.integers(len(strategies)))]
        if rng.random() < on_grid_fraction:
            ts = ts_axis[int(rng.integers(len(ts_axis)))]
            tr = tr_axis[int(rng.integers(len(tr_axis)))]
        else:
            ts = float(rng.uniform(ts_axis[0], ts_axis[-1]))
            tr = float(rng.uniform(tr_axis[0], tr_axis[-1]))
        requests.append(
            DecisionRequest(
                job=JobSpec(
                    execution_time=ts, recovery_time=tr, slot_length=slot_length
                ),
                strategy=strategy,
                degrade=True,
            )
        )
    return requests


async def _drive_connection(
    host: str,
    port: int,
    requests: Sequence[DecisionRequest],
    *,
    pipeline: int,
) -> Tuple[List[float], int]:
    """Send one connection's share, ``pipeline`` requests in flight."""
    reader, writer = await asyncio.open_connection(host, port)
    latencies: List[float] = []
    errors = 0
    try:
        sent_at: List[float] = []
        next_to_send = 0
        next_to_read = 0
        while next_to_read < len(requests):
            while (
                next_to_send < len(requests)
                and next_to_send - next_to_read < pipeline
            ):
                sent_at.append(time.perf_counter())
                writer.write(encode_line(request_to_wire(requests[next_to_send])))
                next_to_send += 1
            await writer.drain()
            line = await reader.readline()
            if not line:
                errors += len(requests) - next_to_read
                break
            elapsed_ms = (time.perf_counter() - sent_at[next_to_read]) * 1e3
            try:
                payload = decode_line(line)
            except ServeError:
                payload = {"ok": False}
            if payload.get("ok"):
                latencies.append(elapsed_ms)
            else:
                errors += 1
            next_to_read += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return latencies, errors


async def run_loadgen(
    host: str,
    port: int,
    requests: Sequence[DecisionRequest],
    *,
    connections: int = 4,
    pipeline: int = 32,
) -> LoadReport:
    """Fire ``requests`` at a running service and measure latency.

    The request list is split round-robin over ``connections`` pipelined
    TCP connections; the report aggregates every connection's latencies
    and errors over the shared wall-clock window.
    """
    if connections < 1:
        raise ServeError(f"connections must be >= 1, got {connections!r}")
    if pipeline < 1:
        raise ServeError(f"pipeline must be >= 1, got {pipeline!r}")
    shares: List[List[DecisionRequest]] = [[] for _ in range(connections)]
    for idx, request in enumerate(requests):
        shares[idx % connections].append(request)
    started = time.perf_counter()
    results = await asyncio.gather(
        *(
            _drive_connection(host, port, share, pipeline=pipeline)
            for share in shares
            if share
        )
    )
    duration = time.perf_counter() - started
    latencies: List[float] = []
    errors = 0
    for conn_latencies, conn_errors in results:
        latencies.extend(conn_latencies)
        errors += conn_errors
    return LoadReport(
        n_requests=len(requests),
        errors=errors,
        duration_s=duration,
        latencies_ms=tuple(latencies),
    )
