"""Wire format of the decision service: JSON lines over TCP.

One request per line, one response per line, UTF-8 JSON with no framing
beyond the newline — trivially scriptable (``nc`` + ``jq`` suffice) and
safe for pipelining.  Python's ``json`` round-trips floats through
``repr`` exactly, so a decision that crosses the wire (or the file cache,
which reuses these encoders) compares bitwise-equal to the in-process
object — the serving layer's equivalence guarantee survives transport.

Requests are objects with an ``op`` field:

* ``{"op": "decide", "job": {...}, "strategy": "persistent", ...}``
* ``{"op": "health"}``
* ``{"op": "stats"}``

Responses echo ``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..core.types import (
    BidDecision,
    BidKind,
    CvarDecision,
    DecisionRequest,
    DecisionResponse,
    DegradedDecision,
    JobSpec,
    PortfolioDecision,
    Strategy,
)
from ..errors import ServeError

__all__ = [
    "decode_line",
    "encode_line",
    "request_to_wire",
    "request_from_wire",
    "decision_to_wire",
    "decision_from_wire",
    "response_to_wire",
    "response_from_wire",
    "error_to_wire",
]


def encode_line(payload: Dict[str, Any]) -> bytes:
    """Serialize one protocol object to a newline-terminated JSON line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises :class:`ServeError` on malformed input."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"malformed wire line: {exc}") from None
    if not isinstance(payload, dict):
        raise ServeError(
            f"wire line must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def request_to_wire(request: DecisionRequest) -> Dict[str, Any]:
    """Encode a decide request (the loadgen/client side)."""
    return {
        "op": "decide",
        "job": {
            "execution_time": request.job.execution_time,
            "recovery_time": request.job.recovery_time,
            "slot_length": request.job.slot_length,
        },
        "strategy": request.strategy.value,
        "percentile": request.percentile,
        "max_variance": request.max_variance,
        "cvar_alpha": request.cvar_alpha,
        "degrade": request.degrade,
        "instance_type": request.instance_type,
    }


def request_from_wire(payload: Dict[str, Any]) -> DecisionRequest:
    """Decode a decide request (the service side).

    Raises :class:`ServeError` on missing/invalid fields so the service
    can answer with a structured error instead of dying.
    """
    try:
        job_fields = payload["job"]
        job = JobSpec(
            execution_time=float(job_fields["execution_time"]),
            recovery_time=float(job_fields.get("recovery_time", 0.0)),
            slot_length=float(job_fields["slot_length"]),
        )
        strategy = Strategy(payload.get("strategy", Strategy.PERSISTENT.value))
        max_variance = payload.get("max_variance")
        return DecisionRequest(
            job=job,
            strategy=strategy,
            percentile=float(payload.get("percentile", 90.0)),
            max_variance=None if max_variance is None else float(max_variance),
            cvar_alpha=float(payload.get("cvar_alpha", 0.95)),
            degrade=bool(payload.get("degrade", True)),
            instance_type=payload.get("instance_type"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"invalid decide request: {exc}") from None


def decision_to_wire(decision: BidDecision) -> Dict[str, Any]:
    """Encode a decision payload; floats survive the round trip exactly."""
    wire: Dict[str, Any] = {
        "price": decision.price,
        "kind": decision.kind.value,
        "expected_cost": decision.expected_cost,
        "expected_completion_time": decision.expected_completion_time,
        "expected_running_time": decision.expected_running_time,
        "expected_interruptions": decision.expected_interruptions,
        "acceptance_probability": decision.acceptance_probability,
        "degraded": decision.degraded,
    }
    if isinstance(decision, DegradedDecision):
        wire["reason"] = decision.reason
    elif isinstance(decision, PortfolioDecision):
        wire["portfolio"] = {
            "spot_fraction": decision.spot_fraction,
            "price_variance": decision.price_variance,
        }
    elif isinstance(decision, CvarDecision):
        wire["cvar"] = {
            "alpha": decision.alpha,
            "cvar": decision.cvar,
            "n_windows": decision.n_windows,
        }
    return wire


def _opt_float(value: Any) -> Optional[float]:
    return None if value is None else float(value)


def decision_from_wire(payload: Dict[str, Any]) -> BidDecision:
    """Decode a decision payload back into the dataclass."""
    try:
        common: Dict[str, Any] = dict(
            price=float(payload["price"]),
            kind=BidKind(payload["kind"]),
            expected_cost=float(payload["expected_cost"]),
            expected_completion_time=_opt_float(
                payload.get("expected_completion_time")
            ),
            expected_running_time=_opt_float(payload.get("expected_running_time")),
            expected_interruptions=_opt_float(payload.get("expected_interruptions")),
            acceptance_probability=_opt_float(payload.get("acceptance_probability")),
        )
        if payload.get("degraded"):
            return DegradedDecision(reason=str(payload.get("reason", "")), **common)
        if "portfolio" in payload:
            extra = payload["portfolio"]
            return PortfolioDecision(
                spot_fraction=float(extra["spot_fraction"]),
                price_variance=float(extra["price_variance"]),
                **common,
            )
        if "cvar" in payload:
            extra = payload["cvar"]
            return CvarDecision(
                alpha=float(extra["alpha"]),
                cvar=float(extra["cvar"]),
                n_windows=int(extra["n_windows"]),
                **common,
            )
        return BidDecision(**common)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"invalid decision payload: {exc}") from None


def response_to_wire(response: DecisionResponse) -> Dict[str, Any]:
    """Encode a decide response (provenance included)."""
    return {
        "ok": True,
        "decision": decision_to_wire(response.decision),
        "table_version": response.table_version,
        "cache_tier": response.cache_tier,
        "degradation_reason": response.degradation_reason,
    }


def response_from_wire(
    payload: Dict[str, Any], request: DecisionRequest
) -> DecisionResponse:
    """Decode a decide response, re-attaching the originating request."""
    if not payload.get("ok"):
        raise ServeError(f"service error: {payload.get('error', 'unknown')}")
    try:
        decision = decision_from_wire(payload["decision"])
    except KeyError:
        raise ServeError("decide response is missing the decision") from None
    return DecisionResponse(
        decision=decision,
        request=request,
        table_version=payload.get("table_version"),
        cache_tier=payload.get("cache_tier"),
        degradation_reason=payload.get("degradation_reason"),
    )


def error_to_wire(message: str) -> Dict[str, Any]:
    """The structured error line the service answers bad input with."""
    return {"ok": False, "error": message}
