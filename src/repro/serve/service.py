"""The bid-decision daemon: JSON-lines-over-TCP on precomputed tables.

:class:`BidService` is the transport-free core: one synchronous
:meth:`~BidService.handle` per request, layered as

1. **degradation guard** — tables stale (older than the slot TTL) or
   market faulted → explicit on-demand fallback, never a wrong answer;
2. **cache** — the tiered :class:`~repro.serve.cache.DecisionCache`,
   invalidated implicitly by table-version mismatch;
3. **tables** — the generation's precomputed decisions
   (:class:`~repro.serve.tables.BidTableSet`), falling back to inline
   computation for non-tabled strategies and off-grid jobs.

``serve_forever``/:func:`start_server` wrap the core in an asyncio TCP
server speaking the :mod:`repro.serve.protocol` wire format alongside an
:class:`~repro.serve.ingest.IngestLoop` advancing the market.  The
degradation matrix lives in ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..constants import SERVE_STALE_SLOTS
from ..core.types import DecisionRequest, DecisionResponse
from ..errors import InfeasibleBidError, ServeError
from .cache import DecisionCache
from .ingest import IngestLoop, MarketState
from .protocol import (
    decode_line,
    encode_line,
    error_to_wire,
    request_from_wire,
    response_to_wire,
)

__all__ = ["ServiceStats", "BidService", "start_server"]


@dataclass
class ServiceStats:
    """Lifetime request counters of one :class:`BidService`."""

    requests: int = 0
    errors: int = 0
    degraded: int = 0
    by_tier: Dict[str, int] = field(default_factory=dict)

    def record(self, response: DecisionResponse) -> None:
        self.requests += 1
        tier = response.cache_tier or "compute"
        self.by_tier[tier] = self.by_tier.get(tier, 0) + 1
        if response.degradation_reason is not None:
            self.degraded += 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "degraded": self.degraded,
            "by_tier": dict(self.by_tier),
        }


class BidService:
    """Answers :class:`DecisionRequest`\\ s from a live market state.

    Parameters
    ----------
    state:
        The ingest-fed market view whose current
        :class:`~repro.serve.tables.BidTableSet` answers requests.
    cache:
        Optional decision cache; omit to construct a default
        memory-only cache sized by ``REPRO_SERVE_CACHE_SIZE``.
    stale_after:
        Table TTL in ingested slots (default: the registered
        ``REPRO_SERVE_STALE_SLOTS`` value).  Older tables degrade to the
        on-demand fallback instead of serving prices computed from a
        market that has since moved.
    """

    def __init__(
        self,
        state: MarketState,
        *,
        cache: Optional[DecisionCache] = None,
        stale_after: Optional[int] = None,
    ):
        if stale_after is None:
            stale_after = SERVE_STALE_SLOTS.get()
        if stale_after < 1:
            raise ServeError(f"stale_after must be >= 1, got {stale_after!r}")
        self.state = state
        self.cache = cache if cache is not None else DecisionCache()
        self.stale_after = int(stale_after)
        self.stats = ServiceStats()

    # -- decision path (hot) ----------------------------------------------
    def handle(self, request: DecisionRequest) -> DecisionResponse:
        """One decision, through guard → cache → tables.

        Never raises for market conditions: staleness, faults and
        infeasible optimizations all answer with the explicit on-demand
        fallback and a ``degradation_reason``.  Only programmer errors
        (e.g. an unregistered strategy) propagate.
        """
        tables = self.state.tables
        reason = self._degradation_reason(tables)
        if reason is not None:
            response = self._fallback(request, tables.version, reason)
            self.stats.record(response)
            return response
        cached = self.cache.get(request, tables.version)
        if cached is not None:
            self.stats.record(cached)
            return cached
        try:
            response = tables.decide(request)
        except InfeasibleBidError as exc:
            # Only reachable with request.degrade=False; the service
            # still answers rather than faulting the connection.
            response = self._fallback(request, tables.version, str(exc))
            self.stats.record(response)
            return response
        self.cache.put(request, response)
        self.stats.record(response)
        return response

    def _degradation_reason(self, tables: Any) -> Optional[str]:
        if self.state.faulted:
            return f"market faulted: {self.state.fault_reason or 'unknown'}"
        age = tables.age(self.state.slots_ingested)
        if age > self.stale_after:
            return (
                f"tables stale: generation {tables.generation} is {age} "
                f"slots old (TTL {self.stale_after})"
            )
        return None

    def _fallback(
        self, request: DecisionRequest, version: str, reason: str
    ) -> DecisionResponse:
        decision = self.state.tables.client.degraded_decision(
            request.job, strategy=request.strategy, reason=reason
        )
        return DecisionResponse(
            decision=decision,
            request=request,
            table_version=version,
            cache_tier="compute",
            degradation_reason=reason,
        )

    # -- introspection ops -------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """The ``health`` op payload: liveness plus degradation status."""
        tables = self.state.tables
        reason = self._degradation_reason(tables)
        return {
            "ok": True,
            "status": "degraded" if reason is not None else "serving",
            "degradation_reason": reason,
            "instance_type": self.state.instance_type,
            "table_version": tables.version,
            "generation": tables.generation,
            "slots_ingested": self.state.slots_ingested,
            "faulted": self.state.faulted,
        }

    def stats_payload(self) -> Dict[str, Any]:
        """The ``stats`` op payload: service and cache counters."""
        return {
            "ok": True,
            "service": self.stats.as_dict(),
            "cache": self.cache.stats().as_dict(),
            "table_version": self.state.tables.version,
            "generation": self.state.tables.generation,
        }

    # -- wire dispatch -----------------------------------------------------
    def handle_wire(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one decoded wire object to the matching op."""
        op = payload.get("op", "decide")
        if op == "decide":
            try:
                request = request_from_wire(payload)
            except ServeError as exc:
                self.stats.errors += 1
                return error_to_wire(str(exc))
            return response_to_wire(self.handle(request))
        if op == "health":
            return self.health()
        if op == "stats":
            return self.stats_payload()
        self.stats.errors += 1
        return error_to_wire(f"unknown op {op!r}")

    # -- asyncio transport -------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client: a JSON line in, a JSON line out, pipelined."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = decode_line(line)
                except ServeError as exc:
                    self.stats.errors += 1
                    answer = error_to_wire(str(exc))
                else:
                    answer = self.handle_wire(payload)
                writer.write(encode_line(answer))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                # Server shutdown can cancel the close handshake itself;
                # the connection is going away either way.
                pass


async def start_server(
    service: BidService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ingest: Optional[IngestLoop] = None,
    max_ingest_slots: Optional[int] = None,
) -> "asyncio.Server":
    """Bind the TCP server and, optionally, start the ingest loop.

    Returns the listening :class:`asyncio.Server` (query
    ``server.sockets[0].getsockname()`` for the bound port).  When
    ``ingest`` is given its ``run`` coroutine is scheduled on the same
    loop; cancelling the server task tears both down.
    """
    server = await asyncio.start_server(service.handle_connection, host, port)
    if ingest is not None:
        task = asyncio.get_running_loop().create_task(
            ingest.run(max_slots=max_ingest_slots)
        )
        # Keep a handle so callers can cancel/await ingest on shutdown.
        server._repro_ingest_task = task  # type: ignore[attr-defined]
    return server
