"""Versioned, immutable bid-table artifacts for the serving layer.

The paper's optimizers (Props. 4–5, the percentile heuristic) depend only
on the empirical price distribution and the job parameters, so their
answers can be *precomputed*: a :class:`BidTable` evaluates the unified
:meth:`~repro.core.client.BiddingClient.respond` path over an inverse-CDF
grid of job-parameter buckets and freezes the resulting decisions into an
immutable artifact stamped with a content-addressed version.

Serving then reduces to a grid lookup:

* **On a grid point** the stored decision *is* the decision the client
  would compute — bitwise identical, because it was produced by the same
  code path at build time.
* **Off-grid** (within the grid's coverage) the request snaps to the
  nearest bucket; :meth:`BidTable.interpolation_error_bound` bounds the
  bid-price error by the price oscillation across the bracketing cell,
  which shrinks as the grid refines.
* **Outside the coverage** lookup raises and the caller falls back to
  inline computation (see :mod:`repro.serve.service`).
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..constants import DEFAULT_SLOT_HOURS, SERVE_TABLE_GRID
from ..core.client import BiddingClient
from ..core.types import (
    BidDecision,
    DecisionRequest,
    DecisionResponse,
    JobSpec,
    Strategy,
)
from ..errors import ServeError
from ..traces.history import SpotPriceHistory

__all__ = [
    "TableGrid",
    "BidTable",
    "BidTableSet",
    "default_grid",
    "build_bid_table",
    "build_table_set",
]

#: Strategies answered from precomputed tables; PERCENTILE decisions are
#: cheap single-quantile reads and stay on the inline path.
TABLED_STRATEGIES: Tuple[Strategy, ...] = (Strategy.ONE_TIME, Strategy.PERSISTENT)


@dataclass(frozen=True)
class TableGrid:
    """Job-parameter buckets a :class:`BidTable` is evaluated over.

    ``execution_times`` (``t_s``) and ``recovery_times`` (``t_r``) are
    strictly increasing coordinate axes, in hours; the table covers their
    Cartesian product.
    """

    execution_times: Tuple[float, ...]
    recovery_times: Tuple[float, ...]

    def __post_init__(self) -> None:
        ts = tuple(float(v) for v in self.execution_times)
        tr = tuple(float(v) for v in self.recovery_times)
        if len(ts) < 2 or any(b <= a for a, b in zip(ts, ts[1:])):
            raise ServeError(
                "execution_times must be at least two strictly increasing values"
            )
        if not ts[0] > 0:
            raise ServeError("execution_times must be positive")
        if not tr or any(b <= a for a, b in zip(tr, tr[1:])):
            raise ServeError(
                "recovery_times must be non-empty and strictly increasing"
            )
        if tr[0] < 0:
            raise ServeError("recovery_times must be non-negative")
        object.__setattr__(self, "execution_times", ts)
        object.__setattr__(self, "recovery_times", tr)

    @property
    def shape(self) -> Tuple[int, int]:
        return len(self.execution_times), len(self.recovery_times)

    def covers(self, job: JobSpec) -> bool:
        """Whether ``job``'s parameters fall inside the gridded ranges."""
        ts, tr = self.execution_times, self.recovery_times
        return (
            ts[0] <= job.execution_time <= ts[-1]
            and tr[0] <= job.recovery_time <= tr[-1]
        )

    @staticmethod
    def _nearest(axis: Sequence[float], value: float) -> int:
        hi = bisect.bisect_left(axis, value)
        if hi == 0:
            return 0
        if hi == len(axis):
            return len(axis) - 1
        lo = hi - 1
        return lo if value - axis[lo] <= axis[hi] - value else hi

    @staticmethod
    def _bracket(axis: Sequence[float], value: float) -> Tuple[int, int]:
        hi = bisect.bisect_left(axis, value)
        if hi == 0:
            return 0, 0
        if hi == len(axis):
            return len(axis) - 1, len(axis) - 1
        lo = hi - 1
        return (hi, hi) if axis[hi] == value else (lo, hi)

    def snap(self, job: JobSpec) -> Tuple[int, int]:
        """Indices of the grid point nearest to ``job``'s parameters.

        Raises :class:`~repro.errors.ServeError` when the job falls
        outside the gridded ranges (the caller should compute inline).
        """
        if not self.covers(job):
            raise ServeError(
                f"job (t_s={job.execution_time!r}, t_r={job.recovery_time!r}) "
                f"is outside the table grid coverage "
                f"t_s in [{self.execution_times[0]}, {self.execution_times[-1]}], "
                f"t_r in [{self.recovery_times[0]}, {self.recovery_times[-1]}]"
            )
        return (
            self._nearest(self.execution_times, job.execution_time),
            self._nearest(self.recovery_times, job.recovery_time),
        )

    def bracketing_cell(self, job: JobSpec) -> Tuple[Tuple[int, int], ...]:
        """Grid-index corners of the cell bracketing ``job``.

        Degenerates to fewer corners when the job sits exactly on a grid
        line (and to a single corner on a grid point).
        """
        if not self.covers(job):
            raise ServeError("job is outside the table grid coverage")
        i_lo, i_hi = self._bracket(self.execution_times, job.execution_time)
        j_lo, j_hi = self._bracket(self.recovery_times, job.recovery_time)
        corners = {(i, j) for i in (i_lo, i_hi) for j in (j_lo, j_hi)}
        return tuple(sorted(corners))

    def fingerprint(self) -> bytes:
        """Stable bytes identifying the grid, for table versioning."""
        payload = np.asarray(
            list(self.execution_times) + list(self.recovery_times), dtype=float
        )
        return hashlib.sha1(payload.tobytes()).digest()


def default_grid(
    *,
    shape: Optional[Tuple[int, int]] = None,
    max_execution: float = 24.0,
    max_recovery: float = 120.0 / 3600.0,
    slot_length: float = DEFAULT_SLOT_HOURS,
) -> TableGrid:
    """The serving default: log-spaced ``t_s``, linear ``t_r`` buckets.

    Execution times span one slot to ``max_execution`` hours on a
    geometric grid (bid prices vary fastest for short jobs, where
    ``1 - t_k/t_s`` moves quickly); recovery times span zero to
    ``max_recovery`` linearly, covering the paper's 10 s/30 s regimes
    with room to spare.  ``shape`` defaults to the registered
    ``REPRO_SERVE_TABLE_GRID`` value.
    """
    n_ts, n_tr = shape if shape is not None else SERVE_TABLE_GRID.get()
    if n_ts < 2 or n_tr < 1:
        raise ServeError(
            f"grid shape needs at least 2x1 points, got {n_ts}x{n_tr}"
        )
    execution_times = np.geomspace(slot_length, max_execution, n_ts)
    if n_tr == 1:
        recovery_times = np.asarray([0.0])
    else:
        recovery_times = np.linspace(0.0, max_recovery, n_tr)
    return TableGrid(
        execution_times=tuple(float(v) for v in execution_times),
        recovery_times=tuple(float(v) for v in recovery_times),
    )


@dataclass(frozen=True)
class BidTable:
    """Precomputed decisions for one strategy over a :class:`TableGrid`.

    ``decisions`` is the row-major flattening of the grid's Cartesian
    product: the decision for ``(execution_times[i], recovery_times[j])``
    sits at index ``i * len(recovery_times) + j``.  Every entry was
    produced by :meth:`BiddingClient.respond` with ``degrade=True`` at
    build time, so infeasible buckets hold the explicit on-demand
    fallback rather than holes.
    """

    version: str
    strategy: Strategy
    ondemand_price: float
    slot_length: float
    built_at_slot: int
    grid: TableGrid
    decisions: Tuple[BidDecision, ...]

    def __post_init__(self) -> None:
        n_ts, n_tr = self.grid.shape
        if len(self.decisions) != n_ts * n_tr:
            raise ServeError(
                f"table holds {len(self.decisions)} decisions for a "
                f"{n_ts}x{n_tr} grid"
            )

    def decision_at(self, i: int, j: int) -> BidDecision:
        """The stored decision for grid indices ``(i, j)``."""
        return self.decisions[i * len(self.grid.recovery_times) + j]

    def lookup(self, job: JobSpec) -> BidDecision:
        """The stored decision at the grid point nearest to ``job``.

        Bitwise-identical to the client's answer when ``job`` sits on a
        grid point; raises :class:`~repro.errors.ServeError` outside the
        grid's coverage.
        """
        if job.slot_length != self.slot_length:
            raise ServeError(
                f"job slot length {job.slot_length!r} differs from the "
                f"table's {self.slot_length!r}"
            )
        return self.decision_at(*self.grid.snap(job))

    def interpolation_error_bound(self, job: JobSpec) -> float:
        """Upper bound on the served bid-price error for ``job``.

        The served price is one corner of the cell bracketing the job,
        so whenever the true optimum's price lies within the corner
        envelope (guaranteed for ``Strategy.ONE_TIME``, whose optimal bid
        is monotone in ``t_s`` and independent of ``t_r``) the absolute
        price error is at most the max-min price spread over the corners.
        Zero on grid points by construction.
        """
        corners = self.grid.bracketing_cell(job)
        prices = [self.decision_at(i, j).price for (i, j) in corners]
        return max(prices) - min(prices)

    def age(self, current_slot: int) -> int:
        """Ingest slots elapsed since this table was built."""
        return max(0, current_slot - self.built_at_slot)


def _table_version(
    history: SpotPriceHistory,
    strategy: Strategy,
    grid: TableGrid,
    ondemand_price: float,
    built_at_slot: int,
) -> str:
    digest = hashlib.sha1()
    digest.update(np.ascontiguousarray(history.prices, dtype=float).tobytes())
    digest.update(grid.fingerprint())
    digest.update(strategy.value.encode())
    digest.update(repr((float(ondemand_price), float(history.slot_length))).encode())
    return f"{digest.hexdigest()[:12]}.g{built_at_slot}"


def build_bid_table(
    history: SpotPriceHistory,
    *,
    ondemand_price: float,
    strategy: Strategy,
    grid: Optional[TableGrid] = None,
    built_at_slot: int = 0,
    client: Optional[BiddingClient] = None,
) -> BidTable:
    """Evaluate ``strategy`` over ``grid`` and freeze the decisions.

    Each grid point runs the same
    :meth:`~repro.core.client.BiddingClient.respond` path a live request
    would, with ``degrade=True`` so infeasible buckets store the explicit
    on-demand fallback.
    """
    if grid is None:
        grid = default_grid(slot_length=history.slot_length)
    if client is None:
        client = BiddingClient(history, ondemand_price=ondemand_price)
    decisions = []
    for ts in grid.execution_times:
        for tr in grid.recovery_times:
            job = JobSpec(
                execution_time=ts,
                recovery_time=tr,
                slot_length=history.slot_length,
            )
            response = client.respond(
                DecisionRequest(job=job, strategy=strategy, degrade=True)
            )
            decisions.append(response.decision)
    return BidTable(
        version=_table_version(history, strategy, grid, ondemand_price, built_at_slot),
        strategy=strategy,
        ondemand_price=float(ondemand_price),
        slot_length=float(history.slot_length),
        built_at_slot=int(built_at_slot),
        grid=grid,
        decisions=tuple(decisions),
    )


@dataclass(frozen=True)
class BidTableSet:
    """One generation of tables for a market, plus the builder client.

    The set keeps the :class:`~repro.core.client.BiddingClient` it was
    built from so non-tabled strategies (``PERCENTILE``) and off-grid
    jobs are answered by the *same* distribution snapshot the tables were
    computed from — one consistent version per generation.
    """

    version: str
    generation: int
    built_at_slot: int
    instance_type: Optional[str]
    tables: Mapping[Strategy, BidTable]
    client: BiddingClient = field(repr=False)

    def age(self, current_slot: int) -> int:
        """Ingest slots elapsed since this generation was built."""
        return max(0, current_slot - self.built_at_slot)

    def decide(self, request: DecisionRequest) -> DecisionResponse:
        """Answer ``request`` from the tables, else compute inline.

        Tabled strategies within grid coverage are served from the
        precomputed decisions (``cache_tier="table"``); everything else
        runs the client's unified path against the generation's own
        distribution snapshot (``cache_tier="compute"``).  Both carry
        this generation's version stamp.
        """
        table = self.tables.get(request.strategy)
        if table is not None:
            decision: Optional[BidDecision]
            try:
                decision = table.lookup(request.job)
            except ServeError:
                decision = None
            if decision is not None:
                reason = getattr(decision, "reason", None)
                return DecisionResponse(
                    decision=decision,
                    request=request,
                    table_version=self.version,
                    cache_tier="table",
                    degradation_reason=reason if decision.degraded else None,
                )
        response = self.client.respond(request)
        return response.with_serving(
            table_version=self.version,
            cache_tier="compute",
            degradation_reason=response.degradation_reason,
        )


def build_table_set(
    history: SpotPriceHistory,
    *,
    ondemand_price: float,
    grid: Optional[TableGrid] = None,
    built_at_slot: int = 0,
    generation: int = 0,
    strategies: Tuple[Strategy, ...] = TABLED_STRATEGIES,
) -> BidTableSet:
    """Build one table per tabled strategy from a history snapshot."""
    if grid is None:
        grid = default_grid(slot_length=history.slot_length)
    client = BiddingClient(history, ondemand_price=ondemand_price)
    tables: Dict[Strategy, BidTable] = {
        strategy: build_bid_table(
            history,
            ondemand_price=ondemand_price,
            strategy=strategy,
            grid=grid,
            built_at_slot=built_at_slot,
            client=client,
        )
        for strategy in strategies
    }
    version = _table_version(
        history, Strategy.PERSISTENT, grid, ondemand_price, built_at_slot
    )
    return BidTableSet(
        version=version,
        generation=int(generation),
        built_at_slot=int(built_at_slot),
        instance_type=history.instance_type,
        tables=tables,
        client=client,
    )
