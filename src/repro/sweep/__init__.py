"""Batched bid sweeps: grids of bids × stacks of traces in one shot.

This package is the scaling substrate over the scalar
:mod:`repro.market.fastpath` oracle:

* :mod:`repro.sweep.kernels` — slot-batched NumPy kernels, bitwise
  identical to the oracle, vectorized over the bid (and trace) axes.
* :mod:`repro.sweep.engine` — :func:`run_sweep` front door with ragged
  trace stacking, per-trace start slots, paired bids and optional
  ``concurrent.futures`` fan-out.
* :mod:`repro.sweep.report` — :class:`SweepReport` per-cell arrays plus
  :class:`SweepCounters` (slots simulated, kernel seconds, cache hits).
* :mod:`repro.sweep.cache` — memoized ``EmpiricalPriceDistribution``
  construction shared by the client and CLI layers.
"""

from .cache import (
    cached_distribution,
    clear_distribution_cache,
    distribution_cache_stats,
)
from .compiled import COMPILED_AVAILABLE
from .engine import map_traces, run_sweep
from .kernels import (
    onetime_sweep_kernel,
    onetime_sweep_kernel_compiled,
    onetime_sweep_kernel_reference,
    persistent_sweep_kernel,
    persistent_sweep_kernel_compiled,
    persistent_sweep_kernel_reference,
)
from .report import SweepCounters, SweepReport
from .shm import SharedPriceStack, StackDescriptor

__all__ = [
    "COMPILED_AVAILABLE",
    "cached_distribution",
    "clear_distribution_cache",
    "distribution_cache_stats",
    "map_traces",
    "run_sweep",
    "onetime_sweep_kernel",
    "onetime_sweep_kernel_compiled",
    "onetime_sweep_kernel_reference",
    "persistent_sweep_kernel",
    "persistent_sweep_kernel_compiled",
    "persistent_sweep_kernel_reference",
    "SharedPriceStack",
    "StackDescriptor",
    "SweepCounters",
    "SweepReport",
]
