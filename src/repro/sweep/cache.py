"""Backward-compatible alias for :mod:`repro.core.distcache`.

The memoized-distribution cache started life here, wired under the sweep
engine; the serving layer (:mod:`repro.serve`) needs the same seam
without importing the sweep machinery, so the implementation moved to
:mod:`repro.core.distcache`.  This module re-exports the public surface
(and the ``_max_entries`` test hook) so existing imports keep working.
"""

from __future__ import annotations

from ..core.distcache import (
    _cache,
    _max_entries,
    cached_distribution,
    clear_distribution_cache,
    distribution_cache_stats,
)

__all__ = [
    "cached_distribution",
    "distribution_cache_stats",
    "clear_distribution_cache",
]
