"""Compiled sweep kernels: the event loops as numba-JIT machine code.

The event-driven kernels in :mod:`repro.sweep.events` already reduce the
work to *executed lane-events*, but each lockstep step still pays a
dozen NumPy dispatches over the live-lane vectors.  The kernels here run
the same per-lane event walk as a scalar loop compiled with
``@njit(cache=True)``: integer acceptance tests (``rank[t, s] < cnt``)
and the oracle's float chain execute as machine code, one lane at a
time, over the already-prepared padded sort / searchsorted arrays.

The contract is unchanged — **bitwise identity** with the event lane
(and hence with the reference kernels and the scalar oracle) on every
cell field, including NaN placement and integer dtypes.  That holds
because the scalar loop replays exactly the elementwise float operations
of the event kernel in each lane's temporal order: IEEE-754 double
arithmetic is deterministic, ``min`` on non-NaN doubles matches
``np.minimum``, and numba without ``fastmath`` neither fuses nor
reorders float ops.  ``slots_simulated`` counts executed lane-events,
the same number the event kernels report.

The tier is optional.  When numba is importable (the ``[compiled]``
packaging extra) and ``NUMBA_DISABLE_JIT`` is not set,
:data:`COMPILED_AVAILABLE` is true and the cores are JIT-compiled on
first call (the benchmark runner's untimed warmup absorbs that).
Otherwise the cores run as plain interpreted Python — still
bitwise-correct, which is what the numba-free equivalence suites
exercise — and the dispatch layers (``repro.sweep.engine``,
``repro.mapreduce.grid``, ``repro.extensions.kernels``) fall back to the
event lane with a one-time :func:`warn_compiled_fallback` warning rather
than silently running interpreted scalar loops.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import MarketError

__all__ = [
    "COMPILED_AVAILABLE",
    "COMPILED_UNAVAILABLE_REASON",
    "jit_kernel",
    "onetime_sweep_kernel_compiled",
    "persistent_sweep_kernel_compiled",
    "warn_compiled_fallback",
]

try:  # pragma: no cover - only with the [compiled] extra installed
    import numba as _numba
except ImportError:  # pragma: no cover - the default, numba-free install
    _numba = None

COMPILED_AVAILABLE: bool
COMPILED_UNAVAILABLE_REASON: Optional[str]
if _numba is None:
    COMPILED_AVAILABLE = False
    COMPILED_UNAVAILABLE_REASON = (
        "numba is not installed (pip install 'repro[compiled]')"
    )
elif os.environ.get("NUMBA_DISABLE_JIT", "").strip() not in ("", "0"):
    # numba's own kill switch; honor it the way numba itself would.
    COMPILED_AVAILABLE = False
    COMPILED_UNAVAILABLE_REASON = "NUMBA_DISABLE_JIT is set in the environment"
else:
    COMPILED_AVAILABLE = True
    COMPILED_UNAVAILABLE_REASON = None


def _python_jit(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Identity stand-in for ``numba.njit`` on numba-free installs.

    The loop bodies then execute as interpreted Python — slow, but
    producing the same bits, which lets the equivalence suites verify
    the compiled lane without numba present.
    """
    return fn


jit_kernel: Callable[[Callable[..., Any]], Callable[..., Any]]
if COMPILED_AVAILABLE:
    jit_kernel = _numba.njit(cache=True)
else:
    jit_kernel = _python_jit


_fallback_warned = False


def warn_compiled_fallback() -> None:
    """Warn (once per process) that ``compiled`` degraded to ``event``.

    Called by the dispatch layers when ``REPRO_SWEEP_KERNEL=compiled``
    is requested but :data:`COMPILED_AVAILABLE` is false.  Subsequent
    calls are silent so scheduler fan-out and per-chunk dispatch do not
    spam one warning per work item.
    """
    global _fallback_warned
    if _fallback_warned:
        return
    _fallback_warned = True
    reason = COMPILED_UNAVAILABLE_REASON or "the compiled tier is unavailable"
    warnings.warn(
        f"REPRO_SWEEP_KERNEL=compiled requested but {reason}; falling back "
        "to the event kernels (bitwise-identical results, interpreted "
        "speed)",
        RuntimeWarning,
        stacklevel=3,
    )


@jit_kernel
def _persistent_core(
    prices: np.ndarray,
    rank: np.ndarray,
    u_trace: np.ndarray,
    u_cnt: np.ndarray,
    n_valid: np.ndarray,
    work: float,
    recovery_time: float,
    slot_len: float,
    eps: float,
) -> Tuple[
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    int,
]:
    """Per-lane persistent event walk over unique ``(trace, count)`` lanes.

    Scalar replay of one accepted slot matches the event kernel's
    elementwise operation order exactly; the break after the finishing
    event mirrors the event kernel retiring finished lanes.
    """
    n_lanes = u_trace.shape[0]
    o_fin = np.zeros(n_lanes, dtype=np.bool_)
    o_cost = np.zeros(n_lanes)
    o_ct = np.full(n_lanes, np.nan)
    o_run = np.zeros(n_lanes)
    o_rec = np.zeros(n_lanes)
    o_intr = np.zeros(n_lanes, dtype=np.int64)
    o_seen = np.zeros(n_lanes, dtype=np.int64)
    o_last = np.full(n_lanes, -1, dtype=np.int64)
    events = 0
    for i in range(n_lanes):
        t = u_trace[i]
        cnt = u_cnt[i]
        w = work
        pend = 0.0
        cost = 0.0
        run = 0.0
        rec = 0.0
        ct = np.nan
        intr = 0
        seen = 0
        last = -1
        fin = False
        for s in range(n_valid[t]):
            if rank[t, s] >= cnt:
                continue
            events += 1
            price = prices[t, s]
            if seen > 0 and last < s - 1:
                pend = recovery_time
                intr += 1
            if pend > 0.0:
                step1 = min(pend, slot_len)
            else:
                step1 = 0.0
            pend = pend - step1
            rec = rec + step1
            budget = slot_len - step1
            used = step1
            if budget > 0.0 and w > 0.0:
                step2 = min(w, budget)
            else:
                step2 = 0.0
            w = w - step2
            used = used + step2
            if w > eps:
                used = slot_len
            cost = cost + price * used
            run = run + used
            if w <= eps:
                fin = True
                ct = s * slot_len + used
            last = s
            seen += 1
            if fin:
                break
        o_fin[i] = fin
        o_cost[i] = cost
        o_ct[i] = ct
        o_run[i] = run
        o_rec[i] = rec
        o_intr[i] = intr
        o_seen[i] = seen
        o_last[i] = last
    return o_fin, o_cost, o_ct, o_run, o_rec, o_intr, o_seen, o_last, events


@jit_kernel
def _onetime_core(
    prices: np.ndarray,
    rank: np.ndarray,
    u_trace: np.ndarray,
    u_cnt: np.ndarray,
    n_valid: np.ndarray,
    work: float,
    slot_len: float,
    eps: float,
) -> Tuple[
    np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int
]:
    """Per-lane one-time event walk: run the first contiguous accepted
    run, die at the first gap between consecutive accepted events (the
    dying event is still counted, as in the event kernel)."""
    n_lanes = u_trace.shape[0]
    o_fin = np.zeros(n_lanes, dtype=np.bool_)
    o_cost = np.zeros(n_lanes)
    o_ct = np.full(n_lanes, np.nan)
    o_run = np.zeros(n_lanes)
    o_started = np.zeros(n_lanes, dtype=np.bool_)
    o_start = np.zeros(n_lanes, dtype=np.int64)
    events = 0
    for i in range(n_lanes):
        t = u_trace[i]
        cnt = u_cnt[i]
        w = work
        cost = 0.0
        run = 0.0
        ct = np.nan
        started = False
        dead = False
        fin = False
        start_slot = 0
        last = -1
        for s in range(n_valid[t]):
            if rank[t, s] >= cnt:
                continue
            events += 1
            starting = not started
            run_now = starting or s == last + 1
            if started and s != last + 1:
                dead = True
            used = min(w, slot_len)
            if w > slot_len + eps:
                used = slot_len
            if run_now:
                price = prices[t, s]
                cost = cost + price * used
                run = run + used
                w = w - used
                if w <= eps:
                    fin = True
                    ct = s * slot_len + used
            if starting:
                started = True
                start_slot = s
            if run_now:
                last = s
            if fin or dead:
                break
        o_fin[i] = fin
        o_cost[i] = cost
        o_ct[i] = ct
        o_run[i] = run
        o_started[i] = started
        o_start[i] = start_slot
    return o_fin, o_cost, o_ct, o_run, o_started, o_start, events


def persistent_sweep_kernel_compiled(
    prices: np.ndarray,
    bids: np.ndarray,
    *,
    work: float,
    recovery_time: float,
    slot_length: float,
    n_valid: Optional[np.ndarray] = None,
) -> Dict[str, np.ndarray]:
    """Compiled batched persistent sweep.

    Drop-in replacement for
    :func:`~repro.sweep.events.persistent_sweep_kernel` with
    bitwise-identical outputs on every field, ``slots_simulated``
    included.  Runs interpreted (same bits, no speedup) when
    :data:`COMPILED_AVAILABLE` is false.
    """
    if work <= 0 or recovery_time < 0 or slot_length <= 0:
        raise MarketError(
            f"invalid parameters: work={work!r} "
            f"recovery_time={recovery_time!r} slot_length={slot_length!r}"
        )
    from .events import _dedup_lanes, _price_ranks
    from .kernels import _EPS, _prepare

    prices, bids2, n_valid, accepted_total = _prepare(prices, bids, n_valid)
    n_traces, n_slots = prices.shape
    n_bids = bids2.shape[1]
    shape = (n_traces, n_bids)

    completed = np.zeros(shape, dtype=bool)
    cost = np.zeros(shape)
    completion_time = np.full(shape, np.nan)
    running = np.zeros(shape)
    idle = (n_valid[:, None] - accepted_total) * slot_length
    recovery_used = np.zeros(shape)
    interruptions = np.zeros(shape, dtype=np.int64)
    result = {
        "completed": completed,
        "cost": cost,
        "completion_time": completion_time,
        "running_time": running,
        "idle_time": idle,
        "recovery_time_used": recovery_used,
        "interruptions": interruptions,
        "slots_simulated": 0,
    }
    lanes = _dedup_lanes(accepted_total, n_slots)
    if lanes is None:
        return result
    flat_alive, inverse, u_trace, u_cnt = lanes
    rank = _price_ranks(prices)

    o_fin, o_cost, o_ct, o_run, o_rec, o_intr, o_seen, o_last, events = (
        _persistent_core(
            prices,
            rank,
            u_trace,
            u_cnt,
            n_valid,
            float(work),
            float(recovery_time),
            float(slot_length),
            _EPS,
        )
    )

    # Exact post-loop accounting: the same expressions as the event
    # kernel (which match the reference).
    lane_valid = n_valid[u_trace]
    idle_done = (o_last + 1 - o_seen) * slot_length
    idle_not = (lane_valid - u_cnt) * slot_length
    trailing = (~o_fin) & (o_seen > 0) & (o_last < lane_valid - 1)
    o_intr = o_intr + trailing.astype(np.int64)

    completed.ravel()[flat_alive] = o_fin[inverse]
    cost.ravel()[flat_alive] = o_cost[inverse]
    completion_time.ravel()[flat_alive] = o_ct[inverse]
    running.ravel()[flat_alive] = o_run[inverse]
    idle.ravel()[flat_alive] = np.where(o_fin, idle_done, idle_not)[inverse]
    recovery_used.ravel()[flat_alive] = o_rec[inverse]
    interruptions.ravel()[flat_alive] = o_intr[inverse]
    result["slots_simulated"] = int(events)
    return result


def onetime_sweep_kernel_compiled(
    prices: np.ndarray,
    bids: np.ndarray,
    *,
    work: float,
    slot_length: float,
    n_valid: Optional[np.ndarray] = None,
) -> Dict[str, np.ndarray]:
    """Compiled batched one-time sweep.

    Drop-in replacement for
    :func:`~repro.sweep.events.onetime_sweep_kernel` with
    bitwise-identical outputs on every field; interpreted (same bits)
    when :data:`COMPILED_AVAILABLE` is false.
    """
    if work <= 0 or slot_length <= 0:
        raise MarketError(
            f"invalid parameters: work={work!r} slot_length={slot_length!r}"
        )
    from .events import _dedup_lanes, _price_ranks
    from .kernels import _EPS, _prepare

    prices, bids2, n_valid, accepted_total = _prepare(prices, bids, n_valid)
    n_traces, n_slots = prices.shape
    n_bids = bids2.shape[1]
    shape = (n_traces, n_bids)

    completed = np.zeros(shape, dtype=bool)
    cost = np.zeros(shape)
    completion_time = np.full(shape, np.nan)
    running = np.zeros(shape)
    idle = np.broadcast_to(n_valid[:, None] * slot_length, shape).copy()
    result = {
        "completed": completed,
        "cost": cost,
        "completion_time": completion_time,
        "running_time": running,
        "idle_time": idle,
        "recovery_time_used": np.zeros(shape),
        "interruptions": np.zeros(shape, dtype=np.int64),
        "slots_simulated": 0,
    }
    lanes = _dedup_lanes(accepted_total, n_slots)
    if lanes is None:
        return result
    flat_alive, inverse, u_trace, u_cnt = lanes
    rank = _price_ranks(prices)

    o_fin, o_cost, o_ct, o_run, o_started, o_start, events = _onetime_core(
        prices,
        rank,
        u_trace,
        u_cnt,
        n_valid,
        float(work),
        float(slot_length),
        _EPS,
    )

    lane_valid = n_valid[u_trace]
    idle_lane = np.where(
        o_started, o_start * slot_length, lane_valid * slot_length
    )
    completed.ravel()[flat_alive] = o_fin[inverse]
    cost.ravel()[flat_alive] = o_cost[inverse]
    completion_time.ravel()[flat_alive] = o_ct[inverse]
    running.ravel()[flat_alive] = o_run[inverse]
    idle.ravel()[flat_alive] = idle_lane[inverse]
    result["slots_simulated"] = int(events)
    return result
