"""The batched backtest engine: grids of bids × stacks of traces.

:func:`run_sweep` is the front door.  It normalizes heterogeneous trace
inputs (histories, arrays, ragged lengths, per-trace start slots) into a
padded price matrix, dispatches to the slot-batched kernels in
:mod:`repro.sweep.kernels` — optionally fanning traces out over a
``concurrent.futures`` executor — and assembles a
:class:`~repro.sweep.report.SweepReport` whose cells are bitwise
identical to the scalar :mod:`repro.market.fastpath` oracle.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

from ..constants import SWEEP_KERNEL, EnvVarError
from ..core.types import JobSpec, Strategy, normalize_strategy
from ..errors import MarketError
from . import cache as _cache
from . import compiled as _compiled
from .kernels import (
    onetime_sweep_kernel,
    onetime_sweep_kernel_compiled,
    onetime_sweep_kernel_reference,
    persistent_sweep_kernel,
    persistent_sweep_kernel_compiled,
    persistent_sweep_kernel_reference,
)
from .report import SweepCounters, SweepReport
from .shm import SharedPriceStack, open_stack

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.execution import (
        BackoffPolicy,
        ExecutionResult,
        SweepJournal,
    )
    from ..resilience.faults import FaultInjector, WorkerFaults

__all__ = ["map_traces", "run_sweep"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Result keys copied from a kernel dict into the report, in field order.
_FIELDS = (
    "completed",
    "cost",
    "completion_time",
    "running_time",
    "idle_time",
    "recovery_time_used",
    "interruptions",
)


def _trace_prices(trace: object) -> np.ndarray:
    """Extract a 1-D float price array from a history or array-like."""
    prices = np.asarray(getattr(trace, "prices", trace), dtype=float)
    if prices.ndim != 1 or prices.size == 0:
        raise MarketError("each trace must be a non-empty 1-D price array")
    return prices


def _as_trace_list(traces: Union[object, Sequence[object]]) -> List[object]:
    """Normalize the heterogeneous ``traces`` argument to a list."""
    if hasattr(traces, "prices") or (
        isinstance(traces, np.ndarray) and traces.ndim == 1
    ):
        traces = [traces]
    seq = list(traces)
    if not seq:
        raise MarketError("need at least one trace to sweep")
    return seq


def _stack_traces(
    traces: Sequence[object],
    start_slots: Union[int, Sequence[int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Slice, pad and stack traces into ``(matrix, n_valid)``.

    Ragged rows (different lengths or start slots) are padded with
    ``+inf`` — never accepted by any finite bid — and their true lengths
    recorded in ``n_valid``.
    """
    seq = list(traces)
    rows: List[np.ndarray] = []
    if isinstance(start_slots, (int, np.integer)):
        starts = [int(start_slots)] * len(seq)
    else:
        starts = [int(s) for s in start_slots]
        if len(starts) != len(seq):
            raise MarketError(
                f"start_slots has {len(starts)} entries for {len(seq)} traces"
            )
    for trace, start in zip(seq, starts):
        prices = _trace_prices(trace)
        if not 0 <= start < prices.size:
            raise MarketError(
                f"start_slot {start} out of range for a {prices.size}-slot trace"
            )
        rows.append(prices[start:])
    n_valid = np.asarray([row.size for row in rows], dtype=np.int64)
    width = int(n_valid.max())
    matrix = np.full((len(rows), width), np.inf)
    for i, row in enumerate(rows):
        matrix[i, : row.size] = row
    return matrix, n_valid


def _slot_length_of(traces: Union[object, Sequence[object]], job: JobSpec) -> None:
    """Reject histories whose slot length disagrees with the job's."""
    seq = [traces] if hasattr(traces, "prices") else traces
    try:
        iterator: Iterable[object] = iter(seq)  # type: ignore[arg-type]
    except TypeError:
        return
    for trace in iterator:
        slot = getattr(trace, "slot_length", None)
        if slot is not None and slot != job.slot_length:
            raise MarketError(
                f"trace slot length {slot!r} differs from the job's "
                f"slot length {job.slot_length!r}"
            )


def map_traces(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    retries: int = 0,
    backoff: "Optional[BackoffPolicy]" = None,
    timeout: Optional[float] = None,
    strict: bool = True,
    labels: Optional[Sequence[str]] = None,
    journal: "Optional[SweepJournal]" = None,
    keys: Optional[Sequence[str]] = None,
    serialize: Optional[Callable[[_R], object]] = None,
    deserialize: Optional[Callable[[object], _R]] = None,
    return_failures: bool = False,
) -> "Union[List[_R], ExecutionResult]":
    """Apply ``fn`` over ``items``, optionally on an executor, preserving
    order.  ``max_workers=None`` (or fewer than two items) runs serially;
    ``executor`` chooses ``"thread"`` or ``"process"`` fan-out.

    This is the trace-level fan-out primitive shared by :func:`run_sweep`
    and the repetition loops of the heavier experiments (e.g. the
    MapReduce cluster backtests, which cannot be expressed as
    single-request kernels).

    The resilience options delegate to
    :func:`repro.resilience.execution.run_items`: failing items are
    retried ``retries`` times with capped exponential ``backoff``,
    bounded by a per-item ``timeout``, journaled for resume, and — with
    ``strict=False`` — recorded as failures instead of raising.  With
    ``return_failures=True`` the full
    :class:`~repro.resilience.execution.ExecutionResult` is returned
    instead of the bare result list.  With every resilience option at
    its default the legacy fast path runs unchanged.
    """
    resilient = (
        retries > 0
        or timeout is not None
        or journal is not None
        or not strict
        or return_failures
    )
    if resilient:
        from ..resilience.execution import run_items

        result = run_items(
            fn,
            items,
            labels=labels,
            retries=retries,
            backoff=backoff,
            timeout=timeout,
            strict=strict,
            max_workers=max_workers,
            executor=executor,
            journal=journal,
            keys=keys,
            **(
                {"serialize": serialize} if serialize is not None else {}
            ),
            **(
                {"deserialize": deserialize} if deserialize is not None else {}
            ),
        )
        return result if return_failures else result.results
    if max_workers is None or max_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if executor == "thread":
        pool_cls = ThreadPoolExecutor
    elif executor == "process":
        pool_cls = ProcessPoolExecutor
    else:
        raise ValueError(f"unknown executor {executor!r}; use 'thread' or 'process'")
    with pool_cls(max_workers=max_workers) as pool:
        return list(pool.map(fn, items))


def _select_kernels() -> Tuple[Callable[..., dict], Callable[..., dict]]:
    """Kernel pair chosen by ``REPRO_SWEEP_KERNEL`` (``event`` default,
    ``reference`` for the dense oracle path, ``compiled`` for the
    numba-JIT tier).  Read per call — through the
    :data:`repro.constants.SWEEP_KERNEL` registry entry — so workers
    which inherit the parent's environment honor the same choice; when
    the compiled tier is unavailable each process degrades to the event
    kernels with a one-time warning."""
    try:
        mode = SWEEP_KERNEL.get()
    except EnvVarError as exc:
        raise MarketError(str(exc)) from None
    if mode == "compiled":
        if _compiled.COMPILED_AVAILABLE:
            return onetime_sweep_kernel_compiled, persistent_sweep_kernel_compiled
        _compiled.warn_compiled_fallback()
        return onetime_sweep_kernel, persistent_sweep_kernel
    if mode == "event":
        return onetime_sweep_kernel, persistent_sweep_kernel
    return onetime_sweep_kernel_reference, persistent_sweep_kernel_reference


def _resolve_payload(payload: Tuple[Any, ...]) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize a chunk payload into ``(prices, n_valid)`` arrays.

    ``("inline", prices, n_valid)`` carries the arrays by value (serial
    and thread execution);  ``("shm", descriptor, lo, hi)`` maps the
    shared segment and slices rows ``[lo, hi)`` without copying.
    """
    kind = payload[0]
    if kind == "shm":
        _, descriptor, lo, hi = payload
        prices, n_valid = open_stack(descriptor)
        return prices[lo:hi], n_valid[lo:hi]
    if kind == "inline":
        _, prices, n_valid = payload
        return prices, n_valid
    raise MarketError(f"unknown chunk payload kind {kind!r}")


def _run_kernel_chunk(args: Tuple[Any, ...]) -> dict:
    """Top-level (picklable) kernel dispatcher for executor fan-out.

    Besides the kernel fields, the returned dict reports the chunk's
    distribution-cache hit/miss delta so process workers — whose caches
    are invisible to the parent — still feed ``SweepCounters``.
    """
    strategy_value, payload, bids, work, recovery_time, slot_length = args
    prices, n_valid = _resolve_payload(payload)
    onetime_kernel, persistent_kernel = _select_kernels()
    hits0, misses0 = _cache.distribution_cache_stats()
    if Strategy(strategy_value) is Strategy.ONE_TIME:
        result = onetime_kernel(
            prices, bids, work=work, slot_length=slot_length, n_valid=n_valid
        )
    else:
        result = persistent_kernel(
            prices,
            bids,
            work=work,
            recovery_time=recovery_time,
            slot_length=slot_length,
            n_valid=n_valid,
        )
    hits1, misses1 = _cache.distribution_cache_stats()
    result["cache_hits"] = hits1 - hits0
    result["cache_misses"] = misses1 - misses0
    return result


def _serialize_kernel_result(result: dict) -> dict:
    """Kernel result dict → JSON-safe journal payload (dtypes preserved)."""
    payload = {}
    for key, value in result.items():
        if isinstance(value, np.ndarray):
            payload[key] = {"data": value.tolist(), "dtype": str(value.dtype)}
        else:
            payload[key] = value
    return payload


def _deserialize_kernel_result(payload: dict) -> dict:
    """Inverse of :func:`_serialize_kernel_result` — bitwise round-trip
    (JSON floats use shortest round-trip repr)."""
    out = {}
    for key, value in payload.items():
        if isinstance(value, dict) and "dtype" in value:
            out[key] = np.asarray(value["data"], dtype=value["dtype"])
        else:
            out[key] = value
    return out


def _failure_placeholder(n_bids: int) -> dict:
    """The row recorded for a permanently failed trace: NaN costs/times,
    ``completed=False`` — unmistakably "no data", not "ran and lost"."""
    return {
        "completed": np.zeros((1, n_bids), dtype=bool),
        "cost": np.full((1, n_bids), np.nan),
        "completion_time": np.full((1, n_bids), np.nan),
        "running_time": np.full((1, n_bids), np.nan),
        "idle_time": np.full((1, n_bids), np.nan),
        "recovery_time_used": np.full((1, n_bids), np.nan),
        "interruptions": np.zeros((1, n_bids), dtype=np.int64),
        "slots_simulated": 0,
        "cache_hits": 0,
        "cache_misses": 0,
    }


def run_sweep(
    traces: Union[object, Sequence[object]],
    bids: Union[float, Sequence[float], np.ndarray],
    job: JobSpec,
    *,
    strategy: Union[Strategy, str] = Strategy.PERSISTENT,
    start_slots: Union[int, Sequence[int]] = 0,
    pair_bids: bool = False,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    faults: "Optional[FaultInjector]" = None,
    retries: int = 0,
    backoff: "Optional[BackoffPolicy]" = None,
    item_timeout: Optional[float] = None,
    strict: bool = True,
    journal: "Union[None, str, os.PathLike, SweepJournal]" = None,
    worker_faults: "Optional[WorkerFaults]" = None,
) -> SweepReport:
    """Evaluate a grid of bids against a stack of price traces in one shot.

    Parameters
    ----------
    traces:
        One trace or a sequence of traces — each a
        :class:`~repro.traces.history.SpotPriceHistory` or a 1-D price
        array.  Lengths may differ (rows are padded internally).
    bids:
        Bid prices in $/hour.  By default every bid is evaluated against
        every trace (grid mode, cells ``(n_traces, n_bids)``); with
        ``pair_bids=True``, ``bids[i]`` is evaluated only against
        ``traces[i]`` (cells ``(n_traces, 1)``).
    job:
        The :class:`~repro.core.types.JobSpec` to run in every cell.
    strategy:
        ``Strategy.PERSISTENT`` or ``Strategy.ONE_TIME`` — the request
        kind the kernel simulates.  ``Strategy.PERCENTILE``,
        ``Strategy.PORTFOLIO`` and ``Strategy.CVAR`` are bid-*selection*
        strategies, not execution kinds: compute their bid (e.g. via
        ``BiddingClient.decide``) and sweep it as PERSISTENT.
    start_slots:
        Slot offset(s) applied per trace before simulation.
    max_workers / executor:
        Optional trace-level fan-out: ``"thread"`` uses a
        ``concurrent.futures`` thread pool, ``"process"`` routes through
        the fault-tolerant work-stealing scheduler
        (:func:`repro.scheduler.run_shards`) — dynamic shard dispatch,
        straggler speculation, crash respawn and poison-shard
        quarantine, with results bitwise identical to a serial run.
    faults:
        Optional :class:`~repro.resilience.faults.FaultInjector`; trace
        ``i`` is perturbed with ``faults.derive(i)`` before simulation,
        so fault-injected sweeps stay reproducible per root seed.
    retries / backoff / item_timeout / strict / journal:
        Resilient execution (any non-default value activates it): each
        trace becomes an isolated work item, retried with capped
        exponential backoff and bounded by a per-item timeout.  With
        ``strict=False`` permanent failures land in
        ``SweepReport.failures`` (their rows become NaN placeholders)
        instead of raising
        :class:`~repro.errors.SweepExecutionError`.  ``journal`` (a path
        or :class:`~repro.resilience.execution.SweepJournal`) persists
        finished traces so an interrupted sweep resumes without
        recomputing them.  On the process path ``retries`` bounds the
        scheduler's per-shard failure budget (``backoff`` does not apply
        — recovery is immediate re-dispatch) and ``item_timeout`` kills
        and respawns a worker whose shard exceeds it.
    worker_faults:
        Optional :class:`~repro.resilience.faults.WorkerFaults` —
        seeded process-level chaos (worker kills, stalls, slow starts)
        injected into the scheduler pool.  Requires
        ``executor="process"``; results remain bitwise identical to the
        fault-free run.

    Returns
    -------
    SweepReport
        Per-cell outcome arrays, bitwise identical to the fastpath
        oracle, plus work/cache counters.
    """
    strategy = normalize_strategy(strategy)
    if not strategy.sweepable:
        raise ValueError(
            f"Strategy.{strategy.name} selects a bid; compute it first and "
            "sweep the resulting price with Strategy.PERSISTENT"
        )
    _slot_length_of(traces, job)
    trace_list = _as_trace_list(traces)
    if faults is not None:
        trace_list = [
            faults.derive(i).perturb_history(trace)
            if hasattr(trace, "prices")
            else faults.derive(i).perturb_prices(np.asarray(trace, dtype=float))
            for i, trace in enumerate(trace_list)
        ]
    matrix, n_valid = _stack_traces(trace_list, start_slots)
    n_traces = matrix.shape[0]

    bid_values = np.atleast_1d(np.asarray(bids, dtype=float))
    if pair_bids:
        if bid_values.shape != (n_traces,):
            raise MarketError(
                f"pair_bids=True needs one bid per trace; got {bid_values.shape} "
                f"for {n_traces} traces"
            )
        kernel_bids: np.ndarray = bid_values[:, None]
    else:
        if bid_values.ndim != 1:
            raise MarketError("bids must be a scalar or 1-D sequence")
        kernel_bids = bid_values

    recovery = job.recovery_time if strategy is Strategy.PERSISTENT else 0.0
    hits0, misses0 = _cache.distribution_cache_stats()
    n_cols = 1 if pair_bids else int(kernel_bids.shape[-1])

    if worker_faults is not None and executor != "process":
        raise ValueError("worker_faults requires executor='process'")
    resilient = (
        retries > 0 or item_timeout is not None or journal is not None or not strict
    )
    chunks: List[np.ndarray]
    if resilient:
        # One trace per work item so a failure (or a journal hit) is
        # isolated to exactly one row of the report.
        chunks = [np.asarray([i]) for i in range(n_traces)]
    elif max_workers is not None and max_workers > 1 and n_traces > 1:
        # Process fan-out goes through the work-stealing scheduler, so
        # cut more shards than workers: a slow worker then holds back
        # one small shard, not a statically assigned 1/W of the sweep.
        n_chunks = (
            min(n_traces, max(2, 4 * max_workers))
            if executor == "process"
            else min(max_workers, n_traces)
        )
        bounds = np.array_split(np.arange(n_traces), n_chunks)
        chunks = [idx for idx in bounds if idx.size]
    else:
        chunks = [np.arange(n_traces)]

    # Chunks cross a process boundary exactly when the scheduler pool
    # will actually be used; only then is the price stack worth sharing
    # (and only then do worker-local cache counters need merging back).
    if resilient:
        out_of_process = executor == "process" and (
            (max_workers is not None and max_workers > 1)
            or item_timeout is not None
            or worker_faults is not None
        )
    else:
        out_of_process = executor == "process" and (
            (
                max_workers is not None
                and max_workers > 1
                and len(chunks) > 1
            )
            or worker_faults is not None
        )

    stack: Optional[SharedPriceStack] = None
    try:
        if out_of_process:
            # Zero-copy fan-out: the (T, S) matrix and n_valid live in one
            # shared-memory segment; workers get (name, shape, row-bounds).
            # Retry rounds and journal-resumed runs reuse the same segment.
            stack = SharedPriceStack(matrix, n_valid)

        args = []
        for idx in chunks:
            chunk_bids = kernel_bids[idx] if pair_bids else kernel_bids
            if stack is not None:
                payload = ("shm", stack.descriptor, int(idx[0]), int(idx[-1]) + 1)
            else:
                payload = ("inline", matrix[idx], n_valid[idx])
            args.append(
                (
                    strategy.value,
                    payload,
                    chunk_bids,
                    job.execution_time,
                    recovery,
                    job.slot_length,
                )
            )

        failures = ()
        reused: frozenset = frozenset()
        sched_stats = None
        started = time.perf_counter()
        if resilient and journal is not None:
            from ..resilience.execution import SweepJournal

            if not isinstance(journal, SweepJournal):
                # Non-durable on purpose: the sweep journal is a resume
                # optimization — losing trailing records after a crash
                # only re-runs those cells, it never corrupts results.
                journal = SweepJournal(
                    journal,
                    fsync=False,
                    signature={
                        "strategy": strategy.value,
                        "execution_time": job.execution_time,
                        "recovery_time": recovery,
                        "slot_length": job.slot_length,
                        "pair_bids": pair_bids,
                        "bids": [float(b) for b in bid_values],
                        "n_traces": n_traces,
                    },
                )
        if out_of_process:
            # The single process-fan-out path: the work-stealing
            # scheduler pool (dynamic dispatch, straggler speculation,
            # crash respawn, poison-shard quarantine).  ``retries``
            # becomes the shard-failure budget; ``item_timeout`` the
            # per-shard deadline after which a stuck worker is killed.
            from ..scheduler import run_shards

            sched = run_shards(
                _run_kernel_chunk,
                args,
                max_workers=max_workers,
                keys=(
                    [f"trace:{i}" for i in range(n_traces)]
                    if resilient
                    else None
                ),
                labels=(
                    [f"trace {i}" for i in range(n_traces)]
                    if resilient
                    else None
                ),
                journal=journal if resilient else None,
                serialize=_serialize_kernel_result,
                deserialize=_deserialize_kernel_result,
                strict=strict,
                max_shard_failures=(retries + 1) if resilient else None,
                shard_timeout=item_timeout,
                worker_faults=worker_faults,
            )
            failures = sched.failures
            reused = frozenset(sched.reused)
            sched_stats = sched.stats
            results = [
                r if r is not None else _failure_placeholder(n_cols)
                for r in sched.results
            ]
        elif resilient:
            execution = map_traces(
                _run_kernel_chunk,
                args,
                max_workers=max_workers,
                executor=executor,
                retries=retries,
                backoff=backoff,
                timeout=item_timeout,
                strict=strict,
                labels=[f"trace {i}" for i in range(n_traces)],
                journal=journal,
                keys=[f"trace:{i}" for i in range(n_traces)],
                serialize=_serialize_kernel_result,
                deserialize=_deserialize_kernel_result,
                return_failures=True,
            )
            failures = execution.failures
            reused = frozenset(execution.reused)
            results = [
                r if r is not None else _failure_placeholder(n_cols)
                for r in execution.results
            ]
        else:
            results = map_traces(
                _run_kernel_chunk, args, max_workers=max_workers, executor=executor
            )
        kernel_seconds = time.perf_counter() - started
    finally:
        if stack is not None:
            stack.close()

    merged = {
        key: np.concatenate([r[key] for r in results], axis=0) for key in _FIELDS
    }
    slots = int(sum(r["slots_simulated"] for r in results))
    hits1, misses1 = _cache.distribution_cache_stats()
    # In-process chunks already moved the parent counters; process-pool
    # chunks report their own worker-local deltas (journal-reused items
    # excluded — their recorded deltas were spent in an earlier run).
    worker_hits = worker_misses = 0
    if out_of_process:
        worker_hits = int(
            sum(
                r.get("cache_hits", 0)
                for i, r in enumerate(results)
                if i not in reused
            )
        )
        worker_misses = int(
            sum(
                r.get("cache_misses", 0)
                for i, r in enumerate(results)
                if i not in reused
            )
        )
    counters = SweepCounters(
        n_traces=n_traces,
        n_bids=n_cols,
        slots_simulated=slots,
        kernel_seconds=kernel_seconds,
        cache_hits=(hits1 - hits0) + worker_hits,
        cache_misses=(misses1 - misses0) + worker_misses,
    )
    return SweepReport(
        strategy=strategy,
        bids=bid_values,
        completed=merged["completed"],
        cost=merged["cost"],
        completion_time=merged["completion_time"],
        running_time=merged["running_time"],
        idle_time=merged["idle_time"],
        recovery_time_used=merged["recovery_time_used"],
        interruptions=merged["interruptions"],
        counters=counters,
        failures=failures,
        scheduler=sched_stats,
    )
